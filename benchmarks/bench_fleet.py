"""Fleet-scale perf snapshot: chunk-sharded batch tier vs the field.

Times one heterogeneous fleet (mostly ~1s sensor windows plus a small
band of long-horizon gateway devices) three ways:

1. ``parallel`` — the per-task fast path fanned out over
   ``run_grid(workers=N, batch=False)`` (the pre-batch-tier baseline);
2. ``single_chunk`` — the batch tier with both chunk budgets removed,
   so every lane lands in ONE ragged plan. The gateway devices force
   every short lane to pad to the longest trace: the padding blowup
   this PR's chunking exists to bound;
3. ``chunked`` — the chunk-sharded batch tier with default budgets,
   dispatched across the process pool.

Every chunked lane is checked field-for-field against both the
per-task grid and the single-chunk grid before any number is reported,
and a sample of devices is re-simulated directly through
``FleetDeviceTask.run()`` (``bit_exact`` in the JSON is asserted, not
assumed). Results land in ``BENCH_fleet.json``; CI runs ``--quick``
and requires ``bit_exact: true``. The full run exits nonzero if the
chunked tier misses the 3x-vs-parallel or 1.5x-vs-single-chunk bars.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full fleet
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro import __version__, _accel
from repro.analysis import engine
from repro.fleet import DEFAULT_ARCHETYPES, FleetArchetype, FleetSpec
from repro.system import batchsim

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _fleet_spec(quick: bool) -> FleetSpec:
    """A mostly-short fleet with a long-horizon gateway tail.

    The gateway archetype (~2% of devices) runs a much longer window
    than the sensor archetypes, so a single ragged plan pads every
    short lane out to the gateway length — the worst case for the
    unchunked batch tier and the realistic shape of deployed fleets.
    """
    gateway = FleetArchetype(
        name="rf-gateway",
        mode="rf",
        weight=0.02,
        capacitor_uj=9.0,
        capacitor_spread=0.1,
        scale_sigma=0.1,
        duration_s=8.0 if quick else 30.0,
    )
    return FleetSpec(
        n_devices=120 if quick else 1000,
        seed=2026,
        duration_s=0.5 if quick else 1.0,
        archetypes=DEFAULT_ARCHETYPES + (gateway,),
    )


def _time_grid(tasks, workers: int, batch: bool, chunk_lanes=None, chunk_bytes=None):
    engine.reset()
    engine.configure(
        use_cache=False,
        batch_chunk_lanes=chunk_lanes,
        batch_chunk_bytes=chunk_bytes,
    )
    t0 = time.perf_counter()
    grid = engine.run_grid(tasks, workers=workers, cache=None, batch=batch)
    return grid, time.perf_counter() - t0


def run_benchmark(workers: int, quick: bool) -> dict:
    if not _accel.available():
        raise SystemExit("batch accelerator unavailable on this host")

    spec = _fleet_spec(quick)
    tasks = spec.tasks()
    lengths = [task.trace_ticks() for task in tasks]
    long_cut = max(spec.duration_s, 1.0) * 2
    n_long = sum(1 for task in tasks if task.duration_s > long_cut)

    # Warm trace synthesis, the accelerator build and the lane-cost
    # tables so every timed phase pays for simulation only.
    for task in tasks:
        task.build_trace()
    _time_grid(tasks[:2], workers=1, batch=True)

    parallel, parallel_s = _time_grid(tasks, workers, batch=False)
    single, single_s = _time_grid(
        tasks, workers=1, batch=True, chunk_lanes=0, chunk_bytes=0
    )
    chunked, chunked_s = _time_grid(tasks, workers=workers, batch=True)

    mismatches = []
    for task, c, p, s in zip(tasks, chunked.results, parallel.results, single.results):
        if not engine.simulation_results_equal(c, p):
            mismatches.append(f"chunked vs parallel: device {task.device_id}")
        if not engine.simulation_results_equal(c, s):
            mismatches.append(f"chunked vs single-chunk: device {task.device_id}")
    # Anchor a sample against the direct (non-grid) simulation path too.
    step = max(1, len(tasks) // 5)
    for task, c in list(zip(tasks, chunked.results))[::step]:
        if not engine.simulation_results_equal(c, task.run()):
            mismatches.append(f"chunked vs direct run: device {task.device_id}")
    if mismatches:
        raise AssertionError(
            "chunked batch tier diverged on: " + "; ".join(mismatches[:10])
        )

    chunks = batchsim.chunk_lane_indices(
        lengths,
        keys=[task.trace_signature() for task in tasks],
        max_lanes=int(engine._CONFIG["batch_chunk_lanes"]) or None,
        max_bytes=int(engine._CONFIG["batch_chunk_bytes"]) or None,
    )
    peak_chunk_bytes = max(
        batchsim.estimate_plan_bytes([lengths[i] for i in chunk])
        for chunk in chunks
    )

    return {
        "benchmark": "fleet chunk-sharded batch tier vs parallel and single-chunk",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "workers": workers,
        "devices": len(tasks),
        "long_devices": n_long,
        "chunks": len(chunks),
        "single_plan_mb": round(batchsim.estimate_plan_bytes(lengths) / 1e6, 1),
        "peak_chunk_plan_mb": round(peak_chunk_bytes / 1e6, 1),
        "parallel_s": round(parallel_s, 3),
        "single_chunk_s": round(single_s, 3),
        "chunked_s": round(chunked_s, 3),
        "speedup_vs_parallel": round(parallel_s / chunked_s, 2),
        "speedup_vs_single_chunk": round(single_s / chunked_s, 2),
        "bit_exact": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fleet, short windows (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process count for the pooled phases"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_fleet.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    if not args.quick and (
        snapshot["speedup_vs_parallel"] < 3.0
        or snapshot["speedup_vs_single_chunk"] < 1.5
    ):
        print("WARNING: chunked fleet speedup below the acceptance bars")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
