"""Observability overhead snapshot: the zero-overhead contract, measured.

The tracer's off switch must be free in the way that matters: a run
with the default :data:`~repro.obs.tracer.NULL_TRACER` may pay only for
boolean guards and no-op phase context managers, never for event
construction. Two numbers quantify that:

1. ``disabled_overhead_bound`` — a *structural* bound, not a
   differential timing (there is no uninstrumented build to diff
   against, and run-to-run noise on a ~100 ms simulation dwarfs a
   sub-percent effect). We microbenchmark the exact disabled-path
   operations (``if tracer.enabled:`` guard, ``with tracer.phase():``
   no-op context manager), count how often the fastsim path executes
   each per run, and divide the summed cost by the measured disabled-run
   median. The acceptance bar asserts this bound stays below 2 %.
2. ``enabled_overhead`` — the measured slowdown of a fully traced
   (``debug`` level) run over the disabled run, recorded for the
   trajectory; tracing is allowed to cost something when you ask for it.

The snapshot also re-verifies the differential contract (traced result
bit-identical to untraced) so the overhead numbers can never come from
a tracer that silently changed the simulation.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full
    PYTHONPATH=src python benchmarks/bench_obs.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import time

from repro import __version__
from repro.analysis.engine import FixedBitTask, simulation_results_equal
from repro.obs.tracer import NULL_TRACER, Tracer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

#: Phase context managers entered per fast_fixed_run call
#: (setup / precompute / replay / finalize).
PHASES_PER_RUN = 4

#: Boolean guards per power transition on the disabled fast path: the
#: replay loop tests ``t_on`` once at the restore edge and once at the
#: backup edge, and the backup engine tests ``tracer.enabled`` in
#: ``record_backup``/``record_restore``.
GUARDS_PER_TRANSITION = 4


def _bench_task(quick: bool) -> FixedBitTask:
    return FixedBitTask(
        profile_id=1,
        bits=6,
        duration_s=2.0 if quick else 10.0,
        simd_width=2,
    )


def _median_run_s(task: FixedBitTask, tracer, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        task.run(engine="fast", tracer=tracer)
        timings.append(time.perf_counter() - t0)
    return statistics.median(timings)


def _guard_cost_s(iterations: int = 200_000) -> float:
    """Median per-iteration cost of the ``if tracer.enabled:`` idiom."""
    tracer = NULL_TRACER
    timings = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iterations):
            if tracer.enabled:
                raise AssertionError("NULL_TRACER must be disabled")
        timings.append((time.perf_counter() - t0) / iterations)
    return statistics.median(timings)


def _phase_cost_s(iterations: int = 50_000) -> float:
    """Median per-iteration cost of a no-op ``tracer.phase()`` block."""
    tracer = NULL_TRACER
    timings = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iterations):
            with tracer.phase("bench"):
                pass
        timings.append((time.perf_counter() - t0) / iterations)
    return statistics.median(timings)


def run_benchmark(quick: bool) -> dict:
    task = _bench_task(quick)
    task.build_trace()  # warm the trace memo outside the timed region
    repeats = 5 if quick else 9

    disabled_s = _median_run_s(task, None, repeats)
    enabled_s = _median_run_s(task, Tracer("debug"), repeats)

    # Differential re-verification: the timed traced run must not have
    # changed the simulation.
    untraced = task.run(engine="fast")
    traced = task.run(engine="fast", tracer=Tracer("debug"))
    if not simulation_results_equal(untraced, traced):
        raise AssertionError("traced run diverged from the untraced run")

    transitions = untraced.backup_count + untraced.restore_count
    guards_per_run = transitions * GUARDS_PER_TRANSITION
    guard_s = _guard_cost_s()
    phase_s = _phase_cost_s()
    structural_cost_s = guards_per_run * guard_s + PHASES_PER_RUN * phase_s
    disabled_bound = structural_cost_s / disabled_s
    enabled_overhead = enabled_s / disabled_s - 1.0

    return {
        "benchmark": "observability overhead (fastsim path)",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "duration_s": task.duration_s,
        "disabled_run_s": round(disabled_s, 5),
        "enabled_run_s": round(enabled_s, 5),
        "enabled_overhead": round(enabled_overhead, 4),
        "guard_cost_ns": round(guard_s * 1e9, 2),
        "phase_cost_ns": round(phase_s * 1e9, 2),
        "transitions": transitions,
        "guards_per_run": guards_per_run,
        "disabled_overhead_bound": round(disabled_bound, 6),
        "bit_exact": True,
    }


def _summary_text(snapshot: dict) -> str:
    return "\n".join(
        [
            "[obs-summary] observability overhead (fastsim path)",
            f"disabled run: {snapshot['disabled_run_s'] * 1e3:.1f} ms "
            f"(structural overhead bound "
            f"{snapshot['disabled_overhead_bound'] * 100:.4f}% < 2%)",
            f"enabled run (debug): {snapshot['enabled_run_s'] * 1e3:.1f} ms "
            f"({snapshot['enabled_overhead'] * 100:.1f}% over disabled)",
            f"guard cost: {snapshot['guard_cost_ns']:.1f} ns, "
            f"phase cost: {snapshot['phase_cost_ns']:.1f} ns, "
            f"{snapshot['guards_per_run']} guards/run",
            "traced == untraced: bit-exact",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="short trace, fewer repeats (CI smoke)"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_obs.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")

    if RESULTS_DIR.is_dir():
        summary = RESULTS_DIR / "obs-summary.txt"
        summary.write_text(_summary_text(snapshot) + "\n")
        print(f"wrote {summary}")

    if snapshot["disabled_overhead_bound"] >= 0.02:
        print(
            "FAIL: disabled-tracer overhead bound "
            f"{snapshot['disabled_overhead_bound']:.4f} breaches the 2% contract"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
