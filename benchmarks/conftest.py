"""Benchmark-harness fixtures.

Each benchmark regenerates one paper artifact (figure or table) via its
runner in :mod:`repro.analysis.experiments`, records the wall-clock via
pytest-benchmark (single round — these are full experiments, not
microbenchmarks), prints the regenerated table, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can be audited against a run.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _engine_config():
    """Route benchmark runs through the experiment engine.

    ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_CACHE_DIR`` parallelise and
    warm-cache artifact regeneration without touching the benchmarks
    themselves (e.g. ``REPRO_BENCH_WORKERS=4 pytest benchmarks/``).
    """
    from repro.analysis import engine

    workers = os.environ.get("REPRO_BENCH_WORKERS")
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    engine.configure(
        workers=int(workers) if workers else None,
        cache_dir=cache_dir if cache_dir else None,
    )
    yield
    engine.reset()


@pytest.fixture()
def record_artifact(request):
    """Return a callback that prints and archives an ExperimentResult."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        table = result.as_table()
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(table + "\n")
        print("\n" + table)
        return result

    return _record


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
