"""Benchmark-harness fixtures.

Each benchmark regenerates one paper artifact (figure or table) via its
runner in :mod:`repro.analysis.experiments`, records the wall-clock via
pytest-benchmark (single round — these are full experiments, not
microbenchmarks), prints the regenerated table, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can be audited against a run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_artifact(request):
    """Return a callback that prints and archives an ExperimentResult."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        table = result.as_table()
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(table + "\n")
        print("\n" + table)
        return result

    return _record


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
