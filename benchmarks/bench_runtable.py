"""Run-table perf snapshot: build throughput and service CSV overhead.

Times the run-table analytics pipeline on a fleet campaign (120
devices quick / 1000 full):

1. ``build`` — flattening already-computed engine results into the
   canonical table and rendering CSV bytes (pure analytics, no
   simulation): rows per second;
2. ``decode`` — the service-side path: rebuilding the identical table
   from the job's JSONL result stream (base64 payload decode included);
3. ``stream`` — HTTP round trips against an in-thread service, CSV
   endpoint vs plain JSONL results, warm on both sides (the service
   memoises the rendered CSV per job). The snapshot's
   ``stream_overhead`` is the median relative extra wall time of
   ``GET /jobs/<id>/runtable.csv`` over ``GET /jobs/<id>/results``;
   the acceptance bar is < 5 %.

Byte-identity is asserted before any number is reported: the served
CSV must equal the offline writer's output for the same campaign and
job id (``bit_exact`` in the JSON is asserted, not assumed).

Usage::

    PYTHONPATH=src python benchmarks/bench_runtable.py           # full fleet
    PYTHONPATH=src python benchmarks/bench_runtable.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import time
import urllib.request

import pytest

from repro import __version__
from repro.analysis import engine
from repro.analysis.runtable import (
    build_run_table,
    run_table_from_result_lines,
)
from repro.service import http_submit, http_wait, start_in_thread
from repro.service.protocol import execute_campaign, parse_campaign

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

STREAM_ROUNDS = 9


def _fleet_payload(quick: bool) -> dict:
    return {
        "kind": "fleet",
        "fleet": {
            "n_devices": 120 if quick else 1000,
            "seed": 2026,
            "duration_s": 0.5 if quick else 1.0,
        },
    }


def _http_get(url: str) -> bytes:
    with urllib.request.urlopen(url) as resp:
        return resp.read()


def _timed_get(url: str) -> float:
    t0 = time.perf_counter()
    _http_get(url)
    return time.perf_counter() - t0


def run_benchmark(workers: int, quick: bool, cache_dir) -> dict:
    payload = _fleet_payload(quick)
    campaign = parse_campaign(payload)

    engine.reset()
    engine.configure(cache_dir=cache_dir / "offline", workers=workers)
    from repro.fleet import run_fleet

    fleet = run_fleet(campaign.fleet)
    tasks, results = fleet.tasks, fleet.results

    # Phase 1: pure table build (flatten + canonical CSV rendering).
    t0 = time.perf_counter()
    table = build_run_table("fleet", tasks, results)
    offline_csv = table.to_csv_bytes()
    build_s = time.perf_counter() - t0

    # Phase 2: the service-side path — JSONL stream -> decode -> table.
    lines, _ = execute_campaign(campaign)
    t0 = time.perf_counter()
    decoded = run_table_from_result_lines(campaign, lines)
    decoded_csv = decoded.to_csv_bytes()
    decode_s = time.perf_counter() - t0
    if decoded_csv != offline_csv:
        raise AssertionError("decoded table diverged from direct build")

    # Phase 3: HTTP streaming overhead against a live in-thread service.
    engine.reset()
    handle = start_in_thread(cache_dir / "service", workers=workers)
    try:
        base = handle.base_url
        job = http_submit(base, payload)
        done = http_wait(base, job["id"], timeout=1200)
        if done["status"] != "done":
            raise AssertionError(f"service job failed: {done}")
        results_url = f"{base}/jobs/{job['id']}/results"
        csv_url = f"{base}/jobs/{job['id']}/runtable.csv"

        served_csv = _http_get(csv_url)  # warm: builds + memoises
        engine.reset()
        engine.configure(cache_dir=cache_dir / "verify", workers=workers)
        offline_job_csv = run_table_from_result_lines(
            campaign, lines, job=job["id"]
        ).to_csv_bytes()
        if served_csv != offline_job_csv:
            raise AssertionError("served CSV diverged from offline writer")
        _timed_get(results_url)  # warm the JSONL side too

        overheads = []
        jsonl_ms = []
        csv_ms = []
        for _ in range(STREAM_ROUNDS):
            jsonl_s = _timed_get(results_url)
            csv_s = _timed_get(csv_url)
            jsonl_ms.append(jsonl_s * 1e3)
            csv_ms.append(csv_s * 1e3)
            overheads.append((csv_s - jsonl_s) / jsonl_s)
        stream_overhead = statistics.median(overheads)
        jsonl_blob = _http_get(results_url)
    finally:
        handle.close()

    n_rows = len(table)
    return {
        "benchmark": "run-table build throughput and service CSV streaming",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "workers": workers,
        "devices": len(tasks),
        "rows": n_rows,
        "csv_bytes": len(offline_csv),
        "jsonl_bytes": len(jsonl_blob),
        "build_s": round(build_s, 4),
        "decode_s": round(decode_s, 4),
        "build_rows_per_s": round(n_rows / build_s, 1),
        "decode_rows_per_s": round(n_rows / decode_s, 1),
        "jsonl_ms_median": round(statistics.median(jsonl_ms), 3),
        "csv_ms_median": round(statistics.median(csv_ms), 3),
        "stream_overhead": round(stream_overhead, 4),
        "bit_exact": True,
    }


@pytest.mark.benchmark(group="runtable")
def test_runtable_stats(run_once, record_artifact):
    """Regenerate and archive the run-table statistics artifact."""
    from repro.analysis import experiments as E

    result = run_once(E.runtable_stats)
    record_artifact(result)
    comparison = result.data["comparison"]
    assert result.data["n_rows"] > 0
    assert comparison["a"]["n"] == comparison["b"]["n"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fleet (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="engine processes"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_runtable.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = run_benchmark(
            workers=args.workers, quick=args.quick,
            cache_dir=pathlib.Path(tmp),
        )
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    if not args.quick and snapshot["stream_overhead"] >= 0.05:
        print("WARNING: CSV streaming overhead above the 5% bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
