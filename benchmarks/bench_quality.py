"""Benchmarks for the quality studies: Figures 11-14."""

from repro.analysis import experiments as E


def test_fig12_alu_quality(run_once, record_artifact):
    """Figures 11-12: approximate-ALU bitwidth vs MSE/PSNR."""
    result = run_once(E.fig12_alu_quality)
    record_artifact(result)
    data = result.data
    assert data["median"][1][1] > 20.0
    assert data["sobel"][2][1] < 25.0


def test_fig14_memory_quality(run_once, record_artifact):
    """Figures 13-14: approximate-memory bitwidth vs MSE/PSNR."""
    result = run_once(E.fig14_memory_quality)
    record_artifact(result)
    alu = E.fig12_alu_quality(bits_list=(2,)).data
    assert result.data["median"][2][0] > alu["median"][2][0]


def test_visual_artifacts(run_once, record_artifact, tmp_path):
    """Figures 11/13/26 are visual: archive inspectable PGM outputs."""
    import pathlib

    from repro.kernels import ApproxContext, create_kernel, test_scene
    from repro.kernels.images import save_pgm

    def _dump():
        out_dir = pathlib.Path(__file__).parent / "results" / "images"
        out_dir.mkdir(parents=True, exist_ok=True)
        image = test_scene(64, "mixed", seed=7)
        written = []
        for name in ("sobel", "median", "integral"):
            kernel = create_kernel(name)
            save_pgm(kernel.run_exact(image), out_dir / f"{name}_baseline.pgm")
            for bits in (4, 1):
                out = kernel.run(image, ApproxContext(alu_bits=bits, seed=1))
                save_pgm(out, out_dir / f"{name}_alu{bits}bit.pgm")
                trunc = kernel.run(image, ApproxContext(mem_bits=bits, seed=1))
                save_pgm(trunc, out_dir / f"{name}_mem{bits}bit.pgm")
            written.append(name)
        return written

    written = run_once(_dump)
    assert len(written) == 3
