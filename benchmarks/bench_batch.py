"""Batch-tier perf snapshot: one ragged array program per grid.

Times the two paper grids the batch tier was built for, each two ways:

1. ``parallel`` — today's per-task fast path fanned out over
   ``run_grid(workers=N)`` / ``run_executive_grid(workers=N)`` with the
   batch tier disabled (the path this PR is measured against);
2. ``batch`` — the same grid replayed through the compiled batch
   kernels (:mod:`repro.system.batchsim` / :mod:`repro.core.batchexec`)
   in one in-process pass.

Grids:

* **fig15** — the fixed-bit retention sweep (profiles x bitwidths,
  median kernel);
* **fig24** — the incidental-executive pragma sweep (retention policy
  x profile, median kernel).

Every batched lane is checked field-for-field against the per-task
vectorized result before any number is reported (``bit_exact`` in the
JSON is asserted, not assumed). Results land in ``BENCH_batch.json``;
CI runs ``--quick`` and requires ``bit_exact: true``. The full run
exits nonzero if either grid's batch speedup falls below the 5x
acceptance bar.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_batch.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro import __version__, _accel
from repro.analysis import engine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _fig15_spec(quick: bool) -> engine.GridSpec:
    if quick:
        return engine.GridSpec(
            profile_ids=(1, 2), bits=(8, 4, 1), kernels=("median",), duration_s=2.0
        )
    return engine.GridSpec(
        profile_ids=(1, 2, 3, 4, 5),
        bits=(8, 7, 6, 5, 4, 3, 2, 1),
        kernels=("median",),
        duration_s=10.0,
    )


def _fig24_tasks(quick: bool):
    policies = ("linear", "log", "parabola")
    profiles = (1, 2) if quick else (1, 2, 3, 4, 5)
    duration = 2.0 if quick else 10.0
    return [
        engine.ExecutiveTask(
            kernel="median",
            policy=policy,
            profile_id=pid,
            minbits=4,
            duration_s=duration,
        )
        for policy in policies
        for pid in profiles
    ]


def _time_fixed(spec, workers: int, batch: bool):
    engine.reset()
    engine.configure(use_cache=False)
    t0 = time.perf_counter()
    grid = engine.run_grid(
        spec, workers=1 if batch else workers, cache=None, batch=batch
    )
    return grid, time.perf_counter() - t0


def _time_executive(tasks, workers: int, batch: bool):
    engine.reset()
    engine.configure(use_cache=False)
    t0 = time.perf_counter()
    grid = engine.run_executive_grid(
        tasks, workers=1 if batch else workers, cache=None, batch=batch
    )
    return grid, time.perf_counter() - t0


def run_benchmark(workers: int, quick: bool) -> dict:
    if not _accel.available():
        raise SystemExit("batch accelerator unavailable on this host")

    fig15 = _fig15_spec(quick)
    fig24 = _fig24_tasks(quick)
    # Warm trace synthesis, the accelerator build and the lane-cost
    # tables so every timed phase pays for simulation only.
    for task in fig15.tasks():
        task.build_trace()
    for task in fig24:
        task.build_trace()
    from repro.core import batchexec

    batchexec._tuple_tables()

    par15, par15_s = _time_fixed(fig15, workers, batch=False)
    bat15, bat15_s = _time_fixed(fig15, workers, batch=True)
    par24, par24_s = _time_executive(fig24, workers, batch=False)
    bat24, bat24_s = _time_executive(fig24, workers, batch=True)

    mismatches = []
    for task, a, b in zip(fig15.tasks(), bat15.results, par15.results):
        if not engine.simulation_results_equal(a, b):
            mismatches.append(f"fig15 {task}")
    for task, a, b in zip(fig24, bat24.results, par24.results):
        if not engine.executive_results_equal(a, b):
            mismatches.append(f"fig24 {task}")
    if mismatches:
        raise AssertionError(
            "batch tier diverged from the per-task path on: "
            + "; ".join(mismatches)
        )

    return {
        "benchmark": "batched grid replay vs per-task parallel path",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "workers": workers,
        "fig15_tasks": len(fig15.tasks()),
        "fig24_tasks": len(fig24),
        "fig15_parallel_s": round(par15_s, 3),
        "fig15_batch_s": round(bat15_s, 3),
        "fig15_speedup": round(par15_s / bat15_s, 2),
        "fig24_parallel_s": round(par24_s, 3),
        "fig24_batch_s": round(bat24_s, 3),
        "fig24_speedup": round(par24_s / bat24_s, 2),
        "bit_exact": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grids, short traces (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process count for the parallel phases"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_batch.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    if not args.quick and (
        snapshot["fig15_speedup"] < 5.0 or snapshot["fig24_speedup"] < 5.0
    ):
        print("WARNING: batch speedup below the 5x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
