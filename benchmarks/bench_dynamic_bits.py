"""Benchmarks for the dynamic-bitwidth studies: Figures 17-21."""

from repro.analysis import experiments as E


def test_fig18_bit_utilization(run_once, record_artifact):
    """Figures 17-18: per-level utilisation of dynamic bitwidth."""
    result = run_once(E.fig18_bit_utilization)
    record_artifact(result)
    for pid, util in result.data["utilization"].items():
        assert util[0] > 0.5, f"profile {pid}"  # OFF dominates


def test_fig20_dynamic_vs_fixed(run_once, record_artifact):
    """Figures 19-20: dynamic [1..8] against the fixed 2-bit run."""
    result = run_once(E.fig20_dynamic_vs_fixed)
    record_artifact(result)
    for gain in result.data["fp_gains"]:
        assert 0.5 <= gain <= 1.5


def test_fig21_minbits4(run_once, record_artifact):
    """Figure 21: dynamic [4..8] beats the similar-quality fixed 7-bit."""
    result = run_once(E.fig21_minbits4)
    record_artifact(result)
    for gain in result.data["fp_gains"]:
        assert gain > 1.02
