"""Benchmarks for the substrate artifacts: Figures 2-5 and Section 2.2."""

from repro.analysis import experiments as E


def test_fig02_power_profiles(run_once, record_artifact):
    """Figure 2: the five wristwatch power profiles."""
    result = run_once(E.fig02_power_profiles)
    record_artifact(result)
    assert len(result.rows) == 5


def test_fig03_outage_statistics(run_once, record_artifact):
    """Figure 3: outage duration and frequency, profile 1."""
    result = run_once(E.fig03_outage_statistics)
    record_artifact(result)
    assert result.data["count"] > 0


def test_fig04_sttram_write(run_once, record_artifact):
    """Figure 4: STT-RAM write current vs pulse width vs retention."""
    result = run_once(E.fig04_sttram_write)
    record_artifact(result)
    assert 0.70 <= result.data["saving_1day_to_10ms"] <= 0.82


def test_fig05_retention_shaping(run_once, record_artifact):
    """Figure 5: the linear / log / parabola shaping curves."""
    result = run_once(E.fig05_retention_shaping)
    record_artifact(result)
    rel = result.data["relative_energy"]
    assert rel["log"] < rel["linear"] < rel["parabola"]


def test_sec22_wait_compute(run_once, record_artifact):
    """Section 2.2: NVP vs wait-compute on all five profiles."""
    result = run_once(E.sec22_wait_compute)
    record_artifact(result)
    finite = [r for r in result.data["ratios"] if r != float("inf")]
    assert all(r > 1.5 for r in finite)
