"""Engine perf snapshot: serial reference vs vectorized vs parallel.

Times the fixed-bit profile sweep (the Figure 15/16 grid: profiles x
bitwidths, median kernel) three ways:

1. ``serial_reference`` — the per-tick :class:`NVPSystemSimulator`
   loop, one task at a time (the pre-engine baseline);
2. ``vectorized`` — the bit-exact fast path of
   :mod:`repro.system.fastsim`, still one process;
3. ``parallel`` — the fast path fanned out over
   ``run_grid(workers=N)``.

Every configuration's fast-path result is checked field-for-field
against the reference before the numbers are reported, so the snapshot
can never be "fast but wrong". Results land in ``BENCH_engine.json``
(repo root by default) so future PRs have a trajectory to beat; CI runs
``--quick`` as a smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --workers 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro import __version__
from repro.analysis import engine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _sweep_spec(quick: bool) -> engine.GridSpec:
    if quick:
        return engine.GridSpec(
            profile_ids=(1, 2), bits=(8, 4, 1), kernels=("median",), duration_s=2.0
        )
    return engine.GridSpec(
        profile_ids=(1, 2, 3, 4, 5),
        bits=(8, 7, 6, 5, 4, 3, 2, 1),
        kernels=("median",),
        duration_s=10.0,
    )


def run_benchmark(workers: int, quick: bool) -> dict:
    spec = _sweep_spec(quick)
    tasks = spec.tasks()
    # Warm the per-process trace memo so every timed phase pays for
    # simulation, not trace synthesis.
    for task in tasks:
        task.build_trace()

    engine.reset()
    t0 = time.perf_counter()
    reference = [task.run(engine="reference") for task in tasks]
    serial_reference_s = time.perf_counter() - t0

    engine.reset()
    t0 = time.perf_counter()
    vectorized = engine.run_grid(spec, workers=1, cache=None)
    vectorized_s = time.perf_counter() - t0

    engine.reset()
    t0 = time.perf_counter()
    parallel = engine.run_grid(spec, workers=workers, cache=None)
    parallel_s = time.perf_counter() - t0

    mismatches = [
        str(task)
        for task, ref, fast in zip(tasks, reference, vectorized.results)
        if not engine.simulation_results_equal(ref, fast)
    ]
    if mismatches:
        raise AssertionError(
            "fast path diverged from the reference on: " + "; ".join(mismatches)
        )
    if not vectorized.equal(parallel):
        raise AssertionError("parallel grid diverged from the serial grid")

    return {
        "benchmark": "fixed-bit profile sweep (fig15/fig16 grid)",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "tasks": len(tasks),
        "workers": workers,
        "serial_reference_s": round(serial_reference_s, 3),
        "vectorized_s": round(vectorized_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup_vectorized": round(serial_reference_s / vectorized_s, 2),
        "speedup_parallel": round(serial_reference_s / parallel_s, 2),
        "bit_exact": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid, short traces (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process count for the parallel phase"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    if not args.quick and snapshot["speedup_parallel"] < 5.0:
        print("WARNING: parallel speedup below the 5x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
