"""Benchmarks for the backup-approximation studies: Figures 22-25."""

from repro.analysis import experiments as E


def test_fig22_retention_failures(run_once, record_artifact):
    """Figure 22: per-bit retention failures for each policy."""
    result = run_once(E.fig22_retention_failures)
    record_artifact(result)
    failures = result.data["failures"]
    for policy in failures:
        for pid, per_bit in failures[policy].items():
            assert per_bit[0] >= per_bit[7]


def test_fig24_quality_vs_policy(run_once, record_artifact):
    """Figures 23-24: completed-frame quality under each policy."""
    result = run_once(E.fig24_quality_vs_policy)
    record_artifact(result)
    quality = result.data["quality"]
    # Linear and parabola track each other closely (paper Fig 24).
    for pid in quality["linear"]:
        lin_psnr = quality["linear"][pid][1]
        par_psnr = quality["parabola"][pid][1]
        assert abs(lin_psnr - par_psnr) < 10.0


def test_fig25_fp_retention(run_once, record_artifact):
    """Figure 25: FP gain from retention-shaped backups."""
    result = run_once(E.fig25_fp_retention)
    record_artifact(result)
    for policy, gains in result.data["gains"].items():
        for gain in gains:
            assert 1.1 <= gain <= 1.8, policy
