"""Fault-tolerance overhead snapshot: clean vs faulted grid runs.

Times the fixed-bit profile sweep under three conditions:

1. ``clean``      — no faults, the robustness layer idle (its overhead
   over the pre-hardening engine should be noise);
2. ``faulted``    — a seeded :class:`~repro.analysis.faults.FaultPlan`
   injecting crashes and corrupt payloads on first attempts, recovered
   by in-place retries;
3. ``degraded``   — a hang pushing a pooled run past its task timeout,
   forcing pool abandonment and serial fallback.

Every faulted configuration's result is checked bit-for-bit against
the clean run before numbers are reported — recovery that changes
results would be worse than no recovery. Results land in
``BENCH_faults.json`` (repo root by default); CI runs ``--quick`` as a
smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_faults.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_faults.py --workers 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro import __version__
from repro.analysis import engine, faults, telemetry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _sweep_spec(quick: bool) -> engine.GridSpec:
    if quick:
        return engine.GridSpec(
            profile_ids=(1, 2), bits=(8, 4, 1), kernels=("median",), duration_s=2.0
        )
    return engine.GridSpec(
        profile_ids=(1, 2, 3, 4, 5),
        bits=(8, 6, 4, 2),
        kernels=("median",),
        duration_s=5.0,
    )


def run_benchmark(workers: int, quick: bool) -> dict:
    spec = _sweep_spec(quick)
    tasks = spec.tasks()
    n_tasks = len(tasks)
    for task in tasks:
        task.build_trace()

    engine.reset()
    engine.configure(use_cache=False)
    t0 = time.perf_counter()
    clean = engine.run_grid(spec, workers=workers)
    clean_s = time.perf_counter() - t0

    # Crashes + corrupt payloads on first attempts: recovered by retry.
    plan = faults.FaultPlan.seeded(
        42, n_tasks=n_tasks, crashes=2, corrupts=2, scope="fixed"
    )
    engine.clear_memory_cache()
    t0 = time.perf_counter()
    with faults.injected(plan):
        faulted = engine.run_grid(spec, workers=workers, retry_backoff_s=0.0)
    faulted_s = time.perf_counter() - t0
    faulted_report = telemetry.last_report(kind="fixed")

    # A hang past the task timeout: pool abandoned, serial fallback.
    hang_plan = faults.FaultPlan.seeded(
        42, n_tasks=n_tasks, hangs=1, hang_s=60.0, scope="fixed"
    )
    engine.clear_memory_cache()
    t0 = time.perf_counter()
    with faults.injected(hang_plan):
        degraded = engine.run_grid(
            spec, workers=max(workers, 2), task_timeout_s=1.5,
            retry_backoff_s=0.0,
        )
    degraded_s = time.perf_counter() - t0
    degraded_report = telemetry.last_report(kind="fixed")

    if not clean.equal(faulted):
        raise AssertionError("faulted grid diverged from the clean grid")
    if not clean.equal(degraded):
        raise AssertionError("degraded grid diverged from the clean grid")
    counts = plan.counts()
    if faulted_report.crashes != counts["crash"]:
        raise AssertionError("telemetry missed injected crashes")
    if faulted_report.corrupt_payloads != counts["corrupt"]:
        raise AssertionError("telemetry missed injected corrupt payloads")
    if not degraded_report.degraded:
        raise AssertionError("hang past the timeout did not degrade the run")

    return {
        "benchmark": "fault-tolerance overhead (fixed-bit sweep)",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "tasks": n_tasks,
        "workers": workers,
        "clean_s": round(clean_s, 3),
        "faulted_s": round(faulted_s, 3),
        "degraded_s": round(degraded_s, 3),
        "faulted_overhead": round(faulted_s / clean_s, 2),
        "injected": counts,
        "retries": faulted_report.retries,
        "timeouts": degraded_report.timeouts,
        "pool_failures": degraded_report.pool_failures,
        "bit_exact": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid, short traces (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process count for the pooled phases"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_faults.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
