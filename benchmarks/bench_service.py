"""Campaign-service load snapshot: sustained RPS + tail latency.

Stands up a real in-thread campaign service (HTTP on an ephemeral
port, shared sharded cache with hot tier) and drives it with many
concurrent client threads through three phases:

1. **cold** — every client submits a distinct campaign; the engine
   computes everything and the shared cache fills;
2. **warm** — the same campaigns resubmitted by all clients at once;
   everything must be served from the cache (hot tier first), which is
   where the service earns its throughput;
3. **faulted** — one campaign submitted under a seeded
   :class:`~repro.analysis.faults.FaultPlan` that crashes a worker
   mid-job; the engine must retry to completion and the payload must
   be byte-identical to the clean run;
4. **journaled** — the warm phase repeated against a second service
   with the write-ahead job journal armed (fsync on every commit
   point), measuring the durability tax as an RPS overhead percentage
   relative to the journal-less warm phase.

Byte-identity is re-verified in-run: a sample of streamed entries is
compared against direct engine encodings before any number is
reported (``bit_exact`` in the JSON is asserted, not assumed).
Results land in ``BENCH_service.json``; CI runs ``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full load
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import base64
import json
import pathlib
import platform
import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro import __version__
from repro.analysis import engine, faults, telemetry
from repro.analysis.engine import GridSpec, fixed_entry_bytes, run_grid
from repro.service import (
    http_cache_info,
    http_results,
    http_submit,
    http_wait,
    start_in_thread,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _campaigns(quick: bool, n_clients: int):
    """One distinct small campaign per client, overlapping on purpose."""
    duration = 0.3 if quick else 0.5
    base_bits = (3, 4, 5, 6, 7, 8)
    out = []
    for i in range(n_clients):
        bits = sorted({base_bits[i % 6], base_bits[(i + 2) % 6]})
        out.append(
            {
                "kind": "grid",
                "grid": {
                    "kernels": ["median"],
                    "bits": bits,
                    "profile_ids": [1 + i % 2],
                    "duration_s": duration,
                },
            }
        )
    return out


def _client(base_url, payload):
    t0 = time.perf_counter()
    job = http_submit(base_url, payload)
    done = http_wait(base_url, job["id"], timeout=600)
    latency = time.perf_counter() - t0
    if done["status"] != "done":
        raise AssertionError(
            f"job {job['id']} ended {done['status']}: {done.get('error')}"
        )
    return latency, done


def _drive(base_url, payloads, n_clients):
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        results = list(
            pool.map(lambda p: _client(base_url, p), payloads)
        )
    wall = time.perf_counter() - t0
    latencies = sorted(latency for latency, _ in results)
    dones = [done for _, done in results]
    return {
        "requests": len(payloads),
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(payloads) / wall, 2),
        "p50_latency_ms": round(
            statistics.median(latencies) * 1000.0, 2
        ),
        "p95_latency_ms": round(
            latencies[max(0, int(len(latencies) * 0.95) - 1)] * 1000.0, 2
        ),
        "max_latency_ms": round(latencies[-1] * 1000.0, 2),
        "computed": sum(d["telemetry"]["computed"] for d in dones),
        "cache_hits": sum(d["telemetry"]["cache_hits"] for d in dones),
    }, dones


def run_benchmark(n_clients: int, rounds: int, quick: bool) -> dict:
    engine.reset()
    telemetry.reset()
    faults.clear()

    payloads = _campaigns(quick, n_clients)
    # Direct baseline for byte-identity, computed before the service
    # reconfigures the engine (private cache, engine defaults).
    baseline_payload = payloads[0]
    baseline_spec = GridSpec(
        **{
            key: tuple(value) if isinstance(value, list) else value
            for key, value in baseline_payload["grid"].items()
        }
    )
    with tempfile.TemporaryDirectory() as tmp:
        baseline_grid = run_grid(
            baseline_spec.tasks(),
            engine="auto",
            cache=engine.ResultCache(tmp),
        )
        expected = {
            f"{task.cache_key()}.npz": fixed_entry_bytes(result)
            for task, result in baseline_grid
        }

    cache_root = tempfile.mkdtemp(prefix="bench-service-cache-")
    handle = start_in_thread(
        cache_root, capacity=max(64, 4 * n_clients), workers=4
    )
    snapshot: dict = {
        "benchmark": "campaign service under concurrent client load",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "clients": n_clients,
        "queue_workers": 4,
    }
    try:
        base_url = handle.base_url

        cold, _ = _drive(base_url, payloads, n_clients)
        snapshot["cold"] = cold

        warm_payloads = payloads * rounds
        warm, warm_dones = _drive(base_url, warm_payloads, n_clients)
        snapshot["warm"] = warm
        if warm["computed"] != 0:
            raise AssertionError(
                f"warm phase recomputed {warm['computed']} task(s); "
                "the shared cache is not sharing"
            )

        # In-run byte-identity: the service's streamed entries for the
        # baseline campaign must match the direct engine encoding.
        baseline_done = _client(base_url, baseline_payload)[1]
        served = {
            line["name"]: base64.b64decode(line["entry"])
            for line in http_results(base_url, baseline_done["id"])
            if line["type"] == "task"
        }
        if served != expected:
            raise AssertionError(
                "service stream diverged from the direct engine run"
            )

        # Injected worker crash mid-job: the engine retries and the
        # final payload stays byte-identical.
        plan = faults.FaultPlan.seeded(
            23,
            n_tasks=len(baseline_spec.tasks()),
            crashes=1,
            scope="fixed",
        )
        crash_payload = {
            "kind": "grid",
            "grid": {
                **baseline_payload["grid"],
                "duration_s": baseline_payload["grid"]["duration_s"] + 0.1,
            },
        }
        crash_spec = GridSpec(
            **{
                key: tuple(value) if isinstance(value, list) else value
                for key, value in crash_payload["grid"].items()
            }
        )
        with tempfile.TemporaryDirectory() as tmp:
            crash_clean = {
                f"{task.cache_key()}.npz": fixed_entry_bytes(result)
                for task, result in run_grid(
                    crash_spec.tasks(),
                    engine="auto",
                    cache=engine.ResultCache(tmp),
                )
            }
        with faults.injected(plan):
            crash_latency, crash_done = _client(base_url, crash_payload)
        crash_served = {
            line["name"]: base64.b64decode(line["entry"])
            for line in http_results(base_url, crash_done["id"])
            if line["type"] == "task"
        }
        if crash_served != crash_clean:
            raise AssertionError(
                "crashed-and-retried job diverged from the clean run"
            )
        if crash_done["telemetry"]["crashes"] < 1:
            raise AssertionError("the injected crash never fired")
        snapshot["faulted"] = {
            "injected_crashes": crash_done["telemetry"]["crashes"],
            "retries": crash_done["telemetry"]["retries"],
            "latency_ms": round(crash_latency * 1000.0, 2),
            "completed": True,
        }

        info = http_cache_info(base_url)
        if info["quarantined"] != 0:
            raise AssertionError(
                f"{info['quarantined']} entr(ies) quarantined under load"
            )
        snapshot["cache"] = {
            "entries": info["entries"],
            "shards": info["shards"],
            "hot_hits": info["hot_hits"],
            "hot_entries": info["hot_entries"],
            "quarantined": info["quarantined"],
        }
        snapshot["throughput_rps"] = warm["throughput_rps"]
        snapshot["p95_latency_ms"] = warm["p95_latency_ms"]
        snapshot["bit_exact"] = True
    finally:
        handle.close()
        engine.reset()
        telemetry.reset()
        faults.clear()

    # -- journaled warm phase: the cost of durability ----------------------
    # Two services over the *same* shared cache — one journal-less,
    # one fsync-ing its write-ahead journal — driven in alternating
    # rounds so machine noise (frequency scaling, neighbours) hits
    # both arms equally; the overhead is the median-vs-median gap.
    journal_dir = tempfile.mkdtemp(prefix="bench-service-journal-")
    journal_path = pathlib.Path(journal_dir) / "journal.jsonl"
    plain = start_in_thread(
        cache_root, capacity=max(64, 4 * n_clients), workers=4
    )
    journaled_handle = start_in_thread(
        cache_root,
        capacity=max(64, 4 * n_clients),
        workers=4,
        journal=str(journal_path),
    )
    try:
        for handle_ in (plain, journaled_handle):
            _drive(handle_.base_url, payloads, n_clients)  # hot-tier warm-up
        alternations = 3 if quick else 6
        round_payloads = payloads * max(1, rounds // alternations)
        plain_rps, journaled_rps, pair_overheads = [], [], []
        for alternation in range(alternations):
            # Flip which arm goes first each round so any first-mover
            # advantage (page cache, scheduler) cancels across pairs.
            order = (plain, journaled_handle)
            if alternation % 2:
                order = (journaled_handle, plain)
            phases = {}
            for handle_ in order:
                phase, _ = _drive(
                    handle_.base_url, round_payloads, n_clients
                )
                if phase["computed"] != 0:
                    raise AssertionError(
                        f"journal comparison recomputed "
                        f"{phase['computed']} task(s)"
                    )
                phases[id(handle_)] = phase
            plain_phase = phases[id(plain)]
            journaled_phase = phases[id(journaled_handle)]
            plain_rps.append(plain_phase["throughput_rps"])
            journaled_rps.append(journaled_phase["throughput_rps"])
            pair_overheads.append(
                (
                    plain_phase["throughput_rps"]
                    - journaled_phase["throughput_rps"]
                )
                / plain_phase["throughput_rps"]
                * 100.0
            )
        # Median of *paired* overheads: each pair ran back-to-back, so
        # slow drift (thermal, neighbours) hits both arms of a pair and
        # cancels, unlike a median-of-medians across the whole run.
        overhead_pct = statistics.median(pair_overheads)
        snapshot["journaled"] = {
            "alternations": alternations,
            "requests_per_round": len(round_payloads),
            "baseline_rps": plain_rps,
            "journaled_rps": journaled_rps,
            "baseline_median_rps": round(statistics.median(plain_rps), 2),
            "journaled_median_rps": round(
                statistics.median(journaled_rps), 2
            ),
            "pair_overheads_pct": [round(o, 2) for o in pair_overheads],
            "journal_records": (
                journaled_handle.service.journal.stats.appended
            ),
            "fsync": True,
            "overhead_pct": round(overhead_pct, 2),
        }
    finally:
        journaled_handle.close()
        plain.close()
        engine.reset()
        telemetry.reset()
        faults.clear()
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter campaigns, fewer warm rounds (CI smoke)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent client threads (default: 8)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="warm resubmission rounds per client (default: 10, quick: 3)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_service.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)
    if args.clients < 8:
        parser.error("--clients must be >= 8 (the acceptance floor)")
    rounds = args.rounds or (3 if args.quick else 10)

    snapshot = run_benchmark(
        n_clients=args.clients, rounds=rounds, quick=args.quick
    )
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
