"""Resilience campaign snapshot: fault-rate sweep vs hardened restore.

Runs a small :class:`~repro.analysis.resilience.ResilienceCampaign`
and reports:

1. ``clean_s`` / ``faulted_s`` — wall time of the rate-0 anchor column
   vs the full fault-rate sweep (the cost of simulating through the
   reference loop with the fault machinery live);
2. the rate-0 **bit-exactness** check: the anchor point's executive run
   must match the fault-free fast path field for field;
3. the **determinism** check: the whole campaign, recomputed from
   scratch, must reproduce identical points (availability, quality,
   and every fallback counter);
4. the **availability floor**: the rate-0 anchor must complete frames,
   and availability must not increase with the fault rate.

Results land in ``BENCH_resilience.json`` (repo root by default); CI
runs ``--quick`` as a smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_resilience.py --workers 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro import __version__
from repro.analysis import engine
from repro.analysis.resilience import ResilienceCampaign
from repro.resilience import ResilienceConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The rate-0 anchor must complete at least this fraction of frames.
MIN_ANCHOR_AVAILABILITY = 0.5


def _campaign(quick: bool) -> ResilienceCampaign:
    if quick:
        return ResilienceCampaign(
            kernels=("median",),
            policies=("linear",),
            rates=(0.0, 0.1, 0.3),
            duration_s=1.5,
        )
    return ResilienceCampaign(
        kernels=("median",),
        policies=("linear", "log"),
        rates=(0.0, 0.02, 0.05, 0.1, 0.2),
        duration_s=3.0,
    )


def run_benchmark(workers: int, quick: bool) -> dict:
    campaign = _campaign(quick)

    engine.reset()
    engine.configure(use_cache=False)

    # Rate-0 anchor: must be bit-identical to the fault-free fast path.
    anchor_task = campaign.tasks()[0]
    assert anchor_task.rate == 0.0
    t0 = time.perf_counter()
    fast = anchor_task.base.run(engine="fast")
    hardened = anchor_task.base.build_executive(
        resilience=anchor_task.resilience_config()
    ).run(engine="reference")
    clean_s = time.perf_counter() - t0
    # Guard pricing perturbs the trajectory, so anchor the unpriced twin.
    unpriced = anchor_task.base.build_executive(
        resilience=ResilienceConfig(
            validate_restores=True, price_guard_words=False
        )
    ).run(engine="reference")
    if not engine.executive_results_equal(fast, unpriced):
        raise AssertionError(
            "rate-0 unpriced resilience run diverged from the fast path"
        )

    t0 = time.perf_counter()
    first = campaign.run(workers=workers)
    faulted_s = time.perf_counter() - t0
    second = campaign.run(workers=workers)
    if not first.equal(second):
        raise AssertionError("campaign recompute was not deterministic")

    for kernel in campaign.kernels:
        for policy in campaign.policies:
            curve = first.availability_curve(kernel, policy)
            if curve[0][1] < MIN_ANCHOR_AVAILABILITY:
                raise AssertionError(
                    f"rate-0 availability {curve[0][1]:.3f} below the "
                    f"{MIN_ANCHOR_AVAILABILITY} floor for {kernel}/{policy}"
                )
            values = [availability for _, availability in curve]
            if any(b > a + 1e-9 for a, b in zip(values, values[1:])):
                raise AssertionError(
                    f"availability increased with fault rate for "
                    f"{kernel}/{policy}: {values}"
                )

    anchor = first.points[0]
    worst = first.points[len(campaign.rates) - 1]
    return {
        "benchmark": "device resilience campaign (fault-rate sweep)",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "tasks": len(first.points),
        "workers": workers,
        "clean_s": round(clean_s, 3),
        "faulted_s": round(faulted_s, 3),
        "rate0_bit_exact": True,
        "deterministic": True,
        "anchor_availability": round(anchor.availability, 3),
        "anchor_psnr_db": anchor.mean_psnr_db,
        "worst_rate": worst.rate,
        "worst_availability": round(worst.availability, 3),
        "worst_detected_failures": worst.detected_failures,
        "worst_rollforwards": worst.rollforwards,
        "worst_lost_progress": worst.lost_progress,
        "hardened_vs_fast_identical": engine.executive_results_equal(
            fast, unpriced
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sweep, short traces (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="process count for the campaign"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_resilience.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
