"""Benchmarks for the system-level sweeps: Figures 9, 15, 16."""

from repro.analysis import experiments as E


def test_fig09_timing_behavior(run_once, record_artifact):
    """Figure 9: system-on time of the four configurations."""
    result = run_once(E.fig09_timing_behavior)
    record_artifact(result)
    on = result.data["on_fractions"]
    assert on["4-SIMD NVP"] <= on["8-bit NVP"]
    totals = result.data["total_progress"]
    assert totals["incidental (a1,b) [2..8]"] == max(totals.values())


def test_fig15_forward_progress(run_once, record_artifact):
    """Figure 15: forward progress vs reliable bits, five profiles."""
    result = run_once(E.fig15_forward_progress)
    record_artifact(result)
    for pid, series in result.data["fp"].items():
        assert series[1] > 1.5 * series[8], f"profile {pid}"


def test_fig16_backup_counts(run_once, record_artifact):
    """Figure 16: backups vs reliable bits, five profiles."""
    result = run_once(E.fig16_backup_counts)
    record_artifact(result)
    for pid, series in result.data["backups"].items():
        assert series[1] < series[8], f"profile {pid}"
