"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artifacts — these isolate the contribution of each
incidental mechanism and the sensitivity to the two sizing choices
(resume-buffer depth, retention-curve cadence matching).
"""

from repro.analysis import experiments as E


def test_ablation_mechanisms(run_once, record_artifact):
    """Full incidental vs no-SIMD / no-roll-forward / precise-backup."""
    result = run_once(E.ablation_mechanisms)
    record_artifact(result)
    gains = result.data["gains"]
    assert gains["full incidental"] > gains["no SIMD lanes"]
    assert gains["full incidental"] > gains["precise backups"]
    # With both headline mechanisms off, the executive degenerates to
    # (approximately) the precise NVP baseline.
    assert 0.8 <= gains["no SIMD + precise backups"] <= 1.3


def test_ablation_buffer_capacity(run_once, record_artifact):
    """Each resume-buffer entry buys additional SIMD width."""
    result = run_once(E.ablation_buffer_capacity)
    record_artifact(result)
    gains = result.data["gains"]
    capacities = sorted(gains)
    for small, large in zip(capacities, capacities[1:]):
        assert gains[large] >= gains[small] - 0.05


def test_ablation_retention_scale(run_once, record_artifact):
    """Cadence matching: longer retention costs more, protects quality."""
    result = run_once(E.ablation_retention_scale)
    record_artifact(result)
    by_scale = result.data["by_scale"]
    scales = sorted(by_scale)
    # Backup energy rises monotonically with the stretch.
    costs = [by_scale[s][1] for s in scales]
    assert costs == sorted(costs)


def test_ablation_harvester_sources(run_once, record_artifact):
    """Extension: incidental gains generalise across ambient sources."""
    result = run_once(E.ablation_harvester_sources)
    record_artifact(result)
    for source, gain in result.data["gains"].items():
        assert gain > 1.5, source


def test_ablation_recover_placement(run_once, record_artifact):
    """Section 6: per-frame recover points for solar, inner-loop for RF."""
    result = run_once(E.ablation_recover_placement)
    record_artifact(result)
    outcomes = result.data["outcomes"]
    # RF: only inner-loop placement completes frames.
    assert outcomes[("rf", "inner")][0] > outcomes[("rf", "frame")][0]
    # Solar: frame placement completes comparably (within a frame or
    # two) while avoiding the per-element mark overhead -> more FP.
    assert outcomes[("solar", "frame")][0] >= outcomes[("solar", "inner")][0] - 2
    assert outcomes[("solar", "frame")][1] >= outcomes[("solar", "inner")][1]
