"""Benchmarks for the headline results: Figures 26-28, Table 2, Section 7."""

from repro.analysis import experiments as E


def test_fig27_recomputation(run_once, record_artifact):
    """Figures 26-27: quality vs recompute-and-combine passes."""
    result = run_once(E.fig27_recomputation)
    record_artifact(result)
    for minbits, series in result.data["psnr"].items():
        assert series[-1] >= series[0], f"minbits={minbits}"


def test_table2_qos(run_once, record_artifact):
    """Table 2: the fine-tuned incidental policies vs QoS targets."""
    result = run_once(E.table2_qos)
    record_artifact(result)
    for name, record in result.data.items():
        assert record["met"], name


def test_fig28_overall_gain(run_once, record_artifact):
    """Figure 28: incidental FP gain, ten kernels x five profiles.

    The paper reports a 4.28x average; our calibrated behavioural
    platform lands in the high-3x band with the same per-kernel spread
    (see EXPERIMENTS.md).
    """
    result = run_once(E.fig28_overall_gain)
    record_artifact(result)
    assert result.data["average"] > 2.5
    for kernel, gains in result.data["per_kernel"].items():
        for gain in gains:
            assert gain > 1.5, kernel


def test_sec7_frame_rates(run_once, record_artifact):
    """Section 7: per-frame time of the three execution paradigms."""
    result = run_once(E.sec7_frame_rates)
    record_artifact(result)
    for kernel, (wait_s, nvp_s, incidental_s) in result.data["rates"].items():
        assert wait_s > nvp_s > incidental_s, kernel


def test_jpeg_frame_qos(run_once, record_artifact):
    """Table 2's JPEG accounting: frames meeting the 150% size target."""
    result = run_once(E.jpeg_frame_qos)
    record_artifact(result)
    for fraction in result.data["fractions"].values():
        assert fraction >= 0.9


def test_fig28_seed_robustness(run_once, record_artifact):
    """The headline gain holds across re-rolled harvester traces."""
    result = run_once(E.fig28_seed_robustness)
    record_artifact(result)
    assert result.data["mean"] > 2.0
    assert result.data["std"] < 0.5 * result.data["mean"]
