"""Benchmarks for the headline results: Figures 26-28, Table 2, Section 7.

Besides the pytest-style artifact checks below, this module doubles as
the incidental-executive perf snapshot (the executive twin of
``bench_engine.py``). It times the Figure 24 + Figure 28 executive
sweep three ways:

1. ``serial_reference`` — the per-tick :class:`IncidentalExecutive`
   loop, one task at a time (the pre-engine baseline);
2. ``vectorized`` — the bit-exact fast replay of
   :mod:`repro.core.fastexec`, still one process;
3. ``parallel`` — the fast path fanned out over
   ``run_executive_grid(workers=N)`` with a cold on-disk cache, then
   re-run warm (``warm_cache_s``).

Every configuration's fast-path result is checked field-for-field
against the reference before the numbers are reported, so the snapshot
can never be "fast but wrong". The memoised post-hoc quality replay is
timed cold and warm as well. Results land in ``BENCH_incidental.json``
(same shape as ``BENCH_engine.json``); CI runs ``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_incidental.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_incidental.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_incidental.py --workers 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import tempfile
import time

from repro import __version__
from repro.analysis import engine
from repro.analysis import experiments as E

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_fig27_recomputation(run_once, record_artifact):
    """Figures 26-27: quality vs recompute-and-combine passes."""
    result = run_once(E.fig27_recomputation)
    record_artifact(result)
    for minbits, series in result.data["psnr"].items():
        assert series[-1] >= series[0], f"minbits={minbits}"


def test_table2_qos(run_once, record_artifact):
    """Table 2: the fine-tuned incidental policies vs QoS targets."""
    result = run_once(E.table2_qos)
    record_artifact(result)
    for name, record in result.data.items():
        assert record["met"], name


def test_fig28_overall_gain(run_once, record_artifact):
    """Figure 28: incidental FP gain, ten kernels x five profiles.

    The paper reports a 4.28x average; our calibrated behavioural
    platform lands in the high-3x band with the same per-kernel spread
    (see EXPERIMENTS.md).
    """
    result = run_once(E.fig28_overall_gain)
    record_artifact(result)
    assert result.data["average"] > 2.5
    for kernel, gains in result.data["per_kernel"].items():
        for gain in gains:
            assert gain > 1.5, kernel


def test_sec7_frame_rates(run_once, record_artifact):
    """Section 7: per-frame time of the three execution paradigms."""
    result = run_once(E.sec7_frame_rates)
    record_artifact(result)
    for kernel, (wait_s, nvp_s, incidental_s) in result.data["rates"].items():
        assert wait_s > nvp_s > incidental_s, kernel


def test_jpeg_frame_qos(run_once, record_artifact):
    """Table 2's JPEG accounting: frames meeting the 150% size target."""
    result = run_once(E.jpeg_frame_qos)
    record_artifact(result)
    for fraction in result.data["fractions"].values():
        assert fraction >= 0.9


def test_fig28_seed_robustness(run_once, record_artifact):
    """The headline gain holds across re-rolled harvester traces."""
    result = run_once(E.fig28_seed_robustness)
    record_artifact(result)
    assert result.data["mean"] > 2.0
    assert result.data["std"] < 0.5 * result.data["mean"]


# -- executive perf snapshot (python benchmarks/bench_incidental.py) -----------


def _sweep_tasks(quick: bool) -> list:
    """The fig24 + fig28 executive sweep (trimmed for --quick)."""
    duration_s = 2.0 if quick else 10.0
    fig24_profiles = (1, 2) if quick else (1, 2, 3)
    fig28_profiles = (1, 2) if quick else (1, 2, 3, 4, 5)
    fig28_kernels = ("median",) if quick else ("median", "sobel", "fft")
    tasks = [
        engine.ExecutiveTask(
            kernel="median",
            policy=policy,
            profile_id=pid,
            minbits=4,
            duration_s=duration_s,
            frame_size=12,
            frame_period_ticks=15_000,
            retention_time_scale=E.RETENTION_TIME_SCALE,
        )
        for policy in ("linear", "log", "parabola")
        for pid in fig24_profiles
    ]
    tasks += [
        engine.ExecutiveTask(
            kernel=kernel,
            policy="linear",
            profile_id=pid,
            minbits=3,
            duration_s=duration_s,
            frame_size=16,
            frame_period_ticks=2_500,
            retention_time_scale=E.RETENTION_TIME_SCALE,
        )
        for kernel in fig28_kernels
        for pid in fig28_profiles
    ]
    return tasks


def run_benchmark(workers: int, quick: bool) -> dict:
    tasks = _sweep_tasks(quick)
    # Warm the per-process trace memo so every timed phase pays for
    # simulation, not trace synthesis.
    for task in tasks:
        task.build_trace()

    engine.reset()
    t0 = time.perf_counter()
    reference = [task.run(engine="reference") for task in tasks]
    serial_reference_s = time.perf_counter() - t0

    engine.reset()
    t0 = time.perf_counter()
    vectorized = engine.run_executive_grid(tasks, workers=1, cache=None)
    vectorized_s = time.perf_counter() - t0

    mismatches = [
        str(task)
        for task, ref, fast in zip(tasks, reference, vectorized.results)
        if not engine.executive_results_equal(ref, fast)
    ]
    if mismatches:
        raise AssertionError(
            "fast executive diverged from the reference on: "
            + "; ".join(mismatches)
        )

    with tempfile.TemporaryDirectory() as cache_dir:
        engine.reset()
        engine.configure(cache_dir=cache_dir)
        t0 = time.perf_counter()
        parallel = engine.run_executive_grid(tasks, workers=workers)
        parallel_s = time.perf_counter() - t0

        # Quality replay: cold, then served from the per-tuple memo.
        t0 = time.perf_counter()
        quality_cold = [
            engine.executive_frame_quality(task, result, min_coverage=0.999)
            for task, result in parallel
        ]
        quality_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        quality_warm = [
            engine.executive_frame_quality(task, result, min_coverage=0.999)
            for task, result in parallel
        ]
        quality_warm_s = time.perf_counter() - t0
        if quality_cold != quality_warm:
            raise AssertionError("memoised quality replay diverged")

        # Warm rerun: in-process memo dropped, every result served from
        # the content-addressed on-disk cache.
        engine.clear_memory_cache()
        t0 = time.perf_counter()
        warm = engine.run_executive_grid(tasks, workers=workers)
        warm_cache_s = time.perf_counter() - t0

    if not vectorized.equal(parallel):
        raise AssertionError("parallel grid diverged from the serial grid")
    if not parallel.equal(warm):
        raise AssertionError("warm-cache grid diverged from the cold grid")

    return {
        "benchmark": "incidental executive sweep (fig24 + fig28 grids)",
        "version": __version__,
        "python": platform.python_version(),
        "quick": quick,
        "tasks": len(tasks),
        "workers": workers,
        "serial_reference_s": round(serial_reference_s, 3),
        "vectorized_s": round(vectorized_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_cache_s, 3),
        "quality_cold_s": round(quality_cold_s, 3),
        "quality_warm_s": round(quality_warm_s, 3),
        "speedup_vectorized": round(serial_reference_s / vectorized_s, 2),
        "speedup_parallel": round(serial_reference_s / parallel_s, 2),
        "speedup_warm_cache": round(serial_reference_s / warm_cache_s, 2),
        "bit_exact": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid, short traces (CI smoke)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process count for the parallel phase"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_incidental.json"),
        help="where to write the JSON snapshot",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(workers=args.workers, quick=args.quick)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {out}")
    if not args.quick and snapshot["speedup_parallel"] < 5.0:
        print("WARNING: parallel speedup below the 5x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
