"""Exception hierarchy for the incidental-computing reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class. The subclasses partition failures
by subsystem in the same way the package itself is partitioned.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "EnergyError",
    "NVMError",
    "RetentionPolicyError",
    "ProcessorError",
    "SimulationError",
    "KernelError",
    "PragmaError",
    "MergeError",
    "QualityError",
    "EngineExecutionError",
    "InjectedFaultError",
    "JobCancelledError",
    "QueueFullError",
    "ServiceDrainingError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class TraceError(ReproError, ValueError):
    """A power trace is malformed (wrong shape, negative power, bad dt)."""


class EnergyError(ReproError, ValueError):
    """An energy-accounting invariant was violated (e.g. negative charge)."""


class NVMError(ReproError, ValueError):
    """Invalid operation on the nonvolatile-memory model."""


class RetentionPolicyError(NVMError):
    """Unknown or invalid retention-time shaping policy."""


class ProcessorError(ReproError, ValueError):
    """Invalid operation on the behavioral NVP model."""


class SimulationError(ReproError, RuntimeError):
    """The system-level simulator reached an inconsistent state."""


class KernelError(ReproError, ValueError):
    """A workload kernel was given invalid inputs or configuration."""


class PragmaError(ReproError, ValueError):
    """A pragma annotation is malformed or applied inconsistently."""


class MergeError(ReproError, ValueError):
    """An ``assemble`` (merge) operation was invalid."""


class QualityError(ReproError, ValueError):
    """A quality-metric computation was given incompatible inputs."""


class EngineExecutionError(ReproError, RuntimeError):
    """A grid task kept failing after every configured retry.

    Raised by the experiment engine's robust runner once a task has
    exhausted its retry budget (crashes, timeouts, or corrupted
    payloads on every attempt). Carries one line per failed task.
    """


class InjectedFaultError(ReproError, RuntimeError):
    """A deliberately injected worker crash (fault-injection harness).

    Only ever raised by :mod:`repro.analysis.faults` when a test or
    benchmark has installed a fault plan; production runs never see it.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for campaign-service failures (:mod:`repro.service`)."""


class JobCancelledError(ServiceError):
    """A campaign run was cancelled mid-flight.

    Raised inside the engine when a cancellation scope
    (:func:`repro.analysis.engine.cancel_scope`) is tripped between
    waves; the service translates it into a ``cancelled`` job status.
    """


class QueueFullError(ServiceError):
    """The service job queue is at capacity; the submission was refused."""


class ServiceDrainingError(ServiceError):
    """The service is draining for shutdown; the submission was refused.

    Mapped to HTTP 503 with a ``Retry-After`` hint — unlike
    :class:`QueueFullError`, capacity will not free up in this
    process; the client should retry against the restarted server
    (safe, because submissions are idempotent on their content hash).
    """
