"""Run telemetry: per-grid :class:`RunReport`\\ s and a JSONL event log.

Every grid the experiment engine executes (fixed-bit, executive, or
explicit-trace) produces one :class:`RunReport`: per-task wall time and
attempt counts, the engine used, cache hit/miss/quarantine counters,
retries, timeouts, injected or real worker failures, and whether the
run degraded from the process pool to in-process serial execution.

Reports are kept in a bounded in-process history (``history()`` /
``last_report()``) and, when a log path is configured, appended to a
JSONL event log — one ``run`` line per grid plus one ``task`` line per
task — that ``repro-experiments report`` summarises after the fact.
The log is append-only and line-oriented, so a crashed run still
leaves every completed grid on disk (the NORM-style "observable
replay" prerequisite: you can always reconstruct what a campaign
actually executed).

Experiment runners tag their grids with :func:`context` (e.g.
``"fig15"``) so a report can be traced back to the artifact that
requested it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "TaskTelemetry",
    "RunReport",
    "configure",
    "log_path",
    "context",
    "current_context",
    "job_scope",
    "current_job",
    "collected",
    "record",
    "history",
    "last_report",
    "read_events",
    "summarize_events",
    "reset",
]

#: Reports kept in process memory (the JSONL log is unbounded).
HISTORY_LIMIT = 256


@dataclass
class TaskTelemetry:
    """What one grid task actually did (one ``task`` event line)."""

    index: int
    label: str = ""
    status: str = "computed"  #: ``memo-hit`` | ``cache-hit`` | ``computed`` | ``failed``
    engine: str = "auto"
    wall_s: float = 0.0
    attempts: int = 1
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    corrupt_payloads: int = 0
    executed_in: str = ""  #: ``batch`` | ``pool`` | ``serial`` | ``degraded`` | ``""`` (cache hit)
    #: Device-level metrics payload (``MetricsRegistry.to_dict`` form)
    #: captured by an enabled tracer; empty when observability is off or
    #: the task was served from a cache (cached results carry no trace).
    metrics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        if not out.get("metrics"):
            out.pop("metrics", None)
        return out


@dataclass
class RunReport:
    """Aggregated telemetry for one grid run (one ``run`` event line)."""

    kind: str  #: ``fixed`` | ``executive`` | ``trace`` | ``resilience``
    context: str = ""  #: artifact label, e.g. ``"fig15"``
    job: str = ""  #: service job id when run inside :func:`job_scope`
    engine: str = "auto"
    workers: int = 1
    n_tasks: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    quarantines: int = 0
    computed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    corrupt_payloads: int = 0
    pool_failures: int = 0
    degraded: bool = False
    failed: int = 0
    wall_s: float = 0.0
    started_at: float = 0.0
    tasks: List[TaskTelemetry] = field(default_factory=list)
    #: Merged device metrics across the run's computed tasks (empty when
    #: observability is off).
    device_metrics: Dict[str, object] = field(default_factory=dict)

    def merge_task(self, task: TaskTelemetry) -> None:
        """Fold one task record into the aggregate counters."""
        self.tasks.append(task)
        self.retries += task.retries
        self.crashes += task.crashes
        self.timeouts += task.timeouts
        self.corrupt_payloads += task.corrupt_payloads
        if task.status == "memo-hit":
            self.memo_hits += 1
        elif task.status == "cache-hit":
            self.cache_hits += 1
        elif task.status == "failed":
            self.failed += 1
        elif task.status == "computed":
            self.computed += 1

    def to_dict(self, include_tasks: bool = False) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        if not include_tasks:
            out.pop("tasks")
        if not out.get("device_metrics"):
            out.pop("device_metrics", None)
        if not out.get("job"):
            out.pop("job", None)
        return out

    @property
    def worker_failures(self) -> int:
        """Everything a worker did wrong: crashes, hangs, bad payloads."""
        return self.crashes + self.timeouts + self.corrupt_payloads


# -- module state --------------------------------------------------------------

_HISTORY: List[RunReport] = []
_LOG_PATH: Optional[Path] = None

#: Context labels, job labels and report collectors are **per thread**:
#: the campaign service runs concurrent jobs on worker threads, and one
#: job's labels must never leak into another's reports. Single-threaded
#: callers see the exact pre-service behaviour.
_LOCAL = threading.local()

#: Serialises history appends and JSONL log writes across the service's
#: worker threads (one report line is never torn by another).
_RECORD_LOCK = threading.Lock()


def _context_stack() -> List[str]:
    stack = getattr(_LOCAL, "context", None)
    if stack is None:
        stack = _LOCAL.context = []
    return stack


def _collector_stack() -> List[List[RunReport]]:
    sinks = getattr(_LOCAL, "collectors", None)
    if sinks is None:
        sinks = _LOCAL.collectors = []
    return sinks


def configure(log_path: Optional[Union[str, os.PathLike]]) -> None:
    """Set (or, with ``None``, clear) the JSONL event-log destination.

    The parent directory is created eagerly so a bad path fails at
    configuration time, not mid-campaign.
    """
    global _LOG_PATH
    if log_path is None:
        _LOG_PATH = None
        return
    path = Path(log_path)
    if path.parent:
        path.parent.mkdir(parents=True, exist_ok=True)
    _LOG_PATH = path


def log_path() -> Optional[Path]:
    """The configured JSONL event-log path, if any."""
    return _LOG_PATH


@contextmanager
def context(label: str) -> Iterator[None]:
    """Tag every grid run in this block with ``label`` (re-entrant,
    thread-scoped)."""
    stack = _context_stack()
    stack.append(str(label))
    try:
        yield
    finally:
        stack.pop()


def current_context() -> str:
    """The innermost active context label (``""`` outside any)."""
    stack = _context_stack()
    return stack[-1] if stack else ""


@contextmanager
def job_scope(job_id: str) -> Iterator[None]:
    """Stamp every report recorded in this block (and thread) with a
    service job id; the campaign service wraps each job's execution so
    its grid runs can be attributed in the history and event log."""
    previous = getattr(_LOCAL, "job", "")
    _LOCAL.job = str(job_id)
    try:
        yield
    finally:
        _LOCAL.job = previous


def current_job() -> str:
    """The active service job label (``""`` outside any job scope)."""
    return getattr(_LOCAL, "job", "")


@contextmanager
def collected() -> Iterator[List[RunReport]]:
    """Collect every report recorded by this thread inside the block.

    Yields the live list; nesting works (inner collectors see a subset).
    The service uses this to attach per-job telemetry to job status
    without scanning the shared history.
    """
    sinks = _collector_stack()
    sink: List[RunReport] = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        sinks.remove(sink)


def record(report: RunReport) -> None:
    """Add ``report`` to the history and append it to the event log."""
    if not report.job:
        report.job = current_job()
    for sink in _collector_stack():
        sink.append(report)
    with _RECORD_LOCK:
        _HISTORY.append(report)
        del _HISTORY[:-HISTORY_LIMIT]
        if _LOG_PATH is None:
            return
        lines = [
            json.dumps({"event": "run", **report.to_dict()}, sort_keys=True)
        ]
        for task in report.tasks:
            lines.append(
                json.dumps(
                    {
                        "event": "task",
                        "kind": report.kind,
                        "context": report.context,
                        **task.to_dict(),
                    },
                    sort_keys=True,
                )
            )
        with open(_LOG_PATH, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")


def history() -> List[RunReport]:
    """The retained reports, oldest first (a copy)."""
    return list(_HISTORY)


def last_report(kind: Optional[str] = None) -> Optional[RunReport]:
    """The most recent report (optionally of one grid ``kind``)."""
    for report in reversed(_HISTORY):
        if kind is None or report.kind == kind:
            return report
    return None


def reset() -> None:
    """Drop the history, this thread's scopes and the log configuration."""
    global _LOG_PATH
    with _RECORD_LOCK:
        _HISTORY.clear()
        _LOG_PATH = None
    _context_stack().clear()
    _collector_stack().clear()
    _LOCAL.job = ""


# -- event-log reading (the ``repro-experiments report`` command) --------------


def read_events(path: Union[str, os.PathLike]) -> List[Dict[str, object]]:
    """Parse a JSONL event log; malformed lines are skipped, not fatal.

    A run that died mid-write leaves at most one torn final line; the
    rest of the campaign must still be reportable.
    """
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def summarize_events(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate totals over every ``run`` event of a log."""
    totals = {
        "runs": 0,
        "tasks": 0,
        "memo_hits": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "quarantines": 0,
        "computed": 0,
        "retries": 0,
        "crashes": 0,
        "timeouts": 0,
        "corrupt_payloads": 0,
        "pool_failures": 0,
        "degraded_runs": 0,
        "failed": 0,
        "wall_s": 0.0,
    }
    for event in events:
        if event.get("event") != "run":
            continue
        totals["runs"] += 1
        totals["tasks"] += int(event.get("n_tasks", 0))
        totals["degraded_runs"] += int(bool(event.get("degraded", False)))
        totals["wall_s"] += float(event.get("wall_s", 0.0))
        for key in (
            "memo_hits",
            "cache_hits",
            "cache_misses",
            "quarantines",
            "computed",
            "retries",
            "crashes",
            "timeouts",
            "corrupt_payloads",
            "pool_failures",
            "failed",
        ):
            totals[key] += int(event.get(key, 0))
    return totals


def now() -> float:
    """Wall-clock timestamp for report stamping (monkeypatchable)."""
    return time.time()
