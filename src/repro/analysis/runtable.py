"""The canonical run table: one CSV row per (task, repetition).

Every campaign kind the engine runs — fixed-bit grids, incidental
executives, resilience sweeps and fleet expansions — flattens into one
wide, stable schema (:data:`RUN_TABLE_COLUMNS`): *config* columns
(policy, bitwidth pragmas, capacitor, fault rate...), *outcome*
columns (forward progress, availability, quality, energy per committed
instruction) and *provenance* columns (cache status, retries, executed
tier, service job label). The full column reference lives in
``RUN_TABLE_COLUMNS_EXPLANATION.md`` at the repository root and is
generated from the same schema object (:func:`columns_markdown`), so
the doc cannot drift from the code.

Determinism contract
--------------------
Config and outcome cells derive **only** from the task value objects
and the bit-exact result payloads (the same payloads the
content-addressed cache stores and the campaign service streams), so a
table built offline from a cached grid, by ``repro-experiments
runtable``, or by ``GET /jobs/<id>/runtable.csv`` is byte-identical
for the same campaign — across the batch, vectorized and serial engine
tiers, and across HTTP vs direct runs. Provenance cells describe *one
particular execution* and are therefore run-dependent: in the
canonical table they hold documented sentinels (empty string / empty)
and are only filled when a :class:`~repro.analysis.telemetry.RunReport`
is explicitly attached (:func:`attach_provenance`). The ``job`` column
is the service job id; the offline writer accepts ``job=`` so a
service table can be reproduced byte-for-byte.

Cell formatting is canonical: ints as decimal, floats as their
shortest round-trip ``repr`` (deterministic for IEEE doubles), ``""``
for not-applicable — so equal values always produce equal bytes.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from . import telemetry
from .engine import (
    ExecutiveTask,
    FixedBitTask,
    decode_executive_entry,
    decode_fixed_entry,
    executive_frame_quality,
    run_executive_grid,
    run_grid,
)
from .resilience import ResiliencePoint, ResilienceTask, run_resilience_grid

__all__ = [
    "SCHEMA_VERSION",
    "Column",
    "RUN_TABLE_COLUMNS",
    "COLUMN_NAMES",
    "RunTable",
    "build_run_table",
    "run_table_for_campaign",
    "run_table_from_result_lines",
    "attach_provenance",
    "attach_provenance_from_events",
    "read_run_table",
    "format_cell",
    "validate_header",
    "columns_markdown",
]

#: Bumped whenever a column is added, removed, renamed or reordered.
SCHEMA_VERSION = "1"

#: Task kinds a run table can hold (also the ``kind`` cell values).
TABLE_KINDS = ("fixed", "executive", "resilience", "fleet")


@dataclass(frozen=True)
class Column:
    """One schema column: name, grouping and documentation."""

    name: str
    group: str  #: ``identity`` | ``config`` | ``outcome`` | ``provenance``
    units: str  #: ``-`` for unitless / labels
    domain: str  #: ``tick`` (device time), ``wall`` (host time) or ``-``
    applies: Tuple[str, ...]  #: task kinds that fill this cell
    description: str


_ALL = TABLE_KINDS
_EXEC = ("executive", "resilience")
_FLEET = ("fleet",)
_RES = ("resilience",)

#: The stable schema, in canonical column order.
RUN_TABLE_COLUMNS: Tuple[Column, ...] = (
    # -- identity --------------------------------------------------------------
    Column("kind", "identity", "-", "-", _ALL,
           "Task kind: fixed | executive | resilience | fleet."),
    Column("context", "identity", "-", "-", _ALL,
           "Artifact/context label the campaign ran under (empty for "
           "anonymous campaigns)."),
    Column("task_index", "identity", "-", "-", _ALL,
           "Zero-based index of the base task in the campaign's "
           "deterministic enumeration order (repetitions of one task "
           "share its task_index)."),
    Column("repetition", "identity", "-", "-", _ALL,
           "Repetition index of a seeded repetition sweep; 0 is the "
           "base configuration."),
    Column("task_key", "identity", "-", "-", _ALL,
           "Content-addressed cache key of the task (includes the "
           "fleet- prefix for fleet devices); the row's replayable "
           "identity."),
    # -- config ----------------------------------------------------------------
    Column("kernel", "config", "-", "-", _ALL,
           "Kernel name (empty = pure ALU instruction mix)."),
    Column("policy", "config", "-", "-", _ALL,
           "Retention policy: precise, linear, log or parabola."),
    Column("profile_id", "config", "-", "-", ("fixed", "executive", "resilience"),
           "Calibrated standard power profile (1-5); labels the task "
           "when trace_seed re-rolls the harvester."),
    Column("trace_seed", "config", "-", "-", _ALL,
           "Seed of a re-rolled harvester trace (empty = the standard "
           "profile identified by profile_id)."),
    Column("duration_s", "config", "s", "tick", _ALL,
           "Simulated device-time window (duration_s / 1e-4 ticks)."),
    Column("bits", "config", "bits", "-", ("fixed", "fleet"),
           "Fixed reliable-bit budget per lane."),
    Column("minbits", "config", "bits", "-", _EXEC,
           "Incidental pragma lower bitwidth bound."),
    Column("maxbits", "config", "bits", "-", _EXEC,
           "Incidental pragma upper bitwidth bound."),
    Column("simd_width", "config", "lanes", "-", ("fixed", "fleet"),
           "SIMD lane count (1 = no incidental lanes)."),
    Column("frame_size", "config", "elements", "-", _EXEC,
           "Square sensor-frame edge length."),
    Column("frame_period_ticks", "config", "ticks", "tick", _EXEC,
           "Sensor frame arrival period."),
    Column("recover_placement", "config", "-", "-", _EXEC,
           "recover_from pragma placement: inner or frame."),
    Column("program_seed", "config", "-", "-", _EXEC,
           "Executive program seed (datapath noise and decay streams)."),
    Column("fault_rate", "config", "-", "-", _RES,
           "Device fault-scale knob of the resilience scenario."),
    Column("device_seed", "config", "-", "-", _RES,
           "Derived per-point device fault-stream seed."),
    Column("archetype", "config", "-", "-", _FLEET,
           "Fleet archetype name the device was drawn from."),
    Column("mode", "config", "-", "-", _FLEET,
           "Synthetic harvester mode (solar, rf, thermal)."),
    Column("scale", "config", "-", "-", _FLEET,
           "Per-device harvester efficiency draw (median 1.0)."),
    Column("capacitor_uj", "config", "uJ", "-", _FLEET,
           "Per-device storage capacitor size (manufacturing spread)."),
    # -- outcome ---------------------------------------------------------------
    Column("total_ticks", "outcome", "ticks", "tick", ("fixed", "executive", "fleet"),
           "Simulated ticks (1 tick = 0.1 ms of device time)."),
    Column("on_ticks", "outcome", "ticks", "tick", ("fixed", "executive", "fleet"),
           "Ticks spent powered (RESTORE / RUN / BACKUP)."),
    Column("availability", "outcome", "-", "tick", _ALL,
           "Powered fraction of the window: on_ticks / total_ticks."),
    Column("forward_progress", "outcome", "instructions", "tick",
           ("fixed", "executive", "fleet"),
           "Persistently committed instructions on the current-data lane."),
    Column("incidental_progress", "outcome", "instructions", "tick",
           ("fixed", "executive", "fleet"),
           "Committed instructions on incidental SIMD lanes."),
    Column("total_progress", "outcome", "instructions", "tick", _ALL,
           "forward_progress + incidental_progress."),
    Column("progress_per_s", "outcome", "instructions/s", "tick", _ALL,
           "total_progress / duration_s (device-time rate)."),
    Column("backups", "outcome", "count", "tick", _ALL,
           "Backup operations performed."),
    Column("restores", "outcome", "count", "tick", _ALL,
           "Restore operations performed."),
    Column("income_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "Harvested energy arriving at the frontend."),
    Column("converted_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "Energy surviving frontend conversion."),
    Column("run_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "Energy spent computing."),
    Column("backup_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "Energy spent writing backups."),
    Column("restore_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "Energy spent restoring state."),
    Column("spent_energy_uj", "outcome", "uJ", "tick",
           ("fixed", "executive", "fleet"),
           "run + backup + restore energy."),
    Column("energy_per_instruction_uj", "outcome", "uJ/instruction", "tick",
           ("fixed", "executive", "fleet"),
           "spent_energy_uj / total_progress (empty when no progress)."),
    Column("mean_active_bits", "outcome", "bits", "tick",
           ("fixed", "executive", "fleet"),
           "Mean lane-0 bit budget over powered ticks."),
    Column("frames_total", "outcome", "frames", "tick", _EXEC,
           "Sensor frames that arrived."),
    Column("frames_completed", "outcome", "frames", "tick", _EXEC,
           "Frames whose every element was eventually computed."),
    Column("frames_abandoned", "outcome", "frames", "tick", _EXEC,
           "Frames evicted from the resume buffer, never finished."),
    Column("frame_availability", "outcome", "-", "tick", _EXEC,
           "frames_completed / frames_total."),
    Column("scored_frames", "outcome", "frames", "tick", _EXEC,
           "Frames that met quality-scoring coverage."),
    Column("mean_psnr_db", "outcome", "dB", "-", _EXEC,
           "Mean PSNR of scored frames, replayed deterministically "
           "from the cached bit schedules (empty = nothing scored)."),
    Column("min_psnr_db", "outcome", "dB", "-", _EXEC,
           "Worst scored-frame PSNR (empty = nothing scored)."),
    Column("detected_failures", "outcome", "count", "tick", _RES,
           "Restore validations that caught corruption."),
    Column("rollforwards", "outcome", "count", "tick", _RES,
           "Recoveries that rolled forward past a torn backup."),
    Column("silent_corruptions", "outcome", "count", "tick", _RES,
           "Corruptions that reached computation undetected."),
    Column("brownouts", "outcome", "count", "tick", _RES,
           "Brownout events injected by the fault model."),
    Column("seu_flips", "outcome", "count", "tick", _RES,
           "Single-event-upset bit flips injected."),
    Column("lost_progress", "outcome", "instructions", "tick", _RES,
           "Instructions discarded by fallbacks to older backups."),
    Column("guard_energy_uj", "outcome", "uJ", "tick", _RES,
           "Energy spent writing CRC guard words."),
    # -- provenance ------------------------------------------------------------
    Column("status", "provenance", "-", "wall", _ALL,
           "How this execution obtained the result: memo-hit, "
           "cache-hit, computed or failed (empty in the canonical "
           "table; filled from an attached RunReport)."),
    Column("executed_in", "provenance", "-", "wall", _ALL,
           "Engine tier that executed a computed task: batch, pool, "
           "serial or degraded (empty for cache hits and in the "
           "canonical table)."),
    Column("attempts", "provenance", "count", "wall", _ALL,
           "Execution attempts including retries (empty in the "
           "canonical table)."),
    Column("retries", "provenance", "count", "wall", _ALL,
           "Re-attempts after crashes, hangs or corrupt payloads "
           "(empty in the canonical table)."),
    Column("engine", "provenance", "-", "wall", _ALL,
           "Engine selector the run used: auto, fast or reference "
           "(empty in the canonical table)."),
    Column("job", "provenance", "-", "wall", _ALL,
           "Campaign-service job id (empty outside the service; pass "
           "job= to the offline writer to reproduce a service table)."),
)

#: Canonical header, derived from the schema.
COLUMN_NAMES: Tuple[str, ...] = tuple(c.name for c in RUN_TABLE_COLUMNS)

_COLUMN_INDEX: Dict[str, Column] = {c.name: c for c in RUN_TABLE_COLUMNS}


# -- canonical cell formatting --------------------------------------------------


def format_cell(value: object) -> str:
    """Canonical, byte-deterministic text form of one cell value."""
    if value is None or value == "":
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            # Integral floats print as plain decimals so an int-valued
            # metric formats identically whether it arrived as 3 or 3.0.
            return str(int(value))
        return repr(value)
    text = str(value)
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        escaped = text.replace('"', '""')
        return f'"{escaped}"'
    return text


def _csv_line(cells: Iterable[str]) -> str:
    return ",".join(cells)


# -- the table -----------------------------------------------------------------


@dataclass
class RunTable:
    """A built run table: rows of column-name -> value dicts."""

    rows: List[Dict[str, object]]

    def __len__(self) -> int:
        return len(self.rows)

    def extend(self, other: "RunTable") -> None:
        self.rows.extend(other.rows)

    def to_csv_text(self) -> str:
        lines = [_csv_line(COLUMN_NAMES)]
        for row in self.rows:
            lines.append(
                _csv_line(format_cell(row.get(name)) for name in COLUMN_NAMES)
            )
        return "\n".join(lines) + "\n"

    def to_csv_bytes(self) -> bytes:
        return self.to_csv_text().encode("utf-8")

    def write(self, path) -> Tuple[int, int]:
        """Write the canonical CSV; returns ``(n_rows, n_bytes)``."""
        blob = self.to_csv_bytes()
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(self.rows), len(blob)


def _base_row(kind: str, context: str, job: str, index: int, rep: int,
              key: str) -> Dict[str, object]:
    row: Dict[str, object] = {name: "" for name in COLUMN_NAMES}
    row.update(
        kind=kind,
        context=context,
        job=job,
        task_index=index,
        repetition=rep,
        task_key=key,
    )
    return row


def _energy_outcomes(row: Dict[str, object], sim) -> None:
    """Fill the SimulationResult-backed outcome cells of ``row``."""
    spent = sim.run_energy_uj + sim.backup_energy_uj + sim.restore_energy_uj
    row.update(
        total_ticks=sim.total_ticks,
        on_ticks=sim.on_ticks,
        availability=sim.on_ticks / sim.total_ticks,
        forward_progress=sim.forward_progress,
        incidental_progress=sim.incidental_progress,
        total_progress=sim.total_progress,
        backups=sim.backup_count,
        restores=sim.restore_count,
        income_energy_uj=sim.income_energy_uj,
        converted_energy_uj=sim.converted_energy_uj,
        run_energy_uj=sim.run_energy_uj,
        backup_energy_uj=sim.backup_energy_uj,
        restore_energy_uj=sim.restore_energy_uj,
        spent_energy_uj=spent,
        energy_per_instruction_uj=(
            spent / sim.total_progress if sim.total_progress > 0 else ""
        ),
        mean_active_bits=sim.mean_active_bits(),
    )


def fixed_row(task: FixedBitTask, result, *, index: int = 0, rep: int = 0,
              context: str = "", job: str = "") -> Dict[str, object]:
    """One canonical row for a fixed-bit task and its result."""
    row = _base_row("fixed", context, job, index, rep, task.cache_key())
    row.update(
        kernel=task.kernel or "",
        policy=task.policy,
        profile_id=task.profile_id,
        trace_seed="" if task.seed is None else task.seed,
        duration_s=task.duration_s,
        bits=task.bits,
        simd_width=task.simd_width,
    )
    _energy_outcomes(row, result)
    row["progress_per_s"] = result.total_progress / task.duration_s
    return row


def fleet_row(task, result, *, index: int = 0, rep: int = 0,
              context: str = "", job: str = "") -> Dict[str, object]:
    """One canonical row for a fleet device task and its result."""
    row = _base_row("fleet", context, job, index, rep, task.cache_key())
    row.update(
        kernel=task.kernel or "",
        policy=task.policy,
        trace_seed=task.trace_seed,
        duration_s=task.duration_s,
        bits=task.bits,
        simd_width=task.simd_width,
        archetype=task.archetype,
        mode=task.mode,
        scale=task.scale,
        capacitor_uj=task.capacitor_uj,
    )
    _energy_outcomes(row, result)
    row["progress_per_s"] = result.total_progress / task.duration_s
    return row


def executive_row(task: ExecutiveTask, result, *, index: int = 0, rep: int = 0,
                  context: str = "", job: str = "") -> Dict[str, object]:
    """One canonical row for an executive task and its result.

    Quality replays deterministically from the cached bit schedules via
    :func:`~repro.analysis.engine.executive_frame_quality`, so the PSNR
    cells are identical for a computed, cached or streamed result.
    """
    row = _base_row("executive", context, job, index, rep, task.cache_key())
    row.update(
        kernel=task.kernel,
        policy=task.policy,
        profile_id=task.profile_id,
        trace_seed="" if task.trace_seed is None else task.trace_seed,
        duration_s=task.duration_s,
        minbits=task.minbits,
        maxbits=task.maxbits,
        frame_size=task.frame_size,
        frame_period_ticks=task.frame_period_ticks,
        recover_placement=task.recover_placement,
        program_seed=task.seed,
    )
    _energy_outcomes(row, result.sim)
    row["progress_per_s"] = result.sim.total_progress / task.duration_s
    scores = executive_frame_quality(task, result)
    psnrs = [float(score.psnr_db) for score in scores]
    frames_total = len(result.frames)
    row.update(
        frames_total=frames_total,
        frames_completed=result.frames_completed,
        frames_abandoned=result.frames_abandoned,
        frame_availability=(
            result.frames_completed / frames_total if frames_total else ""
        ),
        scored_frames=len(psnrs),
        mean_psnr_db=(sum(psnrs) / len(psnrs)) if psnrs else "",
        min_psnr_db=min(psnrs) if psnrs else "",
    )
    return row


def resilience_row(task: ResilienceTask, point: ResiliencePoint, *,
                   index: int = 0, rep: int = 0, context: str = "",
                   job: str = "") -> Dict[str, object]:
    """One canonical row for a resilience task and its point."""
    base = task.base
    row = _base_row("resilience", context, job, index, rep, task.cache_key())
    row.update(
        kernel=base.kernel,
        policy=base.policy,
        profile_id=base.profile_id,
        trace_seed="" if base.trace_seed is None else base.trace_seed,
        duration_s=base.duration_s,
        minbits=base.minbits,
        maxbits=base.maxbits,
        frame_size=base.frame_size,
        frame_period_ticks=base.frame_period_ticks,
        recover_placement=base.recover_placement,
        program_seed=base.seed,
        fault_rate=task.rate,
        device_seed=task.device_seed,
    )
    row.update(
        availability=point.on_fraction,
        total_progress=point.total_progress,
        progress_per_s=point.total_progress / base.duration_s,
        backups=point.backups,
        restores=point.restores,
        frames_total=point.frames_total,
        frames_completed=point.frames_completed,
        frames_abandoned=point.frames_abandoned,
        frame_availability=point.availability if point.frames_total else "",
        scored_frames=point.scored_frames,
        mean_psnr_db="" if point.mean_psnr_db is None else point.mean_psnr_db,
        min_psnr_db="" if point.min_psnr_db is None else point.min_psnr_db,
        detected_failures=point.detected_failures,
        rollforwards=point.rollforwards,
        silent_corruptions=point.silent_corruptions,
        brownouts=point.brownouts,
        seu_flips=point.seu_flips,
        lost_progress=point.lost_progress,
        guard_energy_uj=point.guard_energy_uj,
    )
    return row


_ROW_BUILDERS = {
    "fixed": fixed_row,
    "executive": executive_row,
    "resilience": resilience_row,
    "fleet": fleet_row,
}


def build_run_table(
    kind: str,
    tasks: Sequence,
    results: Sequence,
    *,
    context: str = "",
    job: str = "",
    task_indices: Optional[Sequence[int]] = None,
    repetitions: Optional[Sequence[int]] = None,
    report: Optional[telemetry.RunReport] = None,
) -> RunTable:
    """Flatten aligned ``(tasks, results)`` into a :class:`RunTable`.

    ``task_indices``/``repetitions`` relabel rows of a repetition sweep
    (defaults: positional index, repetition 0). ``report`` optionally
    fills the provenance columns from that run's telemetry.
    """
    if kind not in _ROW_BUILDERS:
        raise ConfigurationError(
            f"kind must be one of {TABLE_KINDS}, got {kind!r}"
        )
    if len(tasks) != len(results):
        raise ConfigurationError(
            f"{len(tasks)} task(s) but {len(results)} result(s)"
        )
    builder = _ROW_BUILDERS[kind]
    rows = []
    for position, (task, result) in enumerate(zip(tasks, results)):
        rows.append(
            builder(
                task,
                result,
                index=(
                    task_indices[position]
                    if task_indices is not None
                    else position
                ),
                rep=repetitions[position] if repetitions is not None else 0,
                context=context,
                job=job,
            )
        )
    table = RunTable(rows=rows)
    if report is not None:
        attach_provenance(table, report)
    return table


def attach_provenance(table: RunTable, report: telemetry.RunReport) -> RunTable:
    """Fill provenance columns from one run's telemetry, in place.

    Task telemetry is matched positionally (``TaskTelemetry.index`` is
    the grid position, which is the row position by construction).
    Attaching provenance makes the table describe *this* execution —
    its bytes are then only reproducible by a run with identical cache
    state.
    """
    for task in report.tasks:
        if 0 <= task.index < len(table.rows):
            table.rows[task.index].update(
                status=task.status,
                executed_in=task.executed_in,
                attempts=task.attempts,
                retries=task.retries,
                engine=task.engine,
            )
    return table


def attach_provenance_from_events(
    table: RunTable, events: Sequence[Mapping[str, object]]
) -> RunTable:
    """Fill provenance columns from a JSONL telemetry event log.

    ``events`` is the output of
    :func:`repro.analysis.telemetry.read_events`; every ``task`` record
    whose ``index`` addresses a row updates that row (later records
    win, matching a log that appends re-runs).
    """
    for event in events:
        if event.get("event") != "task":
            continue
        index = event.get("index")
        if isinstance(index, int) and 0 <= index < len(table.rows):
            table.rows[index].update(
                status=str(event.get("status", "")),
                executed_in=str(event.get("executed_in", "")),
                attempts=int(event.get("attempts", 1)),
                retries=int(event.get("retries", 0)),
                engine=str(event.get("engine", "")),
            )
    return table


# -- campaign execution + wire decoding -----------------------------------------


def _campaign_tasks(campaign) -> Tuple:
    if campaign.kind == "fleet":
        assert campaign.fleet is not None
        return campaign.fleet.tasks()
    return tuple(campaign.tasks)


def _table_kind(campaign_kind: str) -> str:
    return {"grid": "fixed"}.get(campaign_kind, campaign_kind)


def run_table_for_campaign(campaign, *, job: str = "") -> RunTable:
    """Execute a parsed campaign through the cached engine; build rows.

    Uses the process-wide engine configuration exactly like
    :func:`repro.service.protocol.execute_campaign` does, so the table
    is identical whether results were computed fresh or replayed from
    the content-addressed cache.
    """
    kind = _table_kind(campaign.kind)
    tasks = _campaign_tasks(campaign)
    if campaign.kind in ("grid", "fleet"):
        if campaign.kind == "fleet":
            from ..fleet import run_fleet

            fleet_result = run_fleet(campaign.fleet, engine=campaign.engine)
            tasks, results = fleet_result.tasks, fleet_result.results
        else:
            results = run_grid(tasks, engine=campaign.engine).results
    elif campaign.kind == "executive":
        results = run_executive_grid(tasks, engine=campaign.engine).results
    else:  # resilience
        results = run_resilience_grid(tasks, engine=campaign.engine)
    return build_run_table(kind, tasks, results, job=job)


def run_table_from_result_lines(
    campaign,
    lines: Sequence[Union[str, Dict[str, object]]],
    *,
    job: str = "",
) -> RunTable:
    """Rebuild the canonical table from a job's JSONL result stream.

    The stream's base64 entries are the same bytes the cache codec
    writes, so decoding them reproduces the engine results exactly and
    the resulting CSV is byte-identical to :func:`run_table_for_campaign`
    for the same campaign and ``job`` label.
    """
    tasks = _campaign_tasks(campaign)
    kind = _table_kind(campaign.kind)
    results: Dict[int, object] = {}
    for line in lines:
        record = json.loads(line) if isinstance(line, str) else line
        if not isinstance(record, dict):
            continue
        rtype = record.get("type")
        index = record.get("index")
        if rtype == "task" and isinstance(index, int):
            blob = base64.b64decode(str(record.get("entry", "")))
            if kind == "executive":
                results[index] = decode_executive_entry(blob)
            else:
                results[index] = decode_fixed_entry(blob)
        elif rtype == "point" and isinstance(index, int):
            results[index] = ResiliencePoint.from_dict(record["point"])
    missing = [i for i in range(len(tasks)) if i not in results]
    if missing:
        raise ConfigurationError(
            f"result stream is missing task indices {missing[:8]} "
            f"({len(missing)} of {len(tasks)})"
        )
    ordered = [results[i] for i in range(len(tasks))]
    return build_run_table(kind, tasks, ordered, job=job)


# -- reading + validation --------------------------------------------------------


def read_run_table(source: Union[str, bytes]) -> List[Dict[str, str]]:
    """Parse a canonical CSV (path or bytes) into raw-string row dicts.

    Raises :class:`~repro.errors.ConfigurationError` when the header
    does not match the schema exactly (order included).
    """
    if isinstance(source, bytes):
        text = source.decode("utf-8")
    else:
        with open(source, "r", encoding="utf-8", newline="") as handle:
            text = handle.read()
    import csv
    import io

    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ConfigurationError("run table is empty (no header)")
    problems = validate_header(rows[0])
    if problems:
        raise ConfigurationError(
            "run table header does not match schema: " + "; ".join(problems)
        )
    out: List[Dict[str, str]] = []
    for cells in rows[1:]:
        if not cells:
            continue
        if len(cells) != len(COLUMN_NAMES):
            raise ConfigurationError(
                f"row has {len(cells)} cells, schema has {len(COLUMN_NAMES)}"
            )
        out.append(dict(zip(COLUMN_NAMES, cells)))
    return out


def validate_header(fieldnames: Sequence[str]) -> List[str]:
    """Problems with a header row (empty list = canonical)."""
    problems: List[str] = []
    names = list(fieldnames)
    missing = [n for n in COLUMN_NAMES if n not in names]
    extra = [n for n in names if n not in _COLUMN_INDEX]
    if missing:
        problems.append(f"missing column(s): {missing}")
    if extra:
        problems.append(f"unknown column(s): {extra}")
    if not missing and not extra and tuple(names) != COLUMN_NAMES:
        problems.append("columns are present but out of canonical order")
    return problems


def columns_markdown() -> str:
    """The schema as a markdown reference table.

    ``RUN_TABLE_COLUMNS_EXPLANATION.md`` embeds this output verbatim;
    the runtable test suite regenerates it and fails on any drift, so
    the committed doc always matches the code's schema.
    """
    lines = [
        "| # | Column | Group | Units | Domain | Applies to | Description |",
        "|---|--------|-------|-------|--------|------------|-------------|",
    ]
    for i, col in enumerate(RUN_TABLE_COLUMNS):
        applies = (
            "all" if col.applies == _ALL else ", ".join(col.applies)
        )
        lines.append(
            f"| {i} | `{col.name}` | {col.group} | {col.units} | "
            f"{col.domain} | {applies} | {col.description} |"
        )
    return "\n".join(lines) + "\n"


def validate_columns_doc(text: str) -> List[str]:
    """Problems with a columns document against the live schema."""
    problems: List[str] = []
    if f"schema version {SCHEMA_VERSION}" not in text:
        problems.append(
            f"document does not state 'schema version {SCHEMA_VERSION}'"
        )
    if columns_markdown() not in text:
        problems.append(
            "document's column reference table does not match "
            "columns_markdown() (regenerate it)"
        )
    return problems
