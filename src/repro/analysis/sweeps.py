"""Design-space sweeps: the programmer's tuning loop as a library.

Section 8.6 frames incidental configuration as "a design space to play
with through a debug-test-modify loop until the QoS reaches the minimum
requirements". :func:`qos_frontier` automates one full loop: it sweeps
``minbits`` x backup policy x recompute passes for a kernel against a
QoS target on a given power profile, and returns every configuration
scored by quality and forward progress, plus the best QoS-meeting pick
(the paper's Table 2 row for that kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .._validation import check_positive
from ..core.recompute import RecomputeAndCombine, schedule_from_trace
from ..energy.traces import PowerTrace
from ..errors import ConfigurationError
from ..kernels.base import Kernel
from ..kernels.images import test_scene
from ..nvm.retention import STANDARD_POLICY_NAMES
from ..quality.qos import QoSTarget, TunedPolicy
from .engine import TraceTask, run_on_trace

__all__ = ["SweepPoint", "QoSFrontier", "qos_frontier"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration of the tuning loop."""

    minbits: int
    recompute_passes: int
    backup_policy: str
    psnr_db: float
    forward_progress: int
    meets_target: bool


@dataclass(frozen=True)
class QoSFrontier:
    """All sweep points plus the tuned (Table 2 style) pick."""

    kernel: str
    target: QoSTarget
    points: Tuple[SweepPoint, ...]

    @property
    def feasible(self) -> Tuple[SweepPoint, ...]:
        """Configurations that meet the QoS target."""
        return tuple(p for p in self.points if p.meets_target)

    @property
    def best(self) -> Optional[SweepPoint]:
        """Highest-FP feasible point; ``None`` if the target is unmet."""
        feasible = self.feasible
        if not feasible:
            return None
        return max(feasible, key=lambda p: p.forward_progress)

    def tuned_policy(self) -> TunedPolicy:
        """The pick as a :class:`TunedPolicy` row (raises if infeasible)."""
        best = self.best
        if best is None:
            raise ConfigurationError(
                f"no swept configuration meets the QoS target for {self.kernel!r}"
            )
        return TunedPolicy(
            kernel=self.kernel,
            target=self.target,
            minbits=best.minbits,
            recompute_passes=best.recompute_passes,
            backup_policy=best.backup_policy,
        )


def qos_frontier(
    kernel: Kernel,
    target_psnr_db: float,
    trace: PowerTrace,
    minbits_values: Sequence[int] = (2, 3, 4, 6),
    recompute_values: Sequence[int] = (0, 1, 2),
    policies: Sequence[str] = STANDARD_POLICY_NAMES,
    image_size: int = 64,
    seed: int = 9,
    workers: Optional[int] = None,
) -> QoSFrontier:
    """Sweep the incidental design space for one kernel and QoS target.

    Quality is measured by running the kernel at dynamic precision with
    ``minbits`` as the floor and merging ``recompute_passes`` extra
    passes (the full Section 8.5 pipeline); forward progress comes from
    the 8-bit system simulation under each backup policy.

    ``workers`` fans the per-policy system simulations out over the
    engine's process pool (``None`` uses the configured default).
    """
    target = QoSTarget(min_psnr_db=check_positive(target_psnr_db, "target_psnr_db"))
    image = test_scene(image_size, "mixed", seed=7)
    # The frontier evaluates *deployment* configurations, so schedules
    # use the fine-tuned controller (aggressive surplus drawdown), like
    # the paper's Table 2 tuning.
    from ..core.controller import ApproximationControlUnit

    tuned_control = ApproximationControlUnit(
        comfort_fill=0.15, drawdown_horizon_ticks=12
    )

    # FP depends only on the backup policy; compute once per policy
    # (in parallel when workers > 1 — the trace is caller-supplied, so
    # these runs go through the engine's explicit-trace path).
    policy_runs = run_on_trace(
        trace,
        [TraceTask(bits=8, policy=name, kernel=kernel.name) for name in policies],
        workers=workers,
    )
    fp_by_policy = {
        name: run.forward_progress for name, run in zip(policies, policy_runs)
    }

    points: List[SweepPoint] = []
    for minbits in minbits_values:
        schedule = schedule_from_trace(trace, minbits, 8, control=tuned_control)
        rac = RecomputeAndCombine(kernel, minbits, 8, seed=seed)
        for passes in recompute_values:
            outcome = rac.run(image, passes + 1, schedule)
            quality = outcome.psnr_per_pass[-1]
            for policy_name in policies:
                points.append(
                    SweepPoint(
                        minbits=minbits,
                        recompute_passes=passes,
                        backup_policy=policy_name,
                        psnr_db=quality,
                        forward_progress=fp_by_policy[policy_name],
                        meets_target=target.met_by_psnr(quality),
                    )
                )
    return QoSFrontier(kernel=kernel.name, target=target, points=tuple(points))
