"""Per-figure/table experiment runners.

Every table and figure in the paper's evaluation has a runner here
that regenerates its underlying data series on our simulated platform
(see DESIGN.md's experiment index). Runners return an
:class:`ExperimentResult` whose ``rows`` print as the artifact's table
and whose ``data`` dict carries the raw values the test suite asserts
shape properties on.

Absolute numbers are simulator-calibration-dependent; the *shape*
targets (who wins, orderings, approximate factors) are what the paper
pins down and what ``tests/test_experiments.py`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache, wraps
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.controller import DynamicBitAllocator, IncidentalAllocator
from ..core.recompute import RecomputeAndCombine, schedule_from_trace
from ..energy.outages import outage_statistics
from ..energy.traces import TICK_S, PowerTrace
from ..kernels import (
    ApproxContext,
    JPEGEncodeKernel,
    create_kernel,
    frame_sequence,
    test_scene,
)
from ..kernels.registry import KERNEL_NAMES, kernel_mix
from ..nvm.failures import count_retention_failures
from ..nvm.retention import (
    LinearRetention,
    LogRetention,
    ParabolaRetention,
    STANDARD_POLICY_NAMES,
    policy_by_name,
)
from ..nvm.sttram import RETENTION_10MS_S, RETENTION_ONE_DAY_S, STTRAMModel
from ..nvp.processor import NonvolatileProcessor
from ..quality.metrics import mse as compute_mse
from ..quality.metrics import psnr as compute_psnr
from ..quality.qos import TABLE2_POLICIES, evaluate_qos
from ..system.config import SystemConfig
from ..system.simulator import FixedBitAllocator, NVPSystemSimulator, simulate_fixed_bits
from ..system.wait_compute import WaitComputeSimulator
from . import engine, telemetry
from .reporting import format_table

__all__ = ["ExperimentResult"]

#: Image size used by the quality studies (the paper uses 256x256;
#: quality curves are size-independent for these kernels).
QUALITY_IMAGE_SIZE = 64

#: Retention-curve stretch matching our platform's backup cadence
#: (DESIGN.md §5.2).
RETENTION_TIME_SCALE = 8.0


@dataclass
class ExperimentResult:
    """Uniform result wrapper: printable rows plus raw data."""

    experiment_id: str
    description: str
    headers: Tuple[str, ...]
    rows: List[Tuple]
    data: Dict[str, object] = field(default_factory=dict)

    def as_table(self) -> str:
        """The artifact as an aligned text table."""
        title = f"[{self.experiment_id}] {self.description}"
        return title + "\n" + format_table(self.headers, self.rows)


def _artifact(label: str):
    """Tag a runner's engine activity with its artifact id.

    Every grid the wrapped runner executes produces a
    :class:`repro.analysis.telemetry.RunReport` carrying ``label`` as
    its context, so ``repro-experiments report`` can attribute cache
    hits, retries and degradations to the artifact that caused them.
    """

    def decorate(fn):
        @wraps(fn)
        def wrapper(*args, **kwargs):
            with telemetry.context(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- shared, cached building blocks -------------------------------------------
#
# All fixed-bit simulation and trace reuse is delegated to
# ``repro.analysis.engine`` (in-process memo + optional on-disk result
# cache). The engine hands out defensive copies, so — unlike the
# ``lru_cache`` layers this replaced — a runner mutating a result's
# arrays cannot poison later experiments.


def _trace(profile_id: int, duration_s: float) -> PowerTrace:
    return engine.trace_for(profile_id, duration_s)


def _fixed_run(profile_id: int, duration_s: float, bits: int, policy_name: str, kernel: str):
    """Cached fixed-bit system simulation (returns a fresh copy)."""
    return engine.cached_fixed_run(
        engine.FixedBitTask(
            profile_id=profile_id,
            bits=bits,
            duration_s=duration_s,
            policy=policy_name,
            kernel=kernel,
        )
    )


class _SaturatedIncidentalAllocator(IncidentalAllocator):
    """An incidental allocator with a permanently full resume buffer.

    Used by the Figure 9 timing study, which examines the machine's
    power behaviour independent of any particular frame stream.
    """

    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        self.pending_lanes = self.max_width - 1
        return super().allocate(income_uw, stored_uj, tick)


# -- Figure 2: the five power profiles ----------------------------------------


@_artifact("fig02")
def fig02_power_profiles(duration_s: float = 10.0) -> ExperimentResult:
    """Figure 2: statistics of the five standard "watch" profiles."""
    rows = []
    for pid in range(1, 6):
        trace = _trace(pid, duration_s)
        stats = outage_statistics(trace)
        rows.append(
            (
                pid,
                round(trace.mean_power_uw, 1),
                round(trace.peak_power_uw, 0),
                stats.count,
                round(stats.outage_fraction, 3),
            )
        )
    return ExperimentResult(
        experiment_id="fig02",
        description="power profiles of 'watch' in daily life use",
        headers=("profile", "mean_uW", "peak_uW", "emergencies", "outage_frac"),
        rows=rows,
        data={"means": [r[1] for r in rows], "emergencies": [r[3] for r in rows]},
    )


# -- Figure 3: outage durations and frequency ----------------------------------


@_artifact("fig03")
def fig03_outage_statistics(profile_id: int = 1, duration_s: float = 10.0) -> ExperimentResult:
    """Figure 3: outage duration distribution for one profile."""
    trace = _trace(profile_id, duration_s)
    stats = outage_statistics(trace)
    edges = [0, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400]
    counts, bin_edges = stats.histogram(edges)
    rows = [
        (f"{int(bin_edges[i])}-{int(bin_edges[i + 1])}", int(counts[i]))
        for i in range(len(counts))
    ]
    return ExperimentResult(
        experiment_id="fig03",
        description=f"power outage durations, profile {profile_id} (0.1 ms ticks)",
        headers=("duration_ticks", "count"),
        rows=rows,
        data={
            "count": stats.count,
            "median": stats.median_duration_ticks,
            "max": stats.max_duration_ticks,
            "histogram": counts.tolist(),
        },
    )


# -- Figure 4: STT-RAM write current vs pulse width vs retention ---------------


@_artifact("fig04")
def fig04_sttram_write() -> ExperimentResult:
    """Figure 4: write current / pulse width / retention trade-off."""
    cell = STTRAMModel()
    retentions = [
        ("10ms", RETENTION_10MS_S),
        ("1s", 1.0),
        ("1min", 60.0),
        ("1day", RETENTION_ONE_DAY_S),
    ]
    pulses = (1.0, 2.0, 4.0, 8.0)
    rows = []
    for label, retention in retentions:
        currents = [round(cell.write_current_ua(p, retention), 1) for p in pulses]
        pulse, current, energy = cell.optimal_write_point(retention)
        rows.append((label, *currents, round(pulse, 2), round(energy, 3)))
    saving = cell.energy_saving_fraction(RETENTION_ONE_DAY_S, RETENTION_10MS_S)
    return ExperimentResult(
        experiment_id="fig04",
        description="STT-RAM write current vs pulse width (uA); best-energy point",
        headers=("retention", "I@1ns", "I@2ns", "I@4ns", "I@8ns", "best_pulse_ns", "best_E_pJ"),
        rows=rows,
        data={"saving_1day_to_10ms": saving},
    )


# -- Figure 5: retention-time shaping curves ------------------------------------


@_artifact("fig05")
def fig05_retention_shaping(time_scale: float = 1.0) -> ExperimentResult:
    """Figure 5: per-bit shaped retention times (Equations 1-3)."""
    policies = [
        LinearRetention(time_scale=time_scale),
        LogRetention(time_scale=time_scale),
        ParabolaRetention(time_scale=time_scale),
    ]
    cell = STTRAMModel()
    rows = []
    for bit in range(1, 9):
        rows.append(
            (bit, *[int(p.retention_ticks(bit)) for p in policies])
        )
    relatives = {p.name: round(p.relative_write_energy(cell), 3) for p in policies}
    return ExperimentResult(
        experiment_id="fig05",
        description="retention time per bit (ticks): linear / log / parabola",
        headers=("bit", "linear", "log", "parabola"),
        rows=rows,
        data={"relative_energy": relatives},
    )


# -- Section 2.2: NVP vs wait-compute -------------------------------------------


@_artifact("sec2.2")
def sec22_wait_compute(
    profile_ids: Sequence[int] = (1, 2, 3, 4, 5),
    duration_s: float = 10.0,
    unit_instructions: int = 3_000,
    kernel: str = "median",
) -> ExperimentResult:
    """Section 2.2: NVP execution vs the wait-compute paradigm."""
    rows = []
    ratios = []
    mix = kernel_mix(kernel)
    for pid in profile_ids:
        trace = _trace(pid, duration_s)
        nvp = _fixed_run(pid, duration_s, 8, "precise", kernel)
        wait = WaitComputeSimulator(unit_instructions, mix=mix).run(trace)
        nvp_units = nvp.forward_progress / unit_instructions
        wc_units = wait.units_completed
        ratio = nvp_units / wc_units if wc_units else float("inf")
        ratios.append(ratio)
        rows.append(
            (pid, round(nvp_units, 2), wc_units, wait.units_lost, round(ratio, 2))
        )
    return ExperimentResult(
        experiment_id="sec2.2",
        description="NVP vs wait-compute (units of work per trace)",
        headers=("profile", "nvp_units", "wait_units", "wait_lost", "nvp/wait"),
        rows=rows,
        data={"ratios": ratios},
    )


# -- Figure 9: timing-behaviour analysis -----------------------------------------


@_artifact("fig09")
def fig09_timing_behavior(
    profile_id: int = 2,
    duration_s: float = 10.0,
    window_ticks: int = 30_000,
) -> ExperimentResult:
    """Figure 9: system-on time and FP of four configurations.

    Runs on the densest-activity window of the profile (the paper zooms
    into an active portion of profile 2). Configurations: precise 8-bit
    NVP, incidental with pragmas (a1,b) = [2..8] bits, incidental with
    (a2,b) = [6..8] bits, and a 4-SIMD full-precision NVP.
    """
    trace = _trace(profile_id, duration_s)
    _, window = trace.high_activity_window(window_ticks)
    config = SystemConfig()

    def _run(allocator, policy=None):
        processor = NonvolatileProcessor(policy=policy)
        return NVPSystemSimulator(window, processor, allocator, config=config).run()

    linear = policy_by_name("linear", time_scale=RETENTION_TIME_SCALE)
    configs = [
        ("8-bit NVP", _run(FixedBitAllocator(8))),
        (
            "incidental (a1,b) [2..8]",
            _run(_SaturatedIncidentalAllocator(2, 8, capacity_uj=config.capacitor_uj), linear),
        ),
        (
            "incidental (a2,b) [6..8]",
            _run(_SaturatedIncidentalAllocator(6, 8, capacity_uj=config.capacitor_uj), linear),
        ),
        ("4-SIMD NVP", _run(FixedBitAllocator(8, simd_width=4))),
    ]
    rows = []
    for name, sim in configs:
        rows.append(
            (
                name,
                round(100 * sim.system_on_fraction, 1),
                sim.forward_progress,
                sim.total_progress,
                sim.backup_count,
            )
        )
    return ExperimentResult(
        experiment_id="fig09",
        description="timing behaviour on an active window",
        headers=("config", "on_%", "FP_current", "FP_total", "backups"),
        rows=rows,
        data={
            "on_fractions": {name: sim.system_on_fraction for name, sim in configs},
            "total_progress": {name: sim.total_progress for name, sim in configs},
        },
    )


# -- Figures 11-14: bitwidth vs quality --------------------------------------------


def _quality_sweep(mode: str, kernels: Sequence[str], bits_list: Sequence[int], seed: int = 1):
    image = test_scene(QUALITY_IMAGE_SIZE, "mixed", seed=7)
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for name in kernels:
        kernel = create_kernel(name)
        reference = kernel.run_exact(image)
        data[name] = {}
        for bits in bits_list:
            if mode == "alu":
                ctx = ApproxContext(alu_bits=bits, seed=seed)
            else:
                ctx = ApproxContext(mem_bits=bits, seed=seed)
            output = kernel.run(image, ctx)
            err = compute_mse(reference, output)
            quality = compute_psnr(reference, output)
            data[name][bits] = (err, quality)
            rows.append((name, bits, round(err, 2), round(quality, 2)))
    return rows, data


@_artifact("fig12")
def fig12_alu_quality(
    kernels: Sequence[str] = ("sobel", "median", "integral"),
    bits_list: Sequence[int] = (7, 6, 5, 4, 3, 2, 1),
) -> ExperimentResult:
    """Figures 11-12: approximate-ALU bitwidth vs MSE and PSNR."""
    rows, data = _quality_sweep("alu", kernels, bits_list)
    return ExperimentResult(
        experiment_id="fig12",
        description="approximate ALU: MSE / PSNR vs reliable bits",
        headers=("kernel", "bits", "MSE", "PSNR_dB"),
        rows=rows,
        data=data,
    )


@_artifact("fig14")
def fig14_memory_quality(
    kernels: Sequence[str] = ("sobel", "median", "integral"),
    bits_list: Sequence[int] = (7, 6, 5, 4, 3, 2, 1),
) -> ExperimentResult:
    """Figures 13-14: approximate-memory bitwidth vs MSE and PSNR."""
    rows, data = _quality_sweep("mem", kernels, bits_list)
    return ExperimentResult(
        experiment_id="fig14",
        description="approximate memory (truncation): MSE / PSNR vs reliable bits",
        headers=("kernel", "bits", "MSE", "PSNR_dB"),
        rows=rows,
        data=data,
    )


# -- Figures 15-16: forward progress and backups vs bitwidth ------------------------


@_artifact("fig15")
def fig15_forward_progress(
    profile_ids: Sequence[int] = (1, 2, 3, 4, 5),
    bits_list: Sequence[int] = (8, 7, 6, 5, 4, 3, 2, 1),
    duration_s: float = 10.0,
) -> ExperimentResult:
    """Figure 15: forward progress as ALU+memory bits shrink."""
    grid = engine.run_grid(
        engine.GridSpec(
            profile_ids=tuple(profile_ids),
            bits=tuple(bits_list),
            kernels=("median",),
            duration_s=duration_s,
        )
    )
    rows = []
    data: Dict[int, Dict[int, int]] = {pid: {} for pid in profile_ids}
    for task, sim in grid:
        data[task.profile_id][task.bits] = sim.forward_progress
        rows.append((task.profile_id, task.bits, sim.forward_progress))
    return ExperimentResult(
        experiment_id="fig15",
        description="forward progress vs reliable bits",
        headers=("profile", "bits", "forward_progress"),
        rows=rows,
        data={"fp": data},
    )


@_artifact("fig16")
def fig16_backup_counts(
    profile_ids: Sequence[int] = (1, 2, 3, 4, 5),
    bits_list: Sequence[int] = (8, 7, 6, 5, 4, 3, 2, 1),
    duration_s: float = 10.0,
) -> ExperimentResult:
    """Figure 16: number of backups as bits shrink."""
    grid = engine.run_grid(
        engine.GridSpec(
            profile_ids=tuple(profile_ids),
            bits=tuple(bits_list),
            kernels=("median",),
            duration_s=duration_s,
        )
    )
    rows = []
    data: Dict[int, Dict[int, int]] = {pid: {} for pid in profile_ids}
    for task, sim in grid:
        data[task.profile_id][task.bits] = sim.backup_count
        rows.append((task.profile_id, task.bits, sim.backup_count))
    return ExperimentResult(
        experiment_id="fig16",
        description="backup count vs reliable bits",
        headers=("profile", "bits", "backups"),
        rows=rows,
        data={"backups": data},
    )


# -- Figures 17-21: dynamic bitwidth --------------------------------------------------


@lru_cache(maxsize=64)
def _dynamic_run_pristine(profile_id: int, duration_s: float, minbits: int, kernel: str):
    trace = _trace(profile_id, duration_s)
    config = SystemConfig()
    allocator = DynamicBitAllocator(minbits, 8, capacity_uj=config.capacitor_uj)
    processor = NonvolatileProcessor(mix=kernel_mix(kernel))
    return NVPSystemSimulator(trace, processor, allocator, config=config).run()


def _dynamic_run(profile_id: int, duration_s: float, minbits: int, kernel: str):
    """Cached dynamic-bitwidth simulation (returns a fresh copy).

    The ``lru_cache`` holds the pristine result; handing out a copy
    prevents the aliasing hazard where a caller mutating
    ``result.bit_schedule`` would silently corrupt every later
    experiment sharing the cache entry.
    """
    return engine.copy_result(
        _dynamic_run_pristine(profile_id, duration_s, minbits, kernel)
    )


@_artifact("fig18")
def fig18_bit_utilization(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
    minbits: int = 1,
) -> ExperimentResult:
    """Figures 17-18: dynamic-bitwidth utilisation distribution."""
    rows = []
    data = {}
    for pid in profile_ids:
        sim = _dynamic_run(pid, duration_s, minbits, "median")
        util = sim.bit_utilization()
        data[pid] = util
        rows.append(
            (pid, *[round(100 * util[level], 1) for level in range(0, 9)])
        )
    return ExperimentResult(
        experiment_id="fig18",
        description="dynamic bitwidth: % of time at each level (0 = OFF)",
        headers=("profile", "OFF", "1b", "2b", "3b", "4b", "5b", "6b", "7b", "8b"),
        rows=rows,
        data={"utilization": data},
    )


def _dynamic_quality(profile_id: int, duration_s: float, minbits: int, kernel_name: str, seed: int = 3):
    sim = _dynamic_run(profile_id, duration_s, minbits, kernel_name)
    schedule = np.clip(sim.active_bit_series(), minbits, 8)
    kernel = create_kernel(kernel_name)
    image = test_scene(QUALITY_IMAGE_SIZE, "mixed", seed=7)
    reference = kernel.run_exact(image)
    ctx = ApproxContext(alu_bits=schedule, seed=seed)
    output = kernel.run(image, ctx)
    return sim, compute_mse(reference, output), compute_psnr(reference, output)


@_artifact("fig20")
def fig20_dynamic_vs_fixed(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
    minbits: int = 1,
    equivalent_fixed_bits: int = 2,
    kernel: str = "median",
) -> ExperimentResult:
    """Figures 19-20: dynamic bitwidth vs the similar-quality fixed bits."""
    rows = []
    fp_gains = []
    for pid in profile_ids:
        dyn, dyn_mse, dyn_psnr = _dynamic_quality(pid, duration_s, minbits, kernel)
        fixed = _fixed_run(pid, duration_s, equivalent_fixed_bits, "precise", kernel)
        gain = dyn.forward_progress / max(1, fixed.forward_progress)
        fp_gains.append(gain)
        rows.append(
            (
                pid,
                round(dyn_mse, 2),
                round(dyn_psnr, 2),
                dyn.forward_progress,
                fixed.forward_progress,
                round(gain, 2),
            )
        )
    return ExperimentResult(
        experiment_id="fig20",
        description=(
            f"dynamic [{minbits}..8] bits vs fixed {equivalent_fixed_bits}-bit ({kernel})"
        ),
        headers=("profile", "dyn_MSE", "dyn_PSNR", "dyn_FP", "fixed_FP", "FP_gain"),
        rows=rows,
        data={"fp_gains": fp_gains},
    )


@_artifact("fig21")
def fig21_minbits4(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
) -> ExperimentResult:
    """Figure 21: 4-bit-minimum dynamic vs the similar-quality fixed 7-bit."""
    return ExperimentResult(
        experiment_id="fig21",
        description="dynamic [4..8] bits vs fixed 7-bit (median)",
        headers=fig20_dynamic_vs_fixed().headers,
        rows=fig20_dynamic_vs_fixed(
            profile_ids, duration_s, minbits=4, equivalent_fixed_bits=7
        ).rows,
        data=fig20_dynamic_vs_fixed(
            profile_ids, duration_s, minbits=4, equivalent_fixed_bits=7
        ).data,
    )


# -- Figure 22: retention failures -------------------------------------------------------


@_artifact("fig22")
def fig22_retention_failures(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
) -> ExperimentResult:
    """Figure 22: per-bit retention-failure counts per policy.

    Counted at the paper's cadence: every power emergency is a backup,
    and a bit fails when the following outage outlives its nominal
    (unscaled) shaped retention.
    """
    rows = []
    data: Dict[str, Dict[int, List[int]]] = {}
    for policy_name in STANDARD_POLICY_NAMES:
        policy = policy_by_name(policy_name)
        data[policy_name] = {}
        for pid in profile_ids:
            stats = outage_statistics(_trace(pid, duration_s))
            counts = count_retention_failures(stats.durations_ticks, policy)
            data[policy_name][pid] = list(counts.per_bit)
            rows.append((policy_name, pid, *counts.per_bit))
    return ExperimentResult(
        experiment_id="fig22",
        description="retention failures per bit (bit 1 = LSB)",
        headers=("policy", "profile", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8"),
        rows=rows,
        data={"failures": data},
    )


# -- Figures 23-25: backup/recovery approximation ------------------------------------------


def _executive_task(
    kernel_name: str,
    policy: str,
    profile_id: int,
    duration_s: float,
    minbits: int,
    frame_size: int = 12,
    frame_period_ticks: int = 15_000,
    seed: int = 0,
) -> engine.ExecutiveTask:
    return engine.ExecutiveTask(
        kernel=kernel_name,
        policy=policy,
        profile_id=profile_id,
        minbits=minbits,
        duration_s=duration_s,
        frame_size=frame_size,
        frame_period_ticks=frame_period_ticks,
        retention_time_scale=RETENTION_TIME_SCALE,
        seed=seed,
    )


def _executive_run(
    kernel_name: str,
    policy: str,
    profile_id: int,
    duration_s: float,
    minbits: int,
    frame_size: int = 12,
    frame_period_ticks: int = 15_000,
    seed: int = 0,
):
    """Cached executive simulation (returns ``(task, fresh result)``)."""
    task = _executive_task(
        kernel_name, policy, profile_id, duration_s, minbits,
        frame_size=frame_size, frame_period_ticks=frame_period_ticks, seed=seed,
    )
    return task, engine.cached_executive_run(task)


@_artifact("fig24")
def fig24_quality_vs_policy(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
    kernel: str = "median",
) -> ExperimentResult:
    """Figures 23-24: output quality under each retention policy."""
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    tasks = [
        _executive_task(kernel, policy_name, pid, duration_s, minbits=4)
        for policy_name in STANDARD_POLICY_NAMES
        for pid in profile_ids
    ]
    grid = engine.run_executive_grid(tasks)
    for policy_name in STANDARD_POLICY_NAMES:
        data[policy_name] = {}
        for pid in profile_ids:
            task = _executive_task(kernel, policy_name, pid, duration_s, minbits=4)
            result = grid.result_for(task)
            scores = engine.executive_frame_quality(task, result, min_coverage=0.999)
            if scores:
                mean_mse = float(np.mean([s.mse for s in scores]))
                mean_psnr = float(np.mean([s.psnr_db for s in scores]))
            else:
                mean_mse, mean_psnr = float("nan"), float("nan")
            data[policy_name][pid] = (mean_mse, mean_psnr)
            rows.append((policy_name, pid, len(scores), round(mean_mse, 2), round(mean_psnr, 2)))
    return ExperimentResult(
        experiment_id="fig24",
        description=f"quality vs retention policy ({kernel}, completed frames)",
        headers=("policy", "profile", "frames", "MSE", "PSNR_dB"),
        rows=rows,
        data={"quality": data},
    )


@_artifact("fig25")
def fig25_fp_retention(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
) -> ExperimentResult:
    """Figure 25: FP improvement from retention-shaped backups."""
    rows = []
    data: Dict[str, List[float]] = {name: [] for name in STANDARD_POLICY_NAMES}
    for pid in profile_ids:
        base = _fixed_run(pid, duration_s, 8, "precise", "median")
        gains = []
        for policy_name in STANDARD_POLICY_NAMES:
            shaped = _fixed_run(pid, duration_s, 8, policy_name, "median")
            gain = shaped.forward_progress / max(1, base.forward_progress)
            data[policy_name].append(gain)
            gains.append(round(gain, 3))
        rows.append((pid, *gains))
    return ExperimentResult(
        experiment_id="fig25",
        description="FP gain over precise backups (8-bit NVP)",
        headers=("profile", "linear", "log", "parabola"),
        rows=rows,
        data={"gains": data},
    )


# -- Figures 26-27: recomputation ----------------------------------------------------------


@_artifact("fig27")
def fig27_recomputation(
    profile_id: int = 1,
    duration_s: float = 10.0,
    kernel: str = "median",
    minbits_list: Sequence[int] = (1, 2, 4, 6),
    passes: int = 8,
) -> ExperimentResult:
    """Figures 26-27: quality vs recompute-and-combine passes."""
    trace = _trace(profile_id, duration_s)
    image = test_scene(QUALITY_IMAGE_SIZE, "mixed", seed=7)
    rows = []
    data: Dict[int, List[float]] = {}
    for minbits in minbits_list:
        schedule = schedule_from_trace(trace, minbits, 8)
        rac = RecomputeAndCombine(create_kernel(kernel), minbits, 8, seed=11)
        outcome = rac.run(image, passes, schedule)
        data[minbits] = list(outcome.psnr_per_pass)
        for pass_index, quality in enumerate(outcome.psnr_per_pass, start=1):
            rows.append((minbits, pass_index, round(quality, 2)))
    return ExperimentResult(
        experiment_id="fig27",
        description=f"PSNR vs recomputation passes ({kernel})",
        headers=("minbits", "pass", "PSNR_dB"),
        rows=rows,
        data={"psnr": data},
    )


# -- Table 2: tuned QoS policies --------------------------------------------------------------


@_artifact("table2")
def table2_qos(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
    seed: int = 5,
) -> ExperimentResult:
    """Table 2: do the tuned policies meet their QoS targets?

    The schedules use the *fine-tuned* deployment controller — the
    paper's programmers iterate a debug-test-modify loop until QoS is
    met, and a more aggressive surplus drawdown (higher-precision
    recompute passes) is part of that tuning.
    """
    from ..core.controller import ApproximationControlUnit

    tuned_control = ApproximationControlUnit(
        comfort_fill=0.15, drawdown_horizon_ticks=12
    )
    rows = []
    data: Dict[str, Dict[str, object]] = {}
    image = test_scene(QUALITY_IMAGE_SIZE, "mixed", seed=7)
    for name, policy in TABLE2_POLICIES.items():
        met_all = True
        measured = []
        for pid in profile_ids:
            trace = _trace(pid, duration_s)
            schedule = schedule_from_trace(
                trace, policy.minbits, 8, control=tuned_control
            )
            kernel = create_kernel(name)
            if name == "jpeg_encode":
                frames = frame_sequence(4, QUALITY_IMAGE_SIZE, seed=7)
                jpeg: JPEGEncodeKernel = kernel
                baseline = jpeg.encode(frames[1], frames[0])
                n = frames[1].size
                window = np.take(schedule, np.arange(n), mode="wrap")
                ctx = ApproxContext(alu_bits=window, seed=seed)
                result = jpeg.encode(frames[1], frames[0], ctx)
                ratio = result.size_ratio(baseline.size_bits)
                measured.append(ratio)
                met_all &= evaluate_qos(policy, size_ratio_value=ratio)
            else:
                rac = RecomputeAndCombine(kernel, policy.minbits, 8, seed=seed)
                outcome = rac.run(image, max(1, policy.recompute_passes + 1), schedule)
                quality = outcome.psnr_per_pass[-1]
                measured.append(quality)
                met_all &= evaluate_qos(policy, psnr_db=quality)
        data[name] = {"measured": measured, "met": met_all}
        rows.append(
            (
                name,
                policy.target.describe(),
                policy.minbits,
                policy.recompute_passes,
                policy.backup_policy,
                round(float(np.mean(measured)), 2),
                met_all,
            )
        )
    return ExperimentResult(
        experiment_id="table2",
        description="fine-tuned incidental policies vs QoS targets",
        headers=("kernel", "target", "minbits", "recompute", "backup", "measured", "met"),
        rows=rows,
        data=data,
    )


# -- Figure 28: overall incidental FP gain ------------------------------------------------------


@_artifact("fig28")
def fig28_overall_gain(
    kernel_names: Sequence[str] = KERNEL_NAMES,
    profile_ids: Sequence[int] = (1, 2, 3, 4, 5),
    duration_s: float = 10.0,
    frame_size: int = 16,
    frame_period_ticks: int = 2_500,
) -> ExperimentResult:
    """Figure 28: FP gain of incidental computing & backup per kernel.

    Each kernel runs the incidental executive with its Table 2 policy
    (default: minbits 3, linear) against a backlog-saturated frame
    stream, compared to a precise 8-bit NVP with the same instruction
    mix.
    """
    def task_for(name: str, pid: int) -> engine.ExecutiveTask:
        tuned = TABLE2_POLICIES.get(name)
        minbits = tuned.minbits if tuned else 3
        backup = tuned.backup_policy if tuned else "linear"
        return _executive_task(
            name, backup, pid, duration_s, minbits=minbits,
            frame_size=frame_size, frame_period_ticks=frame_period_ticks,
        )

    grid = engine.run_executive_grid(
        [task_for(name, pid) for name in kernel_names for pid in profile_ids]
    )
    rows = []
    per_kernel: Dict[str, List[float]] = {}
    for name in kernel_names:
        gains = []
        for pid in profile_ids:
            result = grid.result_for(task_for(name, pid))
            base = _fixed_run(pid, duration_s, 8, "precise", name)
            gains.append(result.useful_progress / max(1, base.forward_progress))
        per_kernel[name] = gains
        rows.append((name, *[round(g, 2) for g in gains], round(float(np.mean(gains)), 2)))
    all_gains = [g for gains in per_kernel.values() for g in gains]
    average = float(np.mean(all_gains)) if all_gains else 0.0
    rows.append(("ALL-AVERAGE", *[""] * len(profile_ids), round(average, 2)))
    return ExperimentResult(
        experiment_id="fig28",
        description="incidental FP gain over precise NVP",
        headers=("kernel", *[f"p{p}" for p in profile_ids], "mean"),
        rows=rows,
        data={"per_kernel": per_kernel, "average": average},
    )


# -- Section 7: frame-rate validation --------------------------------------------------------------


@_artifact("sec7")
def sec7_frame_rates(
    kernel_names: Sequence[str] = ("susan_corners", "susan_edges", "jpeg_encode"),
    profile_id: int = 1,
    duration_s: float = 10.0,
    frame_elements: int = 256 * 256,
) -> ExperimentResult:
    """Section 7: seconds per frame for the three execution paradigms.

    Extrapolates each paradigm's measured instruction throughput to the
    paper's 256x256 frames: wait-compute < plain NVP < incidental, with
    the same ordering the paper reports (1.65 s -> 0.97 s -> 0.3 s for
    susan.corners etc.).
    """
    trace = _trace(profile_id, duration_s)
    rows = []
    data: Dict[str, Tuple[float, float, float]] = {}
    for name in kernel_names:
        kernel = create_kernel(name)
        frame_instr = frame_elements * kernel.instructions_per_element
        mix = kernel_mix(name)

        # A full frame cannot be banked by any realistic ESD on these
        # profiles, so the wait-compute paradigm's *sustained rate* is
        # probed with a bankable sub-unit and extrapolated (optimistic
        # in wait-compute's favour: larger units only lose more energy
        # to ESD leakage and top-off inefficiency).
        probe_unit = 5_000
        wait = WaitComputeSimulator(probe_unit, mix=mix, init_instructions=0).run(trace)
        wait_rate = (
            wait.forward_progress / trace.duration_s if wait.forward_progress else 0.0
        )
        nvp = _fixed_run(profile_id, duration_s, 8, "precise", name)
        nvp_rate = nvp.forward_progress / trace.duration_s

        tuned = TABLE2_POLICIES.get(name)
        minbits = tuned.minbits if tuned else 3
        backup = tuned.backup_policy if tuned else "linear"
        _, inc = _executive_run(name, backup, profile_id, duration_s, minbits=minbits,
                                frame_size=16, frame_period_ticks=2_500)
        inc_rate = inc.useful_progress / trace.duration_s

        def seconds_per_frame(rate: float) -> float:
            return frame_instr / rate if rate > 0 else float("inf")

        triple = (
            seconds_per_frame(wait_rate),
            seconds_per_frame(nvp_rate),
            seconds_per_frame(inc_rate),
        )
        data[name] = triple
        rows.append((name, *[round(t, 2) for t in triple]))
    return ExperimentResult(
        experiment_id="sec7",
        description="seconds per 256x256 frame: wait-compute / NVP / incidental",
        headers=("kernel", "wait_s", "nvp_s", "incidental_s"),
        rows=rows,
        data={"rates": data},
    )


# -- Ablations: isolating the design choices DESIGN.md calls out ---------------


def _ablation_executive(
    profile_id: int,
    duration_s: float,
    frame_size: int = 16,
    **executive_kwargs,
):
    """Cached ablation run (``(task, fresh result)``, median/linear)."""
    kwargs = dict(
        frame_period_ticks=2_500,
        retention_time_scale=RETENTION_TIME_SCALE,
        seed=0,
    )
    kwargs.update(executive_kwargs)
    task = engine.ExecutiveTask(
        kernel="median",
        policy="linear",
        profile_id=profile_id,
        minbits=2,
        duration_s=duration_s,
        frame_size=frame_size,
        n_frames=12,
        **kwargs,
    )
    return task, engine.cached_executive_run(task)


def ablation_mechanisms(
    profile_id: int = 1, duration_s: float = 10.0
) -> ExperimentResult:
    """Ablation: which incidental mechanism buys how much FP gain.

    Compares the full incidental NVP against versions with SIMD lanes
    disabled, roll-forward disabled, and precise (unshaped) backups,
    all normalised to the precise 8-bit NVP baseline.
    """
    base = _fixed_run(profile_id, duration_s, 8, "precise", "median")
    variants = [
        ("full incidental", {}),
        ("no SIMD lanes", {"enable_simd": False}),
        ("no roll-forward", {"enable_rollforward": False}),
        ("precise backups", {"precise_backup": True}),
        ("no SIMD + precise backups", {"enable_simd": False, "precise_backup": True}),
    ]
    rows = []
    gains = {}
    for name, kwargs in variants:
        _, result = _ablation_executive(profile_id, duration_s, **kwargs)
        gain = result.useful_progress / max(1, base.forward_progress)
        gains[name] = gain
        rows.append(
            (
                name,
                round(gain, 2),
                result.sim.backup_count,
                round(result.sim.backup_energy_share, 3),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-mechanisms",
        description=f"incidental mechanism ablation (median, profile {profile_id})",
        headers=("variant", "FP_gain", "backups", "backup_share"),
        rows=rows,
        data={"gains": gains},
    )


def ablation_buffer_capacity(
    profile_id: int = 1,
    duration_s: float = 10.0,
    capacities: Sequence[int] = (1, 2, 3, 4),
) -> ExperimentResult:
    """Ablation: resume-buffer depth vs incidental progress.

    The paper fixed the nonvolatile PC buffer at four entries; this
    sweep shows how much of the SIMD benefit each entry buys (lane
    width is bounded by pending suspended computations).
    """
    base = _fixed_run(profile_id, duration_s, 8, "precise", "median")
    rows = []
    gains = {}
    for capacity in capacities:
        _, result = _ablation_executive(
            profile_id, duration_s, resume_buffer_capacity=capacity
        )
        gain = result.useful_progress / max(1, base.forward_progress)
        gains[capacity] = gain
        mean_lanes = float(
            np.mean(result.sim.lane_schedule[result.sim.lane_schedule > 0])
        )
        rows.append((capacity, round(gain, 2), round(mean_lanes, 2)))
    return ExperimentResult(
        experiment_id="ablation-buffer",
        description="resume-buffer capacity vs incidental FP gain",
        headers=("capacity", "FP_gain", "mean_lanes"),
        rows=rows,
        data={"gains": gains},
    )


def ablation_retention_scale(
    profile_id: int = 1,
    duration_s: float = 10.0,
    scales: Sequence[float] = (1.0, 4.0, 8.0, 16.0),
) -> ExperimentResult:
    """Ablation: retention-curve stretch vs quality and backup cost.

    The cadence-matching choice of DESIGN.md §5.2: a short (unscaled)
    curve is cheap to write but decays across our long outages; longer
    scales protect quality at growing backup energy.
    """
    rows = []
    data = {}
    for scale in scales:
        task, result = _ablation_executive(
            profile_id,
            duration_s,
            frame_size=12,
            frame_period_ticks=15_000,
            retention_time_scale=scale,
        )
        scores = engine.executive_frame_quality(task, result, min_coverage=0.999)
        mean_psnr = (
            float(np.mean([s.psnr_db for s in scores])) if scores else float("nan")
        )
        backup_uj = result.sim.backup_energy_uj / max(1, result.sim.backup_count)
        data[scale] = (mean_psnr, backup_uj)
        rows.append(
            (scale, len(scores), round(mean_psnr, 1), round(backup_uj, 4))
        )
    return ExperimentResult(
        experiment_id="ablation-retention-scale",
        description="retention time_scale vs frame quality and backup cost",
        headers=("time_scale", "frames", "mean_PSNR_dB", "uJ_per_backup"),
        rows=rows,
        data={"by_scale": data},
    )


# -- Table 2's JPEG frame-rate metric: fraction of frames meeting QoS ----------


def jpeg_frame_qos(
    profile_ids: Sequence[int] = (1, 2, 3),
    duration_s: float = 10.0,
    n_frames: int = 40,
    seed: int = 13,
) -> ExperimentResult:
    """Table 2's JPEG accounting: % of encoded frames within 150% size.

    The paper streams 25 000 frames and reports 97% meeting the size
    target at minbits 3 under dynamic bitwidth; we stream ``n_frames``
    consecutive frame pairs per profile with the schedule windows the
    profile actually produced.
    """
    policy = TABLE2_POLICIES["jpeg_encode"]
    kernel: JPEGEncodeKernel = create_kernel("jpeg_encode")
    frames = frame_sequence(n_frames + 1, 32, seed=7, step=2)
    rows = []
    fractions = {}
    for pid in profile_ids:
        trace = _trace(pid, duration_s)
        schedule = schedule_from_trace(trace, policy.minbits, 8)
        met = 0
        worst = 1.0
        offset = 0
        for index in range(n_frames):
            prev_frame, frame = frames[index], frames[index + 1]
            n = frame.size
            window = np.take(schedule, np.arange(offset, offset + n), mode="wrap")
            offset += n
            baseline = kernel.encode(frame, prev_frame)
            approx = kernel.encode(
                frame, prev_frame, ApproxContext(alu_bits=window, seed=seed + index)
            )
            ratio = approx.size_ratio(baseline.size_bits)
            worst = max(worst, ratio)
            if policy.target.met_by_size_ratio(ratio):
                met += 1
        fraction = met / n_frames
        fractions[pid] = fraction
        rows.append((pid, n_frames, round(100 * fraction, 1), round(worst, 2)))
    return ExperimentResult(
        experiment_id="table2-jpeg-frames",
        description="JPEG frames meeting the 150% size QoS (minbits 3, dynamic)",
        headers=("profile", "frames", "met_%", "worst_ratio"),
        rows=rows,
        data={"fractions": fractions},
    )


# -- Extension: incidental gains across ambient energy sources -----------------


def ablation_harvester_sources(
    duration_s: float = 10.0,
    seed: int = 99,
) -> ExperimentResult:
    """Extension: does incidental computing help beyond the wristwatch?

    The paper's platform is a rotational harvester, but its Figure 1
    front end lists solar, RF and thermal sources too (and Section 6
    discusses how recover-point placement should follow the source's
    interrupt rate). This sweep runs the incidental executive on a
    synthetic trace from each source model.
    """
    from ..energy.harvester import (
        RFHarvester,
        SolarHarvester,
        ThermalHarvester,
        WristwatchRingHarvester,
    )
    from ..energy.traces import PowerTrace

    sources = [
        ("wristwatch", WristwatchRingHarvester()),
        ("solar", SolarHarvester()),
        ("rf", RFHarvester()),
        ("thermal", ThermalHarvester()),
    ]
    n_samples = int(duration_s / TICK_S)
    task = engine.ExecutiveTraceTask(
        kernel="median",
        policy="linear",
        minbits=2,
        n_frames=12,
        frame_size=16,
        frame_period_ticks=2_500,
        retention_time_scale=RETENTION_TIME_SCALE,
    )
    rows = []
    gains = {}
    for name, model in sources:
        rng = np.random.default_rng(seed)
        trace = PowerTrace(model.generate(n_samples, rng), name=name)
        (result,) = engine.run_executive_on_trace(trace, [task])
        baseline = simulate_fixed_bits(trace, 8, mix=kernel_mix("median"))
        gain = result.useful_progress / max(1, baseline.forward_progress)
        gains[name] = gain
        rows.append(
            (
                name,
                round(trace.mean_power_uw, 1),
                baseline.forward_progress,
                result.sim.total_progress,
                round(gain, 2),
            )
        )
    return ExperimentResult(
        experiment_id="ablation-sources",
        description="incidental FP gain per ambient energy source (median)",
        headers=("source", "mean_uW", "precise_FP", "incidental_FP", "gain"),
        rows=rows,
        data={"gains": gains},
    )


def ablation_recover_placement(
    duration_s: float = 10.0,
    seed: int = 77,
) -> ExperimentResult:
    """Section 6: where to put ``incidental_recover_from``.

    Compares inner-loop vs per-frame recover points on a slow-interrupt
    source (solar) and a fast-interrupt one (RF). The paper's guidance:
    inner-loop placement only pays off when power interrupts are much
    shorter than a frame (WiFi-class sources); per-frame placement is
    recommended for solar/thermal.
    """
    from ..energy.harvester import RFHarvester, SolarHarvester
    from ..energy.traces import PowerTrace

    n_samples = int(duration_s / TICK_S)
    placement_tasks = [
        engine.ExecutiveTraceTask(
            kernel="median",
            policy="linear",
            minbits=2,
            n_frames=12,
            frame_size=8,
            frame_period_ticks=10_000,
            retention_time_scale=RETENTION_TIME_SCALE,
            recover_placement=placement,
        )
        for placement in ("frame", "inner")
    ]
    sources = [
        # A steady indoor-light source with long on-stretches: power
        # interrupts are rare relative to a frame's processing time.
        ("solar", SolarHarvester(mean_burst_ticks=900.0, mean_quiet_ticks=100.0,
                                 dead_probability=0.004, burst_median_uw=220.0)),
        # WiFi-class RF: interrupts far shorter than a frame.
        ("rf", RFHarvester()),
    ]
    rows = []
    data = {}
    for source_name, model in sources:
        rng = np.random.default_rng(seed)
        trace = PowerTrace(model.generate(n_samples, rng), name=source_name)
        results = engine.run_executive_on_trace(trace, placement_tasks)
        for task, result in zip(placement_tasks, results):
            placement = task.recover_placement
            data[(source_name, placement)] = (
                result.frames_completed,
                result.sim.total_progress,
            )
            rows.append(
                (
                    source_name,
                    placement,
                    result.frames_completed,
                    result.frames_abandoned,
                    result.sim.total_progress,
                )
            )
    return ExperimentResult(
        experiment_id="ablation-recover-placement",
        description="recover_from placement (Section 6): frame vs inner loop",
        headers=("source", "placement", "completed", "abandoned", "FP_total"),
        rows=rows,
        data={"outcomes": data},
    )


@_artifact("fig28-seeds")
def fig28_seed_robustness(
    n_seeds: int = 5,
    duration_s: float = 10.0,
    kernel: str = "median",
) -> ExperimentResult:
    """Statistical robustness of the headline gain.

    The paper reports Figure 28 on five fixed traces; this extension
    re-rolls the wristwatch harvester with fresh seeds and reports the
    spread of the incidental FP gain, so the headline number carries a
    confidence band instead of a point estimate.
    """
    tasks = [
        engine.ExecutiveTask(
            kernel=kernel,
            policy="linear",
            profile_id=0,
            minbits=2,
            duration_s=duration_s,
            frame_size=16,
            frame_period_ticks=2_500,
            n_frames=12,
            retention_time_scale=RETENTION_TIME_SCALE,
            trace_seed=31_000 + seed,
        )
        for seed in range(n_seeds)
    ]
    grid = engine.run_executive_grid(tasks)
    gains = []
    rows = []
    for seed, (task, result) in enumerate(grid):
        trace = task.build_trace()
        baseline = simulate_fixed_bits(trace, 8, mix=kernel_mix(kernel))
        gain = result.useful_progress / max(1, baseline.forward_progress)
        gains.append(gain)
        rows.append((seed, round(trace.mean_power_uw, 1), round(gain, 2)))
    mean = float(np.mean(gains))
    std = float(np.std(gains))
    rows.append(("mean±std", "", f"{mean:.2f}±{std:.2f}"))
    return ExperimentResult(
        experiment_id="fig28-robustness",
        description=f"incidental FP gain across re-rolled traces ({kernel})",
        headers=("seed", "mean_uW", "gain"),
        rows=rows,
        data={"gains": gains, "mean": mean, "std": std},
    )


@_artifact("resilience")
def resilience_campaign(
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    policies: Sequence[str] = ("linear", "log"),
    kernel: str = "median",
    duration_s: float = 3.0,
) -> ExperimentResult:
    """Quality and availability vs device fault rate.

    An extension beyond the paper: the device fault model of
    :mod:`repro.resilience` (torn backups, STT-RAM SEU flips, brownout
    tails) is swept against the hardened restore path, and each
    ``(kernel, policy, rate)`` point reports the availability (fraction
    of arrived frames completed), the surviving PSNR, and the fallback
    counters of the CRC-guarded restore chain. ``rate=0`` is the
    bit-identical anchor against the fault-free executive.
    """
    from .resilience import ResilienceCampaign

    campaign = ResilienceCampaign(
        kernels=(kernel,),
        policies=tuple(policies),
        rates=tuple(float(r) for r in rates),
        duration_s=duration_s,
    )
    result = campaign.run()
    rows = [
        (
            point.policy,
            f"{point.rate:.3f}",
            f"{point.availability:.3f}",
            "-" if point.mean_psnr_db is None else f"{point.mean_psnr_db:.2f}",
            point.detected_failures,
            point.fallback_previous,
            point.rollforwards,
            point.silent_corruptions,
            point.brownouts,
            point.lost_progress,
        )
        for point in result.points
    ]
    curves = {
        policy: {
            "availability": result.availability_curve(kernel, policy),
            "quality": result.quality_curve(kernel, policy),
        }
        for policy in campaign.policies
    }
    return ExperimentResult(
        experiment_id="resilience",
        description=f"graceful degradation vs device fault rate ({kernel})",
        headers=(
            "policy",
            "rate",
            "avail",
            "psnr_db",
            "detected",
            "fb_prev",
            "rollfwd",
            "silent",
            "brownouts",
            "lost",
        ),
        rows=rows,
        data={
            "points": [point.to_dict() for point in result.points],
            "curves": curves,
        },
    )


@_artifact("fleet")
def fleet_campaign(
    n_devices: int = 200,
    seed: int = 0,
    duration_s: float = 1.0,
) -> ExperimentResult:
    """Fleet-scale availability and forward-progress distributions.

    An extension beyond the paper: :mod:`repro.fleet` expands a
    weighted archetype mixture (solar sensors, RF scavengers, thermal
    wearables with manufacturing spread) into ``n_devices`` seeded
    device tasks and runs them through the chunk-sharded batch tier.
    Rows summarise each archetype plus the fleet-wide percentile
    spread; ``data`` carries the full distributions for the test suite
    and the report.
    """
    from ..fleet import FleetSpec, run_fleet

    result = run_fleet(
        FleetSpec(n_devices=n_devices, seed=seed, duration_s=duration_s)
    )
    rows: List[Tuple] = [
        (
            name,
            int(summary["devices"]),
            f"{summary['median_progress_per_s']:.0f}",
            f"{summary['mean_availability']:.3f}",
            f"{summary['stalled_fraction']:.3f}",
        )
        for name, summary in sorted(result.per_archetype.items())
    ]
    for level in ("p5", "p50", "p95"):
        rows.append(
            (
                f"fleet {level}",
                n_devices,
                f"{result.progress_rate_percentiles[level]:.0f}",
                f"{result.availability_percentiles[level]:.3f}",
                "-",
            )
        )
    return ExperimentResult(
        experiment_id="fleet",
        description=(
            f"fleet of {n_devices} heterogeneous harvesters ({duration_s:g}s)"
        ),
        headers=("archetype", "devices", "fp_per_s", "avail", "stalled"),
        rows=rows,
        data={
            "progress_percentiles": result.progress_percentiles,
            "progress_rate_percentiles": result.progress_rate_percentiles,
            "availability_percentiles": result.availability_percentiles,
            "availability_cdf": result.availability_cdf,
            "energy_per_progress_percentiles": (
                result.energy_per_progress_percentiles
            ),
            "per_archetype": result.per_archetype,
            "metrics": result.metrics,
        },
    )


@_artifact("runtable")
def runtable_stats(
    n_reps: int = 8,
    base_seed: int = 0,
    duration_s: float = 2.0,
) -> ExperimentResult:
    """Repetition statistics over the canonical run table.

    A small seeded sweep — precise vs linear retention at 4 and 8 bits
    on profile 1, ``n_reps`` harvester re-rolls each — flattened by
    :mod:`repro.analysis.runtable` and compared with the
    :mod:`repro.analysis.stats` pass: bootstrap CI per slice plus
    Mann-Whitney U and Cliff's delta for precise vs linear total
    progress. Fully deterministic for a given ``base_seed`` (trace
    seeds and bootstrap streams both derive from it), so the artifact
    regenerates identically anywhere.
    """
    from .engine import FixedBitTask
    from .runtable import SCHEMA_VERSION
    from .stats import compare_slices, repetition_sweep

    tasks = [
        FixedBitTask(
            profile_id=1,
            bits=bits,
            duration_s=duration_s,
            policy=policy,
        )
        for policy in ("precise", "linear")
        for bits in (4, 8)
    ]
    table = repetition_sweep(
        "fixed", tasks, n_reps=n_reps, base_seed=base_seed
    )
    comparison = compare_slices(
        table.rows,
        "total_progress",
        {"policy": "precise"},
        {"policy": "linear"},
        seed=base_seed,
    )
    rows: List[Tuple] = []
    for label, side in (("precise", comparison["a"]),
                        ("linear", comparison["b"])):
        rows.append(
            (
                label,
                side["n"],
                f"{side['mean']:.0f}",
                f"{side['ci_lo']:.0f}",
                f"{side['ci_hi']:.0f}",
            )
        )
    mw = comparison["mann_whitney"]
    delta = comparison["cliffs_delta"]
    rows.append(
        (
            "precise vs linear",
            len(table),
            f"p={mw['p_value']:.4f}",
            f"d={delta['delta']:+.3f}",
            delta["magnitude"],
        )
    )
    return ExperimentResult(
        experiment_id="runtable",
        description=(
            f"run-table repetition statistics ({n_reps} trace re-rolls "
            f"per config, schema v{SCHEMA_VERSION})"
        ),
        headers=("slice", "n", "mean_fp", "ci_lo", "ci_hi"),
        rows=rows,
        data={
            "n_rows": len(table),
            "comparison": comparison,
        },
    )
