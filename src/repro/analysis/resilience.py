"""Resilience campaigns: quality/availability vs device fault rate.

A :class:`ResilienceTask` wraps an :class:`ExecutiveTask` with a
device-fault scenario (:class:`repro.resilience.ResilienceConfig`) and
reduces the run to a :class:`ResiliencePoint` — availability, quality
and every detection/fallback counter of the hardened restore path.
Points are small JSON summaries, cached content-addressed next to the
fixed/executive entries (``res-`` filename prefix) and executed through
the same robust grid core (retries, timeouts, pool degradation,
telemetry), so a cached campaign replays the same fallback counts and
quality scores bit-for-bit.

:class:`ResilienceCampaign` sweeps fault rates x retention policies x
kernels and emits quality-vs-fault-rate and availability curves — the
CLI exposes it as ``repro-experiments resilience``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range, check_non_negative, check_probability
from ..core.executive import ExecutiveResult
from ..errors import ConfigurationError
from ..resilience import ResilienceConfig
from . import faults, telemetry
from ..obs import capture as obs_capture
from .engine import (
    ENGINE_CACHE_VERSION,
    ExecutiveTask,
    ResultCache,
    _CONFIG,
    _resolve_robustness,
    _run_robust,
    _tracer_payload,
    _worker_tracer,
    default_cache,
    derive_task_seed,
)
from .reporting import format_table

__all__ = [
    "ResilienceTask",
    "ResiliencePoint",
    "ResilienceCampaign",
    "CampaignResult",
    "run_resilience_grid",
    "resilience_payload_error",
    "corrupt_resilience_point",
]

#: In-process memo of computed points (cleared by ``engine.reset()``).
_POINT_MEMO: Dict[str, "ResiliencePoint"] = {}


@dataclass(frozen=True)
class ResilienceTask:
    """One executive run under a device-fault scenario.

    ``rate`` is the campaign's fault-scale knob: the torn-backup and
    brownout probabilities are ``rate`` times their scale factors
    (clipped to 1), and the SEU rate is ``rate * seu_scale`` per bit
    per tick. ``rate=0`` disables every mechanism — the differential
    anchor point of every curve.
    """

    base: ExecutiveTask
    rate: float = 0.0
    torn_scale: float = 1.0
    brownout_scale: float = 0.5
    seu_scale: float = 2e-5
    brownout_ticks: int = 400
    validate_restores: bool = True
    price_guard_words: bool = True
    device_seed: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.rate, "rate")
        check_non_negative(self.torn_scale, "torn_scale")
        check_non_negative(self.brownout_scale, "brownout_scale")
        check_non_negative(self.seu_scale, "seu_scale")
        check_int_in_range(self.brownout_ticks, "brownout_ticks", 1)
        check_int_in_range(self.device_seed, "device_seed", 0)
        check_probability(self.rate * self.torn_scale, "rate * torn_scale")
        check_probability(self.rate * self.brownout_scale, "rate * brownout_scale")

    def cache_key(self) -> str:
        """Content hash: full base config + fault scenario + version."""
        payload = dataclasses.asdict(self)
        payload["__engine__"] = ENGINE_CACHE_VERSION
        payload["__task__"] = "resilience"
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    def resilience_config(self) -> ResilienceConfig:
        """The device-resilience scenario this task attaches."""
        return ResilienceConfig(
            torn_backup_rate=self.rate * self.torn_scale,
            seu_rate=self.rate * self.seu_scale,
            brownout_rate=self.rate * self.brownout_scale,
            brownout_ticks=self.brownout_ticks,
            validate_restores=self.validate_restores,
            price_guard_words=self.price_guard_words,
            seed=self.device_seed,
        )

    def run(self, engine: str = "reference", tracer=None) -> "ResiliencePoint":
        """Simulate and reduce to a :class:`ResiliencePoint`.

        Resilience runs always execute the reference loop (the fast
        paths do not model fault semantics); ``engine`` is accepted for
        grid-runner symmetry and routes through
        :meth:`IncidentalExecutive.run`'s resilience fallback.
        """
        executive = self.base.build_executive(
            resilience=self.resilience_config(), tracer=tracer
        )
        result = executive.run(engine=engine)
        resilience = executive.processor.resilience
        assert resilience is not None  # attached two lines up
        scores = executive.frame_quality(result)
        return ResiliencePoint.reduce(
            self, result, scores, resilience.telemetry.to_dict(),
            aborted_backups=executive.processor.aborted_backup_count,
        )


@dataclass(frozen=True)
class ResiliencePoint:
    """One campaign grid point: availability, quality, fault counters."""

    kernel: str
    policy: str
    rate: float
    frames_total: int
    frames_completed: int
    frames_abandoned: int
    scored_frames: int
    mean_psnr_db: Optional[float]
    min_psnr_db: Optional[float]
    on_fraction: float
    total_progress: int
    backups: int
    aborted_backups: int
    restores: int
    detected_failures: int
    fallback_previous: int
    rollforwards: int
    silent_corruptions: int
    undetected_corruptions: int
    brownouts: int
    blocked_restores: int
    seu_flips: int
    lost_progress: int
    guard_energy_uj: float
    wasted_restore_energy_uj: float

    @property
    def availability(self) -> float:
        """Fraction of arrived frames the system eventually completed."""
        if self.frames_total <= 0:
            return 0.0
        return self.frames_completed / self.frames_total

    @classmethod
    def reduce(
        cls,
        task: ResilienceTask,
        result: ExecutiveResult,
        scores: Sequence,
        telemetry_dict: Dict[str, float],
        aborted_backups: int,
    ) -> "ResiliencePoint":
        """Collapse one executive run + telemetry into a point."""
        psnrs = [float(s.psnr_db) for s in scores]
        sim = result.sim
        return cls(
            kernel=task.base.kernel,
            policy=task.base.policy,
            rate=float(task.rate),
            frames_total=len(result.frames),
            frames_completed=result.frames_completed,
            frames_abandoned=result.frames_abandoned,
            scored_frames=len(psnrs),
            mean_psnr_db=float(np.mean(psnrs)) if psnrs else None,
            min_psnr_db=float(np.min(psnrs)) if psnrs else None,
            on_fraction=sim.on_ticks / sim.total_ticks if sim.total_ticks else 0.0,
            total_progress=sim.total_progress,
            backups=int(telemetry_dict["backups"]),
            aborted_backups=int(aborted_backups),
            restores=int(telemetry_dict["restores"]),
            detected_failures=int(telemetry_dict["detected_failures"]),
            fallback_previous=int(telemetry_dict["fallback_previous"]),
            rollforwards=int(telemetry_dict["rollforwards"]),
            silent_corruptions=int(telemetry_dict["silent_corruptions"]),
            undetected_corruptions=int(telemetry_dict["undetected_corruptions"]),
            brownouts=int(telemetry_dict["brownouts"]),
            blocked_restores=int(telemetry_dict["blocked_restores"]),
            seu_flips=int(telemetry_dict["seu_flips"]),
            lost_progress=int(telemetry_dict["lost_progress"]),
            guard_energy_uj=float(telemetry_dict["guard_energy_uj"]),
            wasted_restore_energy_uj=float(
                telemetry_dict["wasted_restore_energy_uj"]
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResiliencePoint":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(
                f"unknown resilience point fields: {sorted(unknown)}"
            )
        missing = names - set(payload)
        if missing:
            raise ValueError(
                f"missing resilience point fields: {sorted(missing)}"
            )
        return cls(**payload)  # type: ignore[arg-type]


def resilience_payload_error(point: object) -> Optional[str]:
    """Why ``point`` is not a trustworthy :class:`ResiliencePoint`.

    The resilience twin of ``simulation_payload_error``: conservative
    structural/value-range invariants every honest point satisfies, so
    a worker (or injected fault) returning garbage is retried rather
    than trusted.
    """
    if not isinstance(point, ResiliencePoint):
        return f"payload is {type(point).__name__}, not ResiliencePoint"
    for name in (
        "frames_total",
        "frames_completed",
        "frames_abandoned",
        "scored_frames",
        "total_progress",
        "backups",
        "aborted_backups",
        "restores",
        "detected_failures",
        "fallback_previous",
        "rollforwards",
        "silent_corruptions",
        "undetected_corruptions",
        "brownouts",
        "blocked_restores",
        "seu_flips",
        "lost_progress",
    ):
        if getattr(point, name) < 0:
            return f"{name} is negative"
    if point.frames_completed > point.frames_total:
        return "frames_completed exceeds frames_total"
    if point.aborted_backups > point.backups:
        return "aborted_backups exceeds backups"
    if not 0.0 <= point.on_fraction <= 1.0:
        return "on_fraction outside [0, 1]"
    for name in ("rate", "guard_energy_uj", "wasted_restore_energy_uj"):
        value = getattr(point, name)
        if math.isnan(value) or value < 0:
            return f"{name} is negative or NaN"
    for name in ("mean_psnr_db", "min_psnr_db"):
        value = getattr(point, name)
        if value is not None and math.isnan(value):
            return f"{name} is NaN"
    return None


def corrupt_resilience_point(point: ResiliencePoint) -> ResiliencePoint:
    """Deliberately break a point so validation must catch it
    (fault-injection harness; mirrors ``corrupt_simulation_result``)."""
    return dataclasses.replace(
        point, frames_completed=point.frames_total + 7, backups=-1
    )


def _timed_run_resilience(
    task: ResilienceTask,
    engine: str,
    spec: Optional[faults.FaultSpec],
    obs_level: Optional[str] = None,
) -> Tuple[ResiliencePoint, float, Optional[Dict[str, object]]]:
    """Pool entry: fault application + worker-measured wall time."""
    start = time.perf_counter()
    faults.apply_pre_fault(spec)
    tracer = _worker_tracer(obs_level)
    point = task.run(engine=engine, tracer=tracer)
    if spec is not None and spec.kind == "corrupt":
        point = corrupt_resilience_point(point)
    return point, time.perf_counter() - start, _tracer_payload(tracer)


def run_resilience_grid(
    tasks: Sequence[ResilienceTask],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
    task_timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    retry_backoff_s: Optional[float] = None,
) -> Tuple[ResiliencePoint, ...]:
    """Run every :class:`ResilienceTask`; points return in task order.

    The resilience twin of ``run_executive_grid``: same robust core
    (retries, timeouts, pool degradation, per-run telemetry with
    ``kind="resilience"``), same in-process memo discipline, and the
    same content-addressed on-disk cache — points are stored as small
    ``res-`` prefixed JSON entries, so a warm campaign replays its
    fallback counts and quality scores without simulating.
    """
    tasks = tuple(tasks)
    settings = _resolve_robustness(
        workers, task_timeout_s, retries, retry_backoff_s
    )
    use_cache = bool(_CONFIG["use_cache"])
    use_memo = use_cache and bool(_CONFIG["use_memo"])
    if cache is None and use_cache:
        cache = default_cache()
    elif not use_cache:
        cache = None

    # Resilience grids always carry a context label: runners inside a
    # ``telemetry.context(...)`` block keep their artifact label (as the
    # 21 experiment runners do), while direct CLI invocations fall back
    # to "resilience" instead of an anonymous empty string.
    report = telemetry.RunReport(
        kind="resilience",
        context=telemetry.current_context() or "resilience",
        engine=engine,
        workers=settings.workers,
        n_tasks=len(tasks),
        started_at=telemetry.now(),
    )
    start = time.perf_counter()
    misses_before = cache.misses if cache is not None else 0
    quarantines_before = cache.quarantines if cache is not None else 0

    keys = [task.cache_key() for task in tasks]
    results: Dict[int, ResiliencePoint] = {}
    pending: List[int] = []
    for index, key in enumerate(keys):
        hit = _POINT_MEMO.get(key) if use_memo else None
        status = "memo-hit"
        if hit is None and cache is not None:
            payload = cache.get_point(key)
            if payload is not None:
                try:
                    hit = ResiliencePoint.from_dict(payload)
                except (TypeError, ValueError):
                    # Readable JSON with a stale/foreign schema: treat
                    # as a miss and overwrite with a fresh point.
                    hit = None
            status = "cache-hit"
        if hit is not None:
            results[index] = hit
            report.merge_task(
                telemetry.TaskTelemetry(
                    index=index, label=key[:12], status=status, engine=engine
                )
            )
        else:
            pending.append(index)
    if cache is not None:
        report.cache_misses = cache.misses - misses_before
        report.quarantines = cache.quarantines - quarantines_before

    try:
        if pending:
            obs_level = obs_capture.capture_level()
            computed = _run_robust(
                pending,
                worker_fn=_timed_run_resilience,
                args_for=lambda index, spec: (
                    tasks[index], engine, spec, obs_level
                ),
                label_for=lambda index: keys[index][:12],
                validate=resilience_payload_error,
                scope="resilience",
                settings=settings,
                engine=engine,
                report=report,
            )
            results.update(computed)  # type: ignore[arg-type]
            if cache is not None:
                for index in pending:
                    cache.put_point(keys[index], results[index].to_dict())
    finally:
        report.wall_s = time.perf_counter() - start
        telemetry.record(report)

    if use_memo:
        # Points are frozen value objects: safe to share, no defensive
        # copies needed (unlike the array-carrying result kinds).
        for index in range(len(tasks)):
            _POINT_MEMO.setdefault(keys[index], results[index])
    return tuple(results[index] for index in range(len(tasks)))


@dataclass(frozen=True)
class ResilienceCampaign:
    """A fault-rate x retention-policy x kernel sweep.

    Enumeration order is the deterministic product order
    ``kernel x policy x rate``. Each task derives an independent device
    seed from its coordinates, so neighbouring points see uncorrelated
    fault streams while the whole campaign stays reproducible from
    ``device_seed``.
    """

    kernels: Tuple[str, ...] = ("median",)
    policies: Tuple[str, ...] = ("linear", "log")
    rates: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)
    profile_id: int = 1
    duration_s: float = 4.0
    minbits: int = 2
    maxbits: int = 8
    frame_size: int = 12
    frame_period_ticks: int = 15_000
    recover_placement: str = "inner"
    validate_restores: bool = True
    price_guard_words: bool = True
    brownout_ticks: int = 400
    seed: int = 0
    device_seed: int = 0

    def __post_init__(self) -> None:
        if not self.kernels or not self.policies or not self.rates:
            raise ConfigurationError(
                "campaign needs at least one kernel, policy and rate"
            )

    def tasks(self) -> Tuple[ResilienceTask, ...]:
        """Enumerate the campaign in deterministic product order."""
        out: List[ResilienceTask] = []
        for kernel in self.kernels:
            for policy in self.policies:
                for rate in self.rates:
                    base = ExecutiveTask(
                        kernel=kernel,
                        policy=policy,
                        profile_id=self.profile_id,
                        minbits=self.minbits,
                        maxbits=self.maxbits,
                        duration_s=self.duration_s,
                        frame_size=self.frame_size,
                        frame_period_ticks=self.frame_period_ticks,
                        recover_placement=self.recover_placement,
                        seed=self.seed,
                    )
                    out.append(
                        ResilienceTask(
                            base=base,
                            rate=float(rate),
                            brownout_ticks=self.brownout_ticks,
                            validate_restores=self.validate_restores,
                            price_guard_words=self.price_guard_words,
                            device_seed=derive_task_seed(
                                self.device_seed, kernel, policy, f"{rate:.6g}"
                            ),
                        )
                    )
        return tuple(out)

    def run(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        engine: str = "reference",
        task_timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        retry_backoff_s: Optional[float] = None,
    ) -> "CampaignResult":
        """Execute the whole campaign through the robust grid core."""
        tasks = self.tasks()
        points = run_resilience_grid(
            tasks,
            workers=workers,
            cache=cache,
            engine=engine,
            task_timeout_s=task_timeout_s,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
        )
        return CampaignResult(campaign=self, tasks=tasks, points=points)


@dataclass(frozen=True)
class CampaignResult:
    """A completed campaign: tasks and points in enumeration order."""

    campaign: ResilienceCampaign
    tasks: Tuple[ResilienceTask, ...]
    points: Tuple[ResiliencePoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Tuple[ResilienceTask, ResiliencePoint]]:
        return iter(zip(self.tasks, self.points))

    def _series(self, kernel: str, policy: str) -> List[ResiliencePoint]:
        series = [
            p for p in self.points if p.kernel == kernel and p.policy == policy
        ]
        if not series:
            raise KeyError(f"no points for kernel={kernel!r} policy={policy!r}")
        return sorted(series, key=lambda p: p.rate)

    def availability_curve(
        self, kernel: str, policy: str
    ) -> List[Tuple[float, float]]:
        """``(rate, availability)`` pairs, ascending in rate."""
        return [(p.rate, p.availability) for p in self._series(kernel, policy)]

    def quality_curve(
        self, kernel: str, policy: str
    ) -> List[Tuple[float, Optional[float]]]:
        """``(rate, mean PSNR dB)`` pairs (``None`` = nothing scored)."""
        return [(p.rate, p.mean_psnr_db) for p in self._series(kernel, policy)]

    def as_table(self) -> str:
        """The campaign as an aligned text table."""
        headers = (
            "kernel",
            "policy",
            "rate",
            "avail",
            "psnr_db",
            "torn",
            "detected",
            "fb_prev",
            "rollfwd",
            "silent",
            "brownouts",
            "lost",
        )
        rows = [
            (
                p.kernel,
                p.policy,
                f"{p.rate:.3f}",
                f"{p.availability:.3f}",
                "-" if p.mean_psnr_db is None else f"{p.mean_psnr_db:.2f}",
                p.aborted_backups,
                p.detected_failures,
                p.fallback_previous,
                p.rollforwards,
                p.silent_corruptions,
                p.brownouts,
                p.lost_progress,
            )
            for p in self.points
        ]
        return format_table(headers, rows)

    def equal(self, other: "CampaignResult") -> bool:
        """Exact point-for-point equality (the determinism check)."""
        return self.tasks == other.tasks and self.points == other.points
