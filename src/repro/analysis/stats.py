"""Seeded repetition statistics over the canonical run table.

The paper's claims are distribution claims — forward progress,
availability and quality across configurations and harvester traces —
so single-run point values are not enough. This module provides the
statistics pass on top of :mod:`repro.analysis.runtable`:

* **repetition sweeps** — expand each grid/executive task into ``n``
  seeded re-rolls of its harvester trace (seeds derived with
  :func:`~repro.analysis.engine.derive_task_seed`, so a sweep is fully
  reproducible and cache-friendly) and run them through the existing
  cached engine;
* **bootstrap confidence intervals** for slice means, seeded through
  ``numpy.random.default_rng`` so identical seeds reproduce identical
  intervals bit-for-bit;
* **nonparametric comparisons** between any two config slices:
  Mann–Whitney U with tie-corrected normal approximation (no scipy
  dependency) and Cliff's delta with the conventional magnitude
  labels.

Everything operates on run-table rows (live dicts or rows re-read from
a canonical CSV), so a statistic computed from a service-streamed
table equals one computed from a direct run.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .engine import (
    ExecutiveTask,
    FixedBitTask,
    derive_task_seed,
    run_executive_grid,
    run_grid,
)
from .runtable import RunTable, build_run_table, format_cell

__all__ = [
    "bootstrap_mean_ci",
    "mann_whitney_u",
    "cliffs_delta",
    "slice_rows",
    "metric_values",
    "compare_slices",
    "repetition_tasks",
    "repetition_sweep",
    "parse_slice_spec",
]

#: Conventional |delta| thresholds for Cliff's delta magnitude labels.
_DELTA_THRESHOLDS = ((0.147, "negligible"), (0.33, "small"), (0.474, "medium"))


# -- core statistics -------------------------------------------------------------


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    seed: int = 0,
    n_boot: int = 2000,
    alpha: float = 0.05,
) -> Dict[str, float]:
    """Seeded percentile-bootstrap CI for the mean of ``values``.

    Deterministic for a given ``(values, seed, n_boot, alpha)`` — the
    resample index stream comes from ``np.random.default_rng(seed)``.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("bootstrap_mean_ci needs at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return {"n": 1, "mean": mean, "ci_lo": mean, "ci_hi": mean}
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(int(n_boot), data.size))
    means = data[indices].mean(axis=1)
    lo, hi = np.quantile(means, (alpha / 2.0, 1.0 - alpha / 2.0))
    return {"n": int(data.size), "mean": mean,
            "ci_lo": float(lo), "ci_hi": float(hi)}


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> Dict[str, float]:
    """Two-sided Mann–Whitney U via the tie-corrected normal approximation.

    Returns ``u`` (statistic of sample *a*), ``z`` and ``p_value``.
    Degenerate comparisons (all values tied) report ``p_value = 1``.
    """
    xa = np.asarray(list(a), dtype=np.float64)
    xb = np.asarray(list(b), dtype=np.float64)
    if xa.size == 0 or xb.size == 0:
        raise ConfigurationError("mann_whitney_u needs two non-empty samples")
    n1, n2 = int(xa.size), int(xb.size)
    combined = np.concatenate([xa, xb])
    ranks = _rankdata(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float((counts.astype(np.float64) ** 3 - counts).sum())
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return {"u": float(u1), "z": 0.0, "p_value": 1.0}
    # Continuity correction toward the mean.
    z = (u1 - mu - 0.5 * math.copysign(1.0, u1 - mu)) / math.sqrt(variance)
    if u1 == mu:
        z = 0.0
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return {"u": float(u1), "z": float(z), "p_value": min(1.0, float(p))}


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> Dict[str, object]:
    """Cliff's delta effect size of *a* over *b*, with magnitude label."""
    xa = np.sort(np.asarray(list(a), dtype=np.float64))
    xb = np.sort(np.asarray(list(b), dtype=np.float64))
    if xa.size == 0 or xb.size == 0:
        raise ConfigurationError("cliffs_delta needs two non-empty samples")
    # #(a > b) - #(a < b) over all pairs, via sorted-array searches.
    greater = np.searchsorted(xb, xa, side="left").sum()
    less = (xb.size - np.searchsorted(xb, xa, side="right")).sum()
    delta = float(greater - less) / float(xa.size * xb.size)
    magnitude = "large"
    for threshold, label in _DELTA_THRESHOLDS:
        if abs(delta) < threshold:
            magnitude = label
            break
    return {"delta": delta, "magnitude": magnitude}


# -- run-table slicing -----------------------------------------------------------


def parse_slice_spec(spec: str) -> Dict[str, str]:
    """Parse ``"policy=precise,bits=8"`` into a filter mapping."""
    filters: Dict[str, str] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        column, sep, value = clause.partition("=")
        if not sep:
            raise ConfigurationError(
                f"slice clause {clause!r} is not column=value"
            )
        filters[column.strip()] = value.strip()
    if not filters:
        raise ConfigurationError(f"slice spec {spec!r} selects nothing")
    return filters


def slice_rows(
    rows: Iterable[Mapping[str, object]], filters: Mapping[str, str]
) -> List[Mapping[str, object]]:
    """Rows whose canonical cell text matches every filter value."""
    out = []
    for row in rows:
        if all(
            format_cell(row.get(column)) == value
            for column, value in filters.items()
        ):
            out.append(row)
    return out


def metric_values(
    rows: Iterable[Mapping[str, object]], metric: str
) -> np.ndarray:
    """Float values of ``metric`` across rows, skipping empty cells."""
    values = []
    for row in rows:
        cell = format_cell(row.get(metric))
        if cell != "":
            values.append(float(cell))
    return np.asarray(values, dtype=np.float64)


def compare_slices(
    rows: Sequence[Mapping[str, object]],
    metric: str,
    filters_a: Mapping[str, str],
    filters_b: Mapping[str, str],
    *,
    seed: int = 0,
    n_boot: int = 2000,
    alpha: float = 0.05,
) -> Dict[str, object]:
    """Full statistical comparison of ``metric`` between two slices.

    Bootstrap seeds for the two slices derive from ``seed`` via
    :func:`~repro.analysis.engine.derive_task_seed`, so repeated calls
    with identical inputs reproduce identical CIs and effect sizes.
    """
    values_a = metric_values(slice_rows(rows, filters_a), metric)
    values_b = metric_values(slice_rows(rows, filters_b), metric)
    if values_a.size == 0 or values_b.size == 0:
        raise ConfigurationError(
            f"slice comparison on {metric!r} found "
            f"{values_a.size} vs {values_b.size} values — check filters"
        )
    return {
        "metric": metric,
        "a": {
            "filters": dict(filters_a),
            **bootstrap_mean_ci(
                values_a,
                seed=derive_task_seed(seed, "bootstrap", "a", metric),
                n_boot=n_boot,
                alpha=alpha,
            ),
        },
        "b": {
            "filters": dict(filters_b),
            **bootstrap_mean_ci(
                values_b,
                seed=derive_task_seed(seed, "bootstrap", "b", metric),
                n_boot=n_boot,
                alpha=alpha,
            ),
        },
        "mann_whitney": mann_whitney_u(values_a, values_b),
        "cliffs_delta": cliffs_delta(values_a, values_b),
    }


# -- seeded repetition sweeps ----------------------------------------------------


def repetition_tasks(
    task, n_reps: int, base_seed: int
) -> List:
    """``n_reps`` seeded re-rolls of one task's harvester trace.

    Repetition 0 is the task unchanged; repetitions ``1..n-1`` replace
    its trace seed with ``derive_task_seed(base_seed, "runtable-rep",
    rep, task.cache_key())`` — unique per (task, rep) and independent
    of grid position, so sweeps are stable under reordering.
    """
    if n_reps < 1:
        raise ConfigurationError(f"n_reps must be >= 1, got {n_reps}")
    reps = [task]
    for rep in range(1, n_reps):
        seed = derive_task_seed(base_seed, "runtable-rep", rep, task.cache_key())
        if isinstance(task, FixedBitTask):
            reps.append(dataclasses.replace(task, seed=seed))
        elif isinstance(task, ExecutiveTask):
            reps.append(dataclasses.replace(task, trace_seed=seed))
        else:
            raise ConfigurationError(
                "repetition sweeps support fixed and executive tasks, "
                f"not {type(task).__name__}"
            )
    return reps


def repetition_sweep(
    kind: str,
    tasks: Sequence,
    *,
    n_reps: int,
    base_seed: int = 0,
    engine: str = "auto",
    job: str = "",
) -> RunTable:
    """Run a seeded repetition sweep and return its run table.

    The expanded grid runs through the ordinary cached engine in one
    call (all tiers, cache and telemetry apply), then flattens with
    ``task_index`` = base-task index and ``repetition`` = re-roll
    index, so slices like ``task_index=2`` group one configuration's
    distribution.
    """
    if kind not in ("fixed", "executive"):
        raise ConfigurationError(
            f"repetition sweeps support kinds fixed/executive, got {kind!r}"
        )
    expanded: List = []
    indices: List[int] = []
    repetitions: List[int] = []
    for index, task in enumerate(tasks):
        for rep, rep_task in enumerate(
            repetition_tasks(task, n_reps, base_seed)
        ):
            expanded.append(rep_task)
            indices.append(index)
            repetitions.append(rep)
    if kind == "fixed":
        results = run_grid(expanded, engine=engine).results
    else:
        results = run_executive_grid(expanded, engine=engine).results
    return build_run_table(
        kind,
        expanded,
        results,
        job=job,
        task_indices=indices,
        repetitions=repetitions,
    )
