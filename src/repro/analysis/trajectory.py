"""Perf-trajectory surface over the repo's ``BENCH_*.json`` snapshots.

Each tier's benchmark harness commits a flat JSON snapshot
(``BENCH_engine.json``, ``BENCH_fleet.json``, ...) at the repository
root. This module folds every snapshot into one long-format table —
``(bench, metric, value)`` rows, numeric leaves only, booleans as
1/0 — so perf history is queryable with the same slicing tools as the
run table, and CI can gate on regressions between a baseline checkout
and the current one.

Gating is deliberately selective: ratio-like metrics (speedups,
rows/s, throughputs, hit rates, overhead fractions and the
``bit_exact`` booleans) are machine-comparable, while raw wall-second
timings vary with host load and are left ungated by default —
:func:`metric_direction` returns ``None`` for them and
:func:`check_regressions` skips direction-less metrics.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "BENCH_GLOB_PREFIX",
    "flatten_numeric",
    "load_bench_payloads",
    "bench_rows",
    "history_csv_bytes",
    "metric_direction",
    "Regression",
    "check_regressions",
    "format_regressions",
]

BENCH_GLOB_PREFIX = "BENCH_"

#: Substrings marking a metric as higher-is-better.
_HIGHER_SUBSTRINGS = (
    "speedup", "throughput", "rows_per_s", "rps", "per_s", "hit_rate",
    "bit_exact", "byte_identical",
)
#: Substrings marking a metric as lower-is-better.
_LOWER_SUBSTRINGS = (
    "overhead", "latency", "p95", "p99",
)


def flatten_numeric(
    payload: Mapping[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Flatten nested JSON to dotted-path -> float, numeric leaves only.

    Booleans become 1.0/0.0 (so conformance flags like ``bit_exact``
    are gateable); strings and nulls are dropped; list elements are
    addressed by index.
    """
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_numeric(value, path))
        elif isinstance(value, (list, tuple)):
            for i, element in enumerate(value):
                if isinstance(element, bool):
                    flat[f"{path}.{i}"] = 1.0 if element else 0.0
                elif isinstance(element, (int, float)):
                    flat[f"{path}.{i}"] = float(element)
                elif isinstance(element, Mapping):
                    flat.update(flatten_numeric(element, f"{path}.{i}"))
    return flat


def load_bench_payloads(root: str) -> Dict[str, Mapping[str, object]]:
    """``BENCH_*.json`` files under ``root`` as name -> parsed payload.

    Sorted by file name for deterministic row order; unparseable files
    raise :class:`~repro.errors.ConfigurationError` (a corrupt snapshot
    should fail the gate loudly, not vanish from it).
    """
    payloads: Dict[str, Mapping[str, object]] = {}
    try:
        names = sorted(os.listdir(root))
    except OSError as exc:
        raise ConfigurationError(f"cannot list bench root {root!r}: {exc}")
    for name in names:
        if not (name.startswith(BENCH_GLOB_PREFIX) and name.endswith(".json")):
            continue
        path = os.path.join(root, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"cannot parse {path}: {exc}")
        if isinstance(payload, dict):
            payloads[name[len(BENCH_GLOB_PREFIX):-len(".json")]] = payload
    return payloads


def bench_rows(root: str) -> List[Dict[str, object]]:
    """Long-format trajectory rows ``{bench, metric, value}``."""
    rows: List[Dict[str, object]] = []
    for bench, payload in load_bench_payloads(root).items():
        flat = flatten_numeric(payload)
        for metric in sorted(flat):
            rows.append({"bench": bench, "metric": metric,
                         "value": flat[metric]})
    return rows


def history_csv_bytes(rows: Sequence[Mapping[str, object]]) -> bytes:
    """Deterministic CSV of trajectory rows (same cell formatting as
    the run table, so the two surfaces diff and join cleanly)."""
    from .runtable import format_cell

    lines = ["bench,metric,value,direction"]
    for row in rows:
        metric = str(row["metric"])
        lines.append(
            ",".join(
                (
                    format_cell(row["bench"]),
                    format_cell(metric),
                    format_cell(row["value"]),
                    metric_direction(metric) or "",
                )
            )
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


def metric_direction(metric: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` for gated metrics, ``None`` for
    ungated ones (raw wall-clock timings and counts)."""
    name = metric.lower()
    for token in _LOWER_SUBSTRINGS:
        if token in name:
            return "lower"
    for token in _HIGHER_SUBSTRINGS:
        if token in name:
            return "higher"
    return None


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved the wrong way beyond tolerance."""

    bench: str
    metric: str
    direction: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Signed relative change vs the baseline (0 baseline -> inf)."""
        if self.baseline == 0.0:
            return float("inf") if self.current != 0.0 else 0.0
        return (self.current - self.baseline) / abs(self.baseline)


def check_regressions(
    baseline_rows: Sequence[Mapping[str, object]],
    current_rows: Sequence[Mapping[str, object]],
    *,
    tolerance: float = 0.1,
) -> List[Regression]:
    """Gated metrics that regressed beyond ``tolerance``.

    A higher-is-better metric regresses when ``current <
    baseline * (1 - tolerance)``; lower-is-better when ``current >
    baseline * (1 + tolerance)``. Metrics present on only one side are
    skipped (new benchmarks must not fail the gate retroactively).
    """
    if tolerance < 0.0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    baseline = {
        (str(r["bench"]), str(r["metric"])): float(r["value"])  # type: ignore[arg-type]
        for r in baseline_rows
    }
    regressions: List[Regression] = []
    for row in current_rows:
        key = (str(row["bench"]), str(row["metric"]))
        if key not in baseline:
            continue
        direction = metric_direction(key[1])
        if direction is None:
            continue
        base = baseline[key]
        current = float(row["value"])  # type: ignore[arg-type]
        if direction == "higher":
            bound = base * (1.0 - tolerance) if base >= 0 else base * (1.0 + tolerance)
            failed = current < bound
        else:
            bound = base * (1.0 + tolerance) if base >= 0 else base * (1.0 - tolerance)
            failed = current > bound
        if failed:
            regressions.append(
                Regression(
                    bench=key[0],
                    metric=key[1],
                    direction=direction,
                    baseline=base,
                    current=current,
                )
            )
    return regressions


def format_regressions(regressions: Sequence[Regression]) -> str:
    """Human-readable one-line-per-regression report."""
    if not regressions:
        return "no trajectory regressions"
    lines = [f"{len(regressions)} trajectory regression(s):"]
    for reg in regressions:
        lines.append(
            f"  {reg.bench}:{reg.metric} [{reg.direction}-is-better] "
            f"baseline {reg.baseline:g} -> current {reg.current:g} "
            f"({reg.change:+.1%})"
        )
    return "\n".join(lines)
