"""Plain-text table/series formatting for experiment outputs.

The paper's artifacts are figures; our benchmark harness regenerates
their underlying data series and prints them as aligned text tables so
a terminal diff against EXPERIMENTS.md is enough to audit a run.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series"]

_Cell = Union[str, int, float]


def _render(cell: _Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[_Cell]]) -> str:
    """Render an aligned text table with a header rule."""
    rendered: List[List[str]] = [[_render(h) for h in headers]]
    for row in rows:
        rendered.append([_render(cell) for cell in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(rendered):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(name: str, mapping: Mapping[_Cell, _Cell]) -> str:
    """Render a one-line ``name: k=v k=v ...`` series."""
    parts = " ".join(f"{_render(k)}={_render(v)}" for k, v in mapping.items())
    return f"{name}: {parts}"
