"""Experiment runners and reporting.

One runner per paper artifact (figure or table), each returning a
structured result that the benchmark harness regenerates and
EXPERIMENTS.md records. See DESIGN.md's experiment index for the
mapping.
"""

from . import engine, experiments, faults, telemetry
from .engine import (
    FixedBitTask,
    GridResult,
    GridSpec,
    ResultCache,
    run_grid,
    simulation_results_equal,
)
from .faults import FaultPlan, FaultSpec
from .reporting import format_table, format_series
from .sweeps import QoSFrontier, SweepPoint, qos_frontier
from .telemetry import RunReport

__all__ = [
    "engine",
    "experiments",
    "faults",
    "telemetry",
    "FaultPlan",
    "FaultSpec",
    "RunReport",
    "FixedBitTask",
    "GridSpec",
    "GridResult",
    "ResultCache",
    "run_grid",
    "simulation_results_equal",
    "format_table",
    "format_series",
    "QoSFrontier",
    "SweepPoint",
    "qos_frontier",
]
