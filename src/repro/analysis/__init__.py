"""Experiment runners and reporting.

One runner per paper artifact (figure or table), each returning a
structured result that the benchmark harness regenerates and
EXPERIMENTS.md records. See DESIGN.md's experiment index for the
mapping.
"""

from . import engine, experiments
from .engine import (
    FixedBitTask,
    GridResult,
    GridSpec,
    ResultCache,
    run_grid,
    simulation_results_equal,
)
from .reporting import format_table, format_series
from .sweeps import QoSFrontier, SweepPoint, qos_frontier

__all__ = [
    "engine",
    "experiments",
    "FixedBitTask",
    "GridSpec",
    "GridResult",
    "ResultCache",
    "run_grid",
    "simulation_results_equal",
    "format_table",
    "format_series",
    "QoSFrontier",
    "SweepPoint",
    "qos_frontier",
]
