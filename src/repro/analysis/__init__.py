"""Experiment runners and reporting.

One runner per paper artifact (figure or table), each returning a
structured result that the benchmark harness regenerates and
EXPERIMENTS.md records. See DESIGN.md's experiment index for the
mapping.
"""

from . import experiments
from .reporting import format_table, format_series
from .sweeps import QoSFrontier, SweepPoint, qos_frontier

__all__ = [
    "experiments",
    "format_table",
    "format_series",
    "QoSFrontier",
    "SweepPoint",
    "qos_frontier",
]
