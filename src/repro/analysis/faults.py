"""Deterministic fault injection for the experiment engine.

The paper's thesis is graceful forward progress under unreliable
power; this module applies the same doctrine to the harness itself. A
:class:`FaultPlan` maps ``(task index, attempt)`` pairs to
:class:`FaultSpec`\\ s; while a plan is installed (:func:`install` /
:func:`injected`), the engine's robust runner passes the matching spec
into each worker invocation, which then

* ``crash``   — raises :class:`~repro.errors.InjectedFaultError`
  before touching the simulator;
* ``hang``    — sleeps past the configured task timeout (finite, so a
  serial run eventually completes even without preemption);
* ``corrupt`` — runs the real simulation, then returns a payload that
  deliberately violates the engine's result-validation invariants
  (negative progress counters, out-of-range bit schedules).

Plans are *seeded* (:meth:`FaultPlan.seeded`), so a fault campaign is
exactly reproducible, and *attempt-addressed*: a fault armed for
attempt 0 never re-fires on the retry, which is what makes the
differential suite's bit-exactness guarantee checkable — the retried
task performs the identical clean computation.

All state lives in the parent process; workers only ever see the one
:class:`FaultSpec` (picklable) for their specific attempt, so process
pools, serial fallback and any worker count inject identically.
"""

from __future__ import annotations

import dataclasses
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..core.executive import ExecutiveResult
from ..errors import ConfigurationError, InjectedFaultError
from ..system.metrics import SimulationResult

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "install",
    "clear",
    "active",
    "injected",
    "apply_pre_fault",
    "corrupt_simulation_result",
    "corrupt_executive_result",
]

#: The three injectable failure modes.
FAULT_KINDS = ("crash", "hang", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault (picklable, shipped to the worker)."""

    kind: str
    #: Sleep duration of a ``hang`` fault. Finite by design: a serial
    #: (non-preemptible) run still terminates, merely late.
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.hang_s < 0:
            raise ConfigurationError("hang_s must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one (or any) grid kind.

    ``faults`` maps ``(task_index, attempt)`` to the fault to inject;
    ``scope`` restricts the plan to one grid kind (``"fixed"``,
    ``"executive"``, ``"trace"``) or applies to every kind if ``None``.
    """

    faults: Mapping[Tuple[int, int], FaultSpec] = field(default_factory=dict)
    scope: Optional[str] = None

    def fault_for(
        self, scope: str, index: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The fault to inject for this task attempt, if any."""
        if self.scope is not None and self.scope != scope:
            return None
        return self.faults.get((index, attempt))

    def counts(self) -> Dict[str, int]:
        """Armed faults per kind — the oracle the telemetry must match."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for spec in self.faults.values():
            out[spec.kind] += 1
        return out

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_tasks: int,
        crashes: int = 0,
        hangs: int = 0,
        corrupts: int = 0,
        scope: Optional[str] = None,
        hang_s: float = 5.0,
        attempt: int = 0,
    ) -> "FaultPlan":
        """A reproducible plan: faulted task indices drawn from ``seed``.

        Each fault lands on a distinct task index (so the per-kind
        telemetry counters are exactly the requested counts), all armed
        for the given ``attempt`` (default: the first).
        """
        total = crashes + hangs + corrupts
        if total > n_tasks:
            raise ConfigurationError(
                f"cannot inject {total} faults into {n_tasks} task(s)"
            )
        rng = random.Random(seed)
        indices = rng.sample(range(n_tasks), total)
        kinds = ["crash"] * crashes + ["hang"] * hangs + ["corrupt"] * corrupts
        faults = {
            (index, attempt): FaultSpec(kind, hang_s=hang_s)
            for index, kind in zip(indices, kinds)
        }
        return cls(faults=faults, scope=scope)


# -- installation (parent-process state) ---------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` for every subsequent engine run (until cleared)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Disarm any installed fault plan."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The installed plan, if any (queried by the engine per attempt)."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# -- worker-side application ---------------------------------------------------


def apply_pre_fault(spec: Optional[FaultSpec]) -> None:
    """Apply a ``crash``/``hang`` fault before the simulation runs."""
    if spec is None:
        return
    if spec.kind == "crash":
        raise InjectedFaultError("injected worker crash")
    if spec.kind == "hang":
        time.sleep(spec.hang_s)


def corrupt_simulation_result(result: SimulationResult) -> SimulationResult:
    """A payload guaranteed to fail the engine's result validation.

    The corruption passes :class:`SimulationResult` construction (only
    lengths are checked there) but violates the value-range invariants
    the robust runner enforces, modelling a worker that returned
    garbage without raising.
    """
    return dataclasses.replace(
        result,
        forward_progress=-1,
        bit_schedule=np.full_like(result.bit_schedule, 99),
    )


def corrupt_executive_result(result: ExecutiveResult) -> ExecutiveResult:
    """The executive twin of :func:`corrupt_simulation_result`."""
    return ExecutiveResult(
        sim=corrupt_simulation_result(result.sim),
        frames=result.frames,
        idle_instructions=-1,
    )
