"""Trace exporters: Chrome trace-event JSON, JSONL, and text summaries.

The tick-domain records a :class:`~repro.obs.tracer.Tracer` collects map
directly onto the Chrome trace-event format (the ``ph``/``ts``/``dur``
schema consumed by ``chrome://tracing`` and Perfetto). One simulator
tick is 0.1 ms, so ``ts = tick * 100`` puts the timeline in the
microseconds Chrome expects. Wall-domain profiling spans keep their own
host-microsecond timeline and land on a dedicated ``profile`` thread
row so device time and host time never share an axis.

Multi-task captures (a grid run with ``--trace-out``) export each task
label as its own Chrome *process*, named via ``process_name`` metadata
events, which Perfetto renders as collapsible per-task groups.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError

__all__ = [
    "TICK_US",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_trace",
    "validate_chrome_trace",
    "summarize_trace",
    "format_summary",
    "render_prometheus",
]

#: Microseconds per simulator tick (TICK_S = 1e-4 s).
TICK_US = 100.0

#: Chrome thread ids: device events on tid 0, profiling on tid 1.
_TID_DEVICE = 0
_TID_PROFILE = 1

_ALLOWED_PH = {"X", "i", "I", "M", "B", "E", "C"}


def _event_for_record(record: Mapping[str, object], pid: int) -> Dict[str, object]:
    """Translate one tracer record into a Chrome trace event."""
    cat = str(record.get("cat", "device"))
    event: Dict[str, object] = {
        "name": str(record.get("name", "")),
        "cat": cat,
        "ph": str(record.get("ph", "i")),
        "pid": pid,
        "args": dict(record.get("args", {}) or {}),
    }
    if cat == "profile":
        event["tid"] = _TID_PROFILE
        event["ts"] = float(record.get("wall_us", 0.0))
        if event["ph"] == "X":
            event["dur"] = float(record.get("dur_us", 0.0))
    else:
        event["tid"] = _TID_DEVICE
        event["ts"] = float(record.get("tick", 0)) * TICK_US
        if event["ph"] == "X":
            event["dur"] = float(record.get("dur", 0)) * TICK_US
        else:
            # Chrome instants need a scope; "t" pins them to the thread.
            event["s"] = "t"
        event["args"].setdefault("tick", record.get("tick", 0))
    return event


def _metadata(pid: int, name: str) -> Dict[str, object]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "ts": 0,
        "cat": "__metadata",
        "args": {"name": name},
    }


def chrome_trace(
    collected: Mapping[str, Sequence[Mapping[str, object]]],
) -> Dict[str, object]:
    """Build a Chrome trace-event JSON object from collected records.

    ``collected`` maps a task label to that task's tracer records; each
    label becomes one Chrome process so grid tasks stay distinguishable
    on the Perfetto timeline.
    """
    events: List[Dict[str, object]] = []
    for pid, (label, records) in enumerate(sorted(collected.items()), start=1):
        events.append(_metadata(pid, label))
        for record in records:
            events.append(_event_for_record(record, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tick_us": TICK_US, "source": "repro.obs"},
    }


def write_chrome_trace(
    path: object,
    collected: Mapping[str, Sequence[Mapping[str, object]]],
) -> pathlib.Path:
    """Write a Chrome trace-event JSON file and return its path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(collected), sort_keys=True))
    return out


def write_jsonl(
    path: object,
    collected: Mapping[str, Sequence[Mapping[str, object]]],
) -> pathlib.Path:
    """Write raw tracer records as JSONL (one record per line, with a
    ``label`` field identifying the originating task)."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        for label, records in sorted(collected.items()):
            for record in records:
                row = dict(record)
                row["label"] = label
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    return out


def read_trace(path: object) -> List[Dict[str, object]]:
    """Load events from a saved trace, autodetecting the format.

    Accepts Chrome trace-event JSON (returns its ``traceEvents``) or the
    JSONL event log (returns one dict per line). Raises
    :class:`ConfigurationError` on unreadable or unrecognized files.
    """
    source = pathlib.Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {source}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ConfigurationError(f"trace file {source} is empty")
    # A Chrome trace is one JSON object with a traceEvents list. A JSONL
    # log also starts with "{" but holds one object per line, so the
    # whole-file parse either fails (several lines) or yields an object
    # without traceEvents (a single record) — both fall through to the
    # line-oriented parser.
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and isinstance(payload.get("traceEvents"), list):
            return [e for e in payload["traceEvents"] if isinstance(e, dict)]
    events: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace file {source} line {lineno} is not valid JSON: {exc}"
            ) from exc
        if isinstance(row, dict):
            events.append(row)
    if not events:
        raise ConfigurationError(f"trace file {source} contains no events")
    return events


def validate_chrome_trace(payload: object) -> List[str]:
    """Check a parsed object against the Chrome trace-event schema.

    Returns a list of human-readable problems (empty = valid). Used by
    the CI smoke job and the export tests.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top-level value is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing string name")
        ph = event.get("ph")
        if ph not in _ALLOWED_PH:
            problems.append(f"{where}: unsupported ph {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs non-negative dur")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an integer")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
    return problems


def _energy_of(event: Mapping[str, object]) -> float:
    args = event.get("args")
    if not isinstance(args, dict):
        return 0.0
    value = args.get("energy_uj")
    return float(value) if isinstance(value, (int, float)) else 0.0


def _is_outage(event: Mapping[str, object]) -> bool:
    return event.get("name") == "outage" and event.get("ph") == "X"


def _dur_ticks(event: Mapping[str, object]) -> float:
    dur = event.get("dur", 0.0)
    dur = float(dur) if isinstance(dur, (int, float)) else 0.0
    # Chrome exports carry dur in µs; raw JSONL records carry ticks.
    return dur / TICK_US if "ts" in event else dur


def summarize_trace(
    events: Iterable[Mapping[str, object]],
    top: int = 5,
) -> Dict[str, object]:
    """Aggregate a loaded trace: top-N energy consumers + outage stats.

    Works on either format :func:`read_trace` returns. Energy is summed
    from each event's ``args.energy_uj`` grouped by event name; outage
    statistics come from ``outage`` spans.
    """
    energy: Dict[str, Dict[str, float]] = {}
    outages: List[float] = []
    n_events = 0
    for event in events:
        if event.get("ph") == "M":
            continue
        n_events += 1
        uj = _energy_of(event)
        if uj > 0.0:
            bucket = energy.setdefault(str(event.get("name")), {"energy_uj": 0.0, "events": 0})
            bucket["energy_uj"] += uj
            bucket["events"] += 1
        if _is_outage(event):
            outages.append(_dur_ticks(event))
    ranked = sorted(energy.items(), key=lambda kv: (-kv[1]["energy_uj"], kv[0]))
    return {
        "n_events": n_events,
        "top_energy": [
            {"name": name, "energy_uj": stats["energy_uj"], "events": int(stats["events"])}
            for name, stats in ranked[: max(0, int(top))]
        ],
        "outages": {
            "count": len(outages),
            "total_ticks": sum(outages),
            "mean_ticks": (sum(outages) / len(outages)) if outages else 0.0,
            "max_ticks": max(outages) if outages else 0.0,
        },
    }


def format_summary(summary: Mapping[str, object]) -> str:
    """Render :func:`summarize_trace` output as an aligned text block."""
    lines = [f"trace events: {summary['n_events']}"]
    top = summary.get("top_energy") or []
    if top:
        lines.append("top energy consumers:")
        width = max(len(str(row["name"])) for row in top)
        for row in top:
            lines.append(
                f"  {str(row['name']):<{width}}  "
                f"{row['energy_uj']:>12.3f} uJ  ({row['events']} events)"
            )
    else:
        lines.append("top energy consumers: none recorded")
    outages = summary.get("outages") or {}
    count = int(outages.get("count", 0))
    if count:
        lines.append(
            "outages: {count} spans, mean {mean:.0f} ticks, max {peak:.0f} ticks "
            "({total:.0f} ticks total)".format(
                count=count,
                mean=float(outages.get("mean_ticks", 0.0)),
                peak=float(outages.get("max_ticks", 0.0)),
                total=float(outages.get("total_ticks", 0.0)),
            )
        )
    else:
        lines.append("outages: none recorded")
    return "\n".join(lines)


# -- Prometheus text exposition -------------------------------------------------
#
# First slice of the live-metrics roadmap item: any MetricsRegistry —
# a device run's, or the campaign service's merged registry — renders
# to the Prometheus text format (version 0.0.4) so a fleet campaign
# can be watched by a stock scraper. Counters map to counters
# (suffixed `_total` per convention), gauges to gauges, and the
# fixed-bucket histograms map exactly: cumulative `_bucket{le=...}`
# series plus `_sum` / `_count`, no re-binning.


def _prometheus_name(name: str, prefix: str) -> str:
    safe = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_"
        for ch in str(name)
    )
    full = f"{prefix}_{safe}" if prefix else safe
    if not full or full[0].isdigit():
        full = f"_{full}"
    return full


def _prometheus_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prometheus_help(raw_name: str, kind: str,
                     help_texts: Optional[Mapping[str, str]]) -> str:
    if help_texts and raw_name in help_texts:
        text = help_texts[raw_name]
    else:
        text = f"{kind} '{raw_name}' from the repro metrics registry."
    # Exposition-format escaping for HELP text: backslash and newline.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(
    registry,
    prefix: str = "repro",
    help_texts: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsRegistry` in
    Prometheus text format (deterministic: sorted families).

    Every family gets a ``# HELP`` line ahead of its ``# TYPE``;
    ``help_texts`` overrides the default description per raw metric
    name. Histograms expose the full exposition shape: cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name, value in sorted(registry.counters.items()):
        family = _prometheus_name(name, prefix)
        if not family.endswith("_total"):
            family += "_total"
        lines.append(
            f"# HELP {family} {_prometheus_help(name, 'counter', help_texts)}"
        )
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_prometheus_value(value)}")
    for name, value in sorted(registry.gauges.items()):
        family = _prometheus_name(name, prefix)
        lines.append(
            f"# HELP {family} {_prometheus_help(name, 'gauge', help_texts)}"
        )
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_prometheus_value(value)}")
    for name, hist in sorted(registry.histograms.items()):
        family = _prometheus_name(name, prefix)
        lines.append(
            f"# HELP {family} {_prometheus_help(name, 'histogram', help_texts)}"
        )
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{family}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{family}_sum {_prometheus_value(hist.sum)}")
        lines.append(f"{family}_count {hist.count}")
    return "\n".join(lines) + "\n"
