"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` accompanies each :class:`~repro.obs.tracer.
Tracer` and accumulates device-level aggregates for a run — backup
energy totals, lane-bitwidth distributions, outage-duration histograms.
Registries serialize to plain dicts (to cross process-pool boundaries
inside engine workers) and merge associatively, so per-task metrics from
a grid collapse into one per-run view in the same way
``ResiliencePoint.reduce`` folds per-trace results.

Histograms use *fixed* bucket bounds declared at creation time: merging
is only defined between histograms with identical bounds, which keeps
the merge exact (no re-binning, no approximation). Canonical bound sets
for the quantities the device instrumentation records are exported as
module constants.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .._validation import require
from ..errors import ConfigurationError

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "BACKUP_ENERGY_BUCKETS",
    "OUTAGE_TICKS_BUCKETS",
    "BITWIDTH_BUCKETS",
    "PSNR_DB_BUCKETS",
]

#: Backup-event energies in µJ. Typical completed backups land in the
#: 0.1–10 µJ decades; the open top bucket catches widest-image outliers.
BACKUP_ENERGY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0)

#: Outage durations in ticks (0.1 ms each): 10 ms .. 10 s decades.
OUTAGE_TICKS_BUCKETS = (100, 500, 1_000, 5_000, 10_000, 50_000, 100_000)

#: Lane bitwidths; one bucket per width 1..8 (bound b holds values <= b).
BITWIDTH_BUCKETS = (1, 2, 3, 4, 5, 6, 7, 8)

#: Frame PSNR scores in dB (the paper's quality axis spans ~10-50 dB).
PSNR_DB_BUCKETS = (10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0)


@dataclass
class Histogram:
    """Fixed-bound histogram: ``counts[i]`` holds values <= ``bounds[i]``,
    with one extra overflow bucket for values above the last bound."""

    bounds: Sequence[float]
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.bounds)
        require(len(bounds) >= 1, "histogram bounds must be non-empty")
        require(
            all(a < b for a, b in zip(bounds, bounds[1:])),
            "histogram bounds must be strictly increasing",
        )
        self.bounds = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)
        require(
            len(self.counts) == len(bounds) + 1,
            "histogram counts must have len(bounds) + 1 buckets",
        )

    def observe(self, value: float, n: int = 1) -> None:
        """Add ``n`` observations of ``value``."""
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += n
        self.sum += value * n
        self.count += n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != tuple(self.bounds):
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds: "
                f"{tuple(self.bounds)} vs {tuple(other.bounds)}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        return cls(
            bounds=payload["bounds"],
            counts=list(payload["counts"]),
            sum=float(payload["sum"]),
            count=int(payload["count"]),
        )


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run (or one merge).

    * **counters** accumulate (``inc``); merging sums them.
    * **gauges** hold last-written values (``set_gauge``); merging keeps
      the incoming value — gauges are per-run facts (e.g. on-fraction),
      and callers that need distributions should use histograms instead.
    * **histograms** observe values into fixed buckets; merging requires
      identical bounds and adds bucket-wise.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Get or create the named histogram (bounds fixed on creation)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds=bounds)
            self.histograms[name] = hist
        return hist

    def observe(self, name: str, value: float, bounds: Sequence[float]) -> None:
        self.histogram(name, bounds).observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, value in other.gauges.items():
            self.set_gauge(name, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(hist.to_dict())
            else:
                mine.merge(hist)

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Merge a :meth:`to_dict` payload (the cross-process form)."""
        if not payload:
            return
        self.merge(MetricsRegistry.from_dict(payload))

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        if not payload:
            return registry
        registry.counters.update(payload.get("counters", {}))
        registry.gauges.update(payload.get("gauges", {}))
        for name, hist in payload.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(hist)
        return registry

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)
