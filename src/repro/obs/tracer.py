"""Structured device tracer: span/instant events with tick timestamps.

The tracer is the observation layer of the simulated device: the system
simulator, the processor's backup engine, the resilience state machine
and the incidental executive all emit events into one :class:`Tracer`
so a whole run can be replayed on a timeline (exported to Chrome
trace-event JSON by :mod:`repro.obs.export`).

Two time domains coexist in one trace:

* **tick-domain** events (``cat != "profile"``): device-level spans and
  instants stamped with the simulator's 0.1 ms tick index. These are
  pure functions of the simulated trajectory and therefore fully
  deterministic — the trace-determinism tests compare them byte for
  byte across repeated runs.
* **wall-domain** events (``cat == "profile"``): per-phase wall-time
  spans recorded by :meth:`Tracer.phase` on the fast-path hot spots.
  These carry host timings and are excluded from determinism checks.

The zero-overhead contract
--------------------------

Instrumented code never constructs event arguments unconditionally: it
guards with the tracer's boolean attributes (``enabled`` / ``spans`` /
``events`` / ``debug``), hoisted to locals before hot loops. The
module-level :data:`NULL_TRACER` singleton has every flag ``False`` and
no-op methods, so a disabled run's only cost is the guard itself — a
local load and a conditional jump. ``benchmarks/bench_obs.py`` bounds
that cost at < 2 % of the fastsim path, and the differential suite in
``tests/test_obs_differential.py`` enforces that enabling the tracer
changes no simulated result: tracing only ever *reads* device state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .._validation import check_choice, check_int_in_range
from .metrics import MetricsRegistry

__all__ = [
    "TRACE_LEVELS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
]

#: Verbosity levels, least to most verbose. ``"off"`` constructs a
#: disabled tracer (every flag False, nothing recorded); ``"spans"``
#: records state-machine spans, profiling phases and metrics;
#: ``"events"`` adds per-event instants (backups, restores, faults,
#: frame lifecycle); ``"debug"`` adds high-rate diagnostics.
TRACE_LEVELS = ("off", "spans", "events", "debug")


class _NullPhase:
    """Reusable no-op context manager for :meth:`NullTracer.phase`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullTracer:
    """The disabled tracer: every flag ``False``, every method a no-op.

    Instrumented call sites keep a reference to a tracer and guard event
    construction with ``if tracer.events:`` (or ``spans`` / ``debug``);
    with this object the guard is the entire cost.
    """

    __slots__ = ("tick",)

    enabled = False
    spans = False
    events = False
    debug = False
    level = "off"
    metrics: Optional[MetricsRegistry] = None

    def __init__(self) -> None:
        #: Current simulator tick, written only by *tracing* loops; kept
        #: so shared code may read ``tracer.tick`` unconditionally.
        self.tick = 0

    def instant(self, name, tick=None, cat="device", args=None) -> None:
        pass

    def span(self, name, start_tick, end_tick, cat="device", args=None) -> None:
        pass

    def wall_span(self, name, start_us, dur_us, cat="profile", args=None) -> None:
        pass

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def to_payload(self) -> Dict[str, object]:
        return {"records": [], "metrics": {}, "dropped": 0}


#: The module-level disabled tracer every instrumented constructor
#: defaults to. Shared and stateless (its ``tick`` is write-only noise).
NULL_TRACER = NullTracer()


class _Phase:
    """Context manager recording one wall-time profiling span."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> None:
        from time import perf_counter

        self._start = perf_counter()

    def __exit__(self, *exc) -> bool:
        from time import perf_counter

        elapsed_us = (perf_counter() - self._start) * 1e6
        start_us = self._tracer._wall_cursor_us
        self._tracer._wall_cursor_us = start_us + elapsed_us
        self._tracer.wall_span(self._name, start_us, elapsed_us)
        return False


class Tracer:
    """Recording tracer: an event list plus a :class:`MetricsRegistry`.

    Events are stored as plain dicts so they cross process-pool
    boundaries (the engine returns them from workers) and export without
    further translation:

    * tick-domain: ``{"name", "cat", "ph": "i"|"X", "tick", "dur", "args"}``
      (``dur`` in ticks, spans only);
    * wall-domain: ``{"name", "cat": "profile", "ph": "X", "wall_us",
      "dur_us", "args"}``.

    ``max_events`` bounds memory on pathological runs; overflow is
    counted in ``dropped``, never raised.
    """

    __slots__ = (
        "enabled",
        "spans",
        "events",
        "debug",
        "level",
        "records",
        "metrics",
        "max_events",
        "dropped",
        "tick",
        "_wall_cursor_us",
    )

    def __init__(
        self,
        level: str = "events",
        max_events: int = 500_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        check_choice(level, "level", TRACE_LEVELS)
        self.level = level
        rank = TRACE_LEVELS.index(level)
        self.enabled = rank >= 1
        self.spans = rank >= 1
        self.events = rank >= 2
        self.debug = rank >= 3
        self.max_events = check_int_in_range(max_events, "max_events", 1)
        self.records: List[Dict[str, object]] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dropped = 0
        self.tick = 0
        self._wall_cursor_us = 0.0

    # -- event recording ------------------------------------------------

    def _push(self, record: Dict[str, object]) -> None:
        if len(self.records) >= self.max_events:
            self.dropped += 1
            return
        self.records.append(record)

    def instant(
        self,
        name: str,
        tick: Optional[int] = None,
        cat: str = "device",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a point event at ``tick`` (``None`` = current tick)."""
        if not self.enabled:
            return
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "tick": self.tick if tick is None else int(tick),
                "args": {} if args is None else args,
            }
        )

    def span(
        self,
        name: str,
        start_tick: int,
        end_tick: int,
        cat: str = "device",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a complete tick-domain span ``[start_tick, end_tick]``."""
        if not self.enabled:
            return
        start_tick = int(start_tick)
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "tick": start_tick,
                "dur": max(0, int(end_tick) - start_tick),
                "args": {} if args is None else args,
            }
        )

    def wall_span(
        self,
        name: str,
        start_us: float,
        dur_us: float,
        cat: str = "profile",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a wall-time span (host microseconds, profiling layer)."""
        if not self.enabled:
            return
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "wall_us": float(start_us),
                "dur_us": float(dur_us),
                "args": {} if args is None else args,
            }
        )

    def phase(self, name: str) -> _Phase:
        """Context manager timing one fast-path phase (wall domain).

        Consecutive phases stack end to end on a synthetic wall
        timeline starting at 0 µs, so the profile row reads as a
        breakdown of the run regardless of when the host executed it.
        """
        return _Phase(self, name)

    # -- hand-off --------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable dump: records + metrics + drop counter.

        This is what engine workers return to the parent process and
        what :mod:`repro.obs.capture` aggregates across grid tasks.
        """
        return {
            "records": self.records,
            "metrics": self.metrics.to_dict(),
            "dropped": self.dropped,
        }


def resolve_tracer(tracer: Optional["Tracer"]) -> "Tracer":
    """``None`` -> :data:`NULL_TRACER`; anything else passes through.

    The one-line idiom every instrumented constructor uses, so public
    signatures stay ``tracer=None`` while internals can assume a tracer
    object with the guard flags.
    """
    return NULL_TRACER if tracer is None else tracer
