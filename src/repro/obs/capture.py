"""Run-scoped trace/metrics capture for the CLIs and the engine.

The experiment engine fans tasks out to a process pool; each worker
builds its own :class:`~repro.obs.tracer.Tracer` and ships the payload
back with the result. This module is the parent-side accumulator: the
CLI calls :func:`configure` when ``--trace-out``/``--metrics-out`` are
present, grid runners call :func:`capture_level` to decide whether to
trace workers at all and :func:`collect` to fold accepted payloads in,
and the CLI calls :func:`flush` at exit to write the exporter files.

Like :mod:`repro.analysis.telemetry`, state is module-global and reset
between runs/tests with :func:`reset`. When capture is inactive,
``capture_level()`` is ``None`` and the engine skips tracer construction
entirely, preserving the zero-overhead contract end to end.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Mapping, Optional

from .._validation import check_choice
from .export import write_chrome_trace, write_jsonl
from .metrics import MetricsRegistry
from .tracer import TRACE_LEVELS

__all__ = [
    "configure",
    "active",
    "capture_level",
    "collect",
    "collected_records",
    "merged_metrics",
    "flush",
    "reset",
]

_trace_out: Optional[pathlib.Path] = None
_metrics_out: Optional[pathlib.Path] = None
_level: Optional[str] = None
_records: Dict[str, List[dict]] = {}
_metrics = MetricsRegistry()
_dropped = 0


def configure(
    trace_out: Optional[object] = None,
    metrics_out: Optional[object] = None,
    level: str = "events",
) -> None:
    """Arm capture for the coming run. A no-op if neither output is set."""
    global _trace_out, _metrics_out, _level
    reset()
    if trace_out is None and metrics_out is None:
        return
    check_choice(level, "trace level", tuple(l for l in TRACE_LEVELS if l != "off"))
    _trace_out = pathlib.Path(trace_out) if trace_out is not None else None
    _metrics_out = pathlib.Path(metrics_out) if metrics_out is not None else None
    _level = level


def active() -> bool:
    return _level is not None


def capture_level() -> Optional[str]:
    """Trace level workers should run at, or ``None`` when inactive."""
    return _level


def collect(label: str, payload: Optional[Mapping[str, object]]) -> None:
    """Fold one worker's tracer payload into the run-wide capture."""
    global _dropped
    if _level is None or not payload:
        return
    records = payload.get("records") or []
    if records:
        _records.setdefault(str(label), []).extend(records)
    _metrics.merge_dict(payload.get("metrics") or {})
    _dropped += int(payload.get("dropped", 0) or 0)


def collected_records() -> Dict[str, List[dict]]:
    return _records


def merged_metrics() -> MetricsRegistry:
    return _metrics


def flush() -> List[pathlib.Path]:
    """Write configured outputs and return the paths actually written.

    The trace file is Chrome trace-event JSON unless the path ends in
    ``.jsonl`` (then the raw event log is written); the metrics file is
    the merged registry as JSON.
    """
    import json

    written: List[pathlib.Path] = []
    if _level is None:
        return written
    if _trace_out is not None:
        if _trace_out.suffix == ".jsonl":
            written.append(write_jsonl(_trace_out, _records))
        else:
            written.append(write_chrome_trace(_trace_out, _records))
    if _metrics_out is not None:
        _metrics_out.parent.mkdir(parents=True, exist_ok=True)
        payload = _metrics.to_dict()
        payload["dropped_events"] = _dropped
        _metrics_out.write_text(json.dumps(payload, sort_keys=True, indent=2))
        written.append(_metrics_out)
    return written


def reset() -> None:
    """Disarm capture and drop accumulated state (used between tests)."""
    global _trace_out, _metrics_out, _level, _records, _metrics, _dropped
    _trace_out = None
    _metrics_out = None
    _level = None
    _records = {}
    _metrics = MetricsRegistry()
    _dropped = 0
