"""Device-level observability: tracer, metrics, exporters, capture.

See DESIGN.md "Observability" for the event taxonomy and the overhead /
bit-exactness contracts this package is held to.
"""

from .metrics import (
    BACKUP_ENERGY_BUCKETS,
    BITWIDTH_BUCKETS,
    OUTAGE_TICKS_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from .tracer import NULL_TRACER, TRACE_LEVELS, NullTracer, Tracer, resolve_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_LEVELS",
    "resolve_tracer",
    "MetricsRegistry",
    "Histogram",
    "BACKUP_ENERGY_BUCKETS",
    "OUTAGE_TICKS_BUCKETS",
    "BITWIDTH_BUCKETS",
]
