"""The campaign service HTTP front end.

A deliberately small, hand-rolled HTTP/1.1 server on
``asyncio.start_server`` — the environment ships no third-party web
framework, and the service's surface (five JSON routes plus one JSONL
stream) does not need one. The event loop only parses requests and
shuttles bytes; every campaign executes on the
:class:`~repro.service.queue.CampaignQueue` worker threads, so a
long-running grid never blocks health checks or status polls.

Routes::

    GET    /healthz            liveness + queue occupancy + journal state
    GET    /metrics            Prometheus text-format metrics export
    GET    /cache              shared sharded-cache info (incl. hot tier)
    GET    /jobs               all job status documents
    POST   /jobs               submit a campaign  -> 202 + job status
                               (200 when deduplicated onto an active job)
    GET    /jobs/<id>[?wait=S] one job's status (optionally long-poll)
    GET    /jobs/<id>/results  finished job's JSONL result stream
    DELETE /jobs/<id>          request cancellation
    DELETE /                   begin a graceful drain (admin / tests)

Error mapping: malformed campaign -> 400, unknown job -> 404,
results before completion -> 409, queue at capacity or draining ->
503 + ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..analysis import engine as engine_mod
from ..analysis.engine import ShardedResultCache, configure
from ..errors import ConfigurationError, QueueFullError, ServiceDrainingError
from ..obs.export import render_prometheus
from ..obs.metrics import MetricsRegistry
from .journal import JobJournal
from .queue import CampaignQueue

__all__ = [
    "CampaignService",
    "ServiceHandle",
    "create_service",
    "start_in_thread",
]

#: Campaign payloads are small JSON documents; anything bigger than
#: this is a malfunctioning client, not a campaign.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Per-request header/body read deadline.
READ_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def create_service(
    cache_dir,
    capacity: int = 64,
    workers: int = 2,
    hot_bytes: int = ShardedResultCache.DEFAULT_HOT_BYTES,
    engine_workers: int = 1,
    journal: Union[str, JobJournal, None] = None,
    drain_timeout_s: float = 30.0,
) -> "CampaignService":
    """Build a service around a fresh shared sharded cache.

    Configures the process-wide engine for service duty: the sharded
    cache with its hot tier, ``engine_workers`` engine processes per
    grid (default 1 — concurrency comes from the queue's worker
    threads), and ``use_memo=False`` so repeat hits land in the
    byte-bounded hot tier instead of the unbounded process memo.

    ``journal`` (a path or a :class:`JobJournal`) arms the write-ahead
    job journal: jobs found pending in it are replayed and re-enqueued
    before the listener opens, so a restarted server resumes exactly
    where the killed one stopped.
    """
    cache = ShardedResultCache(cache_dir, hot_bytes=hot_bytes)
    configure(cache=cache, use_memo=False, workers=engine_workers)
    if journal is not None and not isinstance(journal, JobJournal):
        journal = JobJournal(journal)
    return CampaignService(
        cache=cache,
        capacity=capacity,
        workers=workers,
        journal=journal,
        drain_timeout_s=drain_timeout_s,
    )


class CampaignService:
    """HTTP front end over a :class:`CampaignQueue` and a shared cache."""

    def __init__(
        self,
        cache: ShardedResultCache,
        capacity: int = 64,
        workers: int = 2,
        journal: Optional[JobJournal] = None,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self.cache = cache
        self.journal = journal
        self.drain_timeout_s = float(drain_timeout_s)
        self.queue = CampaignQueue(
            capacity=capacity, workers=workers, journal=journal
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_lock = threading.Lock()
        self._drain_thread: Optional[threading.Thread] = None
        self._drain_summary: Dict[str, int] = {}
        # Run-table endpoint accounting, surfaced through /metrics.
        self._runtable_lock = threading.Lock()
        self._runtable_requests = 0
        self._runtable_rows = 0
        self._runtable_bytes = 0

    # -- drain -----------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self.queue.draining

    def drain(self, timeout_s: Optional[float] = None) -> Dict[str, int]:
        """Synchronous graceful drain (SIGTERM path): refuse new
        submissions, finish running jobs up to the deadline, journal
        the remainder as requeued, join the workers."""
        summary = self.queue.drain(
            self.drain_timeout_s if timeout_s is None else timeout_s
        )
        self._drain_summary = summary
        return summary

    def begin_drain(self) -> None:
        """Start a drain without blocking the event loop (the
        ``DELETE /`` admin path); idempotent."""
        with self._drain_lock:
            if self._drain_thread is None:
                self._drain_thread = threading.Thread(
                    target=self.drain, name="campaign-drain", daemon=True
                )
                self._drain_thread.start()

    # -- request handling ------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one request; returns (method, target, body) or None on EOF."""
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT_S
        )
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"unacceptable content-length {length}")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT_S
            )
        return method.upper(), target, body

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.TimeoutError,
                ):
                    break
                except (ValueError, asyncio.LimitOverrunError) as exc:
                    await self._send_json(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                if request is None:
                    break
                method, target, body = request
                try:
                    status, payload, raw, headers = await self._route(
                        method, target, body
                    )
                except Exception as exc:  # pragma: no cover - last resort
                    status = 500
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                    raw, headers = None, None
                if raw is not None:
                    content_type = (headers or {}).pop(
                        "Content-Type", "application/x-ndjson"
                    )
                    await self._send_raw(
                        writer, status, raw, content_type, headers=headers
                    )
                else:
                    await self._send_json(
                        writer, status, payload, headers=headers
                    )
        except asyncio.CancelledError:
            # Shutdown cancels idle keep-alive handlers; end quietly so
            # the stream protocol's done-callback sees a clean task.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[
        int,
        Dict[str, object],
        Optional[bytes],
        Optional[Dict[str, str]],
    ]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)

        if path == "/" and method == "DELETE":
            # Admin drain: same state machine SIGTERM drives, reachable
            # over HTTP so the chaos/drain suites can exercise it.
            self.begin_drain()
            return (
                200,
                {
                    "draining": True,
                    "drain_timeout_s": self.drain_timeout_s,
                    "jobs": self.queue.counts(),
                },
                None,
                None,
            )
        if path == "/healthz" and method == "GET":
            counts = self.queue.counts()
            doc: Dict[str, object] = {
                "status": "draining" if self.draining else "ok",
                "draining": self.draining,
                "jobs": len(self.queue.jobs()),
                "jobs_by_state": counts,
                "active": counts["queued"] + counts["running"],
                "capacity": self.queue.capacity,
            }
            if self.journal is not None:
                doc["journal"] = self.journal.stats.to_dict()
            return 200, doc, None, None
        if path == "/metrics" and method == "GET":
            text = self._metrics_document()
            return (
                200,
                {},
                text.encode("utf-8"),
                {"Content-Type": "text/plain; version=0.0.4"},
            )
        if path == "/cache" and method == "GET":
            return 200, self.cache.info(), None, None
        if path == "/jobs" and method == "GET":
            return (
                200,
                {"jobs": [job.to_dict() for job in self.queue.jobs()]},
                None,
                None,
            )
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"body is not JSON: {exc}"}, None, None
            try:
                # Admission fsyncs the journal's submitted record: run
                # it on a pool thread so the commit-point write never
                # head-of-line-blocks every other client on the loop.
                job, created = await asyncio.get_running_loop().run_in_executor(
                    None, self.queue.submit, payload
                )
            except ConfigurationError as exc:
                return 400, {"error": str(exc)}, None, None
            except ServiceDrainingError as exc:
                # Capacity never frees up in a draining process; point
                # the client past the drain window at the restarted
                # server (resubmission is idempotent).
                retry_after = max(1, int(self.drain_timeout_s))
                return (
                    503,
                    {"error": str(exc), "draining": True},
                    None,
                    {"Retry-After": str(retry_after)},
                )
            except QueueFullError as exc:
                return (
                    503,
                    {"error": str(exc)},
                    None,
                    {"Retry-After": "1"},
                )
            doc = job.to_dict()
            if not created:
                doc["deduplicated"] = True
            return (202 if created else 200), doc, None, None

        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.queue.get(job_id)
            if job is None:
                return 404, {"error": f"unknown job {job_id!r}"}, None, None
            if not tail and method == "GET":
                wait_values = query.get("wait")
                if wait_values:
                    try:
                        wait_s = min(max(float(wait_values[0]), 0.0), 60.0)
                    except ValueError:
                        return (
                            400,
                            {"error": f"bad wait value {wait_values[0]!r}"},
                            None,
                            None,
                        )
                    if wait_s:
                        # Block on a pool thread, never the event loop.
                        await asyncio.get_running_loop().run_in_executor(
                            None, job.done_event.wait, wait_s
                        )
                return 200, job.to_dict(), None, None
            if not tail and method == "DELETE":
                self.queue.cancel(job_id)
                return 200, job.to_dict(), None, None
            if tail == "results" and method == "GET":
                if job.status != "done":
                    return (
                        409,
                        {
                            "error": (
                                f"job {job_id} is {job.status}, not done"
                            ),
                            "status": job.status,
                        },
                        None,
                        None,
                    )
                blob = ("\n".join(job.result_lines) + "\n").encode("utf-8")
                return 200, {}, blob, None
            if tail == "runtable.csv" and method == "GET":
                if job.status != "done":
                    return (
                        409,
                        {
                            "error": (
                                f"job {job_id} is {job.status}, not done"
                            ),
                            "status": job.status,
                        },
                        None,
                        None,
                    )
                blob = job.runtable_csv
                if blob is None:
                    try:
                        # Decoding payloads and replaying quality is CPU
                        # work — keep it off the event loop. Concurrent
                        # first requests may build twice; the bytes are
                        # identical, so last-write-wins is harmless.
                        blob = await asyncio.get_running_loop().run_in_executor(
                            None, self._build_runtable, job
                        )
                    except Exception as exc:  # pragma: no cover - defensive
                        return (
                            500,
                            {"error": f"run table build failed: {exc}"},
                            None,
                            None,
                        )
                n_rows = blob.count(b"\n") - 1
                with self._runtable_lock:
                    self._runtable_requests += 1
                    self._runtable_rows += n_rows
                    self._runtable_bytes += len(blob)
                return (
                    200,
                    {},
                    blob,
                    {"Content-Type": "text/csv; charset=utf-8"},
                )

        if path in ("/healthz", "/metrics", "/cache", "/jobs") or (
            path.startswith("/jobs/")
        ):
            return 405, {"error": f"{method} not allowed on {path}"}, None, None
        return 404, {"error": f"no route for {path}"}, None, None

    def _metrics_document(self) -> str:
        """Assemble the ``/metrics`` Prometheus text document.

        One registry holds everything: the queue's accumulated engine
        and device metrics (merged from every finished job's
        RunReports), point-in-time service gauges (queue depth by
        state, drain flag), monotonic cache counters (hot-tier hits,
        quarantines) and the journal's replay/skip accounting.
        """
        registry = self.queue.metrics_snapshot()
        for state, count in self.queue.counts().items():
            registry.set_gauge(f"service.jobs.{state}", count)
        registry.set_gauge("service.queue.capacity", self.queue.capacity)
        registry.set_gauge("service.draining", int(self.draining))
        info = self.cache.info()
        registry.set_gauge("cache.entries", info["entries"])
        for shard, count in info.get("shards", {}).items():
            registry.set_gauge(f"cache.shard.{shard}.entries", count)
        registry.set_gauge("cache.hot.entries", info.get("hot_entries", 0))
        registry.set_gauge("cache.hot.bytes", info.get("hot_bytes", 0))
        registry.inc("cache.hot.hits", info.get("hot_hits", 0))
        registry.inc("cache.quarantined", info.get("quarantined", 0))
        if self.journal is not None:
            for name, value in self.journal.stats.to_dict().items():
                registry.inc(f"journal.{name}", value)
        with self._runtable_lock:
            registry.inc("service.runtable.requests", self._runtable_requests)
            registry.inc("service.runtable.rows", self._runtable_rows)
            registry.inc("service.runtable.bytes", self._runtable_bytes)
        return render_prometheus(registry)

    def _build_runtable(self, job) -> bytes:
        """Build (and memoise) one job's canonical run-table CSV.

        The bytes derive purely from the campaign's task list and the
        bit-exact result payloads already streamed in
        ``job.result_lines``, so they equal what the offline writer
        produces for the same campaign with ``job=<job id>``.
        """
        from ..analysis.runtable import run_table_from_result_lines

        blob = run_table_from_result_lines(
            job.campaign, job.result_lines, job=job.id
        ).to_csv_bytes()
        job.runtable_csv = blob
        return blob

    # -- response writing ------------------------------------------------------

    async def _send_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in sorted((headers or {}).items())
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        # Stream large JSONL bodies in chunks so one giant result blob
        # never sits duplicated in a single write buffer.
        for offset in range(0, len(body), 1 << 16):
            writer.write(body[offset : offset + (1 << 16)])
            await writer.drain()
        if not body:
            await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._send_raw(
            writer,
            status,
            body,
            "application/json",
            close=close,
            headers=headers,
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, host=host, port=port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        sockets = self._server.sockets or ()
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                return sock.getsockname()[1]
        raise RuntimeError("service has no listening socket")

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close runs off the event loop thread's executor so a slow
        # worker join never wedges the loop shutdown.
        await asyncio.get_running_loop().run_in_executor(
            None, self.queue.close
        )


class ServiceHandle:
    """A service running on a background thread — the test/bench harness.

    ``base_url`` points at the ephemeral port; :meth:`close` tears down
    the event loop, the listener and the queue workers.
    """

    def __init__(
        self,
        service: CampaignService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread
        self.port = service.port
        self.base_url = f"http://127.0.0.1:{self.port}"

    def close(self, timeout_s: float = 10.0) -> None:
        drain_thread = self.service._drain_thread
        if drain_thread is not None and drain_thread.is_alive():
            drain_thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop
            )
            future.result(timeout=timeout_s)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout_s)
        if not self._loop.is_closed():
            self._loop.close()

    async def _shutdown(self) -> None:
        await self.service.aclose()
        # Idle keep-alive connections still sit in a read; cancel them
        # so the loop stops clean instead of warning about them.
        current = asyncio.current_task()
        for task in asyncio.all_tasks():
            if task is not current:
                task.cancel()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def start_in_thread(
    cache_dir,
    capacity: int = 64,
    workers: int = 2,
    hot_bytes: int = ShardedResultCache.DEFAULT_HOT_BYTES,
    engine_workers: int = 1,
    host: str = "127.0.0.1",
    journal: Union[str, JobJournal, None] = None,
    drain_timeout_s: float = 30.0,
) -> ServiceHandle:
    """Start a fully wired service on a daemon thread; returns its handle."""
    service = create_service(
        cache_dir,
        capacity=capacity,
        workers=workers,
        hot_bytes=hot_bytes,
        engine_workers=engine_workers,
        journal=journal,
        drain_timeout_s=drain_timeout_s,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start(host=host, port=0))
        except Exception as exc:  # pragma: no cover - bind failure
            failure.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(
        target=_run, name="campaign-service", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("campaign service failed to start in time")
    if failure:
        raise failure[0]
    return ServiceHandle(service=service, loop=loop, thread=thread)


def current_cache() -> Optional[ShardedResultCache]:
    """The engine's configured cache when it is the service's sharded kind."""
    cache = engine_mod._CONFIG.get("cache")
    return cache if isinstance(cache, ShardedResultCache) else None
