"""Campaign service wire protocol: parsing, execution, result encoding.

A campaign submission is one JSON object::

    {"kind": "grid",       "grid": {...GridSpec fields...}}
    {"kind": "grid",       "tasks": [{...FixedBitTask fields...}, ...]}
    {"kind": "executive",  "tasks": [{...ExecutiveTask fields...}, ...]}
    {"kind": "resilience", "campaign": {...ResilienceCampaign fields...}}
    {"kind": "fleet",      "fleet": {...FleetSpec fields..., "archetypes": [...]}}

plus an optional ``"engine"`` override (``auto`` / ``fast`` /
``reference``; resilience campaigns default to ``reference`` like the
CLI does). :func:`parse_campaign` validates the payload into real task
objects **at submission time**, so a malformed campaign is a 400 at
the door, never a failed job.

Results stream back as JSONL, one line per task in deterministic task
order. Array-carrying results (grid / executive / fleet) are encoded
with the *same* entry codec the on-disk cache uses
(:func:`repro.analysis.engine.fixed_entry_bytes` et al.), transported
as base64 — so the bytes a client receives are, by construction,
byte-identical to the ``.npz`` file a direct run writes into the
cache. Resilience points travel as sorted-key JSON, identical to their
cache payloads. The conformance suite
(``tests/test_service_conformance.py``) holds this line.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import telemetry
from ..analysis.engine import (
    ExecutiveTask,
    FixedBitTask,
    GridSpec,
    cancel_scope,
    executive_entry_bytes,
    fixed_entry_bytes,
    run_executive_grid,
    run_grid,
)
from ..analysis.resilience import ResilienceCampaign, run_resilience_grid
from ..errors import ConfigurationError
from ..fleet import FleetArchetype, FleetSpec, run_fleet

__all__ = [
    "CAMPAIGN_KINDS",
    "Campaign",
    "parse_campaign",
    "execute_campaign",
    "http_submit",
    "http_wait",
    "http_results",
    "http_cache_info",
    "http_health",
    "http_metrics",
    "RETRYABLE_STATUSES",
]

CAMPAIGN_KINDS = ("grid", "executive", "resilience", "fleet")

_ENGINE_CHOICES = ("auto", "fast", "reference")


@dataclass(frozen=True)
class Campaign:
    """One parsed, validated campaign submission.

    ``tasks`` holds the materialised task tuple for grid/executive/
    resilience kinds; fleet campaigns carry their :class:`FleetSpec`
    in ``fleet`` (device tasks expand inside :func:`run_fleet`).
    """

    kind: str
    engine: str
    tasks: Tuple = ()
    fleet: Optional[FleetSpec] = None
    #: The normalised submission payload (for signatures and echoes).
    payload: Dict[str, object] = dataclasses.field(default_factory=dict)

    def signature(self) -> str:
        """Content hash of the submission — the singleflight identity.

        Two submissions with equal signatures describe the identical
        campaign, so the queue serialises them against each other and
        the second one is served almost entirely from cache.
        """
        return hashlib.sha256(
            json.dumps(self.payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    @property
    def n_tasks(self) -> int:
        if self.kind == "fleet":
            assert self.fleet is not None
            return self.fleet.n_devices
        return len(self.tasks)


def _build(cls, data: object, what: str):
    """Construct a dataclass from a JSON object, with strict fields.

    JSON lists become tuples (every tuple-typed spec field arrives as
    a list on the wire); unknown keys are a
    :class:`~repro.errors.ConfigurationError` naming the offender, so
    a typo'd field name fails loudly at submission time.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{what} must be a JSON object, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"{what} has unknown field(s) {unknown}; expected a subset "
            f"of {sorted(known)}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"invalid {what}: {exc}") from exc


def parse_campaign(payload: object) -> Campaign:
    """Validate a submission payload into a :class:`Campaign`.

    Raises :class:`~repro.errors.ConfigurationError` on any malformed
    submission (the service maps that to HTTP 400).
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"campaign must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in CAMPAIGN_KINDS:
        raise ConfigurationError(
            f"kind must be one of {CAMPAIGN_KINDS}, got {kind!r}"
        )
    engine = payload.get("engine")
    if engine is None:
        engine = "reference" if kind == "resilience" else "auto"
    if engine not in _ENGINE_CHOICES:
        raise ConfigurationError(
            f"engine must be one of {_ENGINE_CHOICES}, got {engine!r}"
        )
    allowed_keys = {"kind", "engine", "grid", "tasks", "campaign", "fleet"}
    unknown = sorted(set(payload) - allowed_keys)
    if unknown:
        raise ConfigurationError(
            f"campaign has unknown key(s) {unknown}; expected a subset "
            f"of {sorted(allowed_keys)}"
        )

    tasks: Tuple = ()
    fleet: Optional[FleetSpec] = None
    if kind == "grid":
        if ("grid" in payload) == ("tasks" in payload):
            raise ConfigurationError(
                "a grid campaign needs exactly one of 'grid' or 'tasks'"
            )
        if "grid" in payload:
            tasks = _build(GridSpec, payload["grid"], "grid spec").tasks()
        else:
            task_list = payload["tasks"]
            if not isinstance(task_list, list) or not task_list:
                raise ConfigurationError(
                    "'tasks' must be a non-empty list of task objects"
                )
            tasks = tuple(
                _build(FixedBitTask, item, f"task {i}")
                for i, item in enumerate(task_list)
            )
    elif kind == "executive":
        task_list = payload.get("tasks")
        if not isinstance(task_list, list) or not task_list:
            raise ConfigurationError(
                "an executive campaign needs a non-empty 'tasks' list"
            )
        tasks = tuple(
            _build(ExecutiveTask, item, f"task {i}")
            for i, item in enumerate(task_list)
        )
    elif kind == "resilience":
        if "campaign" not in payload:
            raise ConfigurationError(
                "a resilience campaign needs a 'campaign' object"
            )
        campaign = _build(
            ResilienceCampaign, payload["campaign"], "resilience campaign"
        )
        tasks = campaign.tasks()
    else:  # fleet
        spec_data = payload.get("fleet")
        if not isinstance(spec_data, dict):
            raise ConfigurationError("a fleet campaign needs a 'fleet' object")
        spec_data = dict(spec_data)
        archetypes = spec_data.pop("archetypes", None)
        if archetypes is not None:
            if not isinstance(archetypes, list) or not archetypes:
                raise ConfigurationError(
                    "'archetypes' must be a non-empty list of objects"
                )
            spec_data["archetypes"] = [
                _build(FleetArchetype, item, f"archetype {i}")
                for i, item in enumerate(archetypes)
            ]
        fleet = _build(FleetSpec, spec_data, "fleet spec")

    normalised = json.loads(json.dumps(payload, sort_keys=True))
    normalised["engine"] = engine
    return Campaign(
        kind=kind, engine=engine, tasks=tasks, fleet=fleet, payload=normalised
    )


# -- execution + result encoding ----------------------------------------------


def _entry_line(index: int, name: str, data: bytes) -> str:
    return json.dumps(
        {
            "type": "task",
            "index": index,
            "name": name,
            "entry": base64.b64encode(data).decode("ascii"),
        },
        sort_keys=True,
    )


def execute_campaign(
    campaign: Campaign,
    cancel_event: Optional["threading.Event"] = None,
) -> Tuple[List[str], Dict[str, object]]:
    """Run ``campaign`` through the engine; returns (JSONL lines, summary).

    Uses the process-wide engine configuration (cache, workers, batch
    tier) exactly like a direct :func:`run_grid` call would — that is
    the whole point: the service path adds transport, never semantics.
    A set ``cancel_event`` aborts between engine waves/tasks with
    :class:`~repro.errors.JobCancelledError`.
    """
    scope = cancel_scope(cancel_event) if cancel_event is not None else None
    lines: List[str] = []
    summary: Dict[str, object] = {"kind": campaign.kind}
    if scope is not None:
        scope.__enter__()
    try:
        if campaign.kind == "grid":
            grid = run_grid(campaign.tasks, engine=campaign.engine)
            for i, (task, result) in enumerate(grid):
                lines.append(
                    _entry_line(
                        i, f"{task.cache_key()}.npz", fixed_entry_bytes(result)
                    )
                )
        elif campaign.kind == "executive":
            grid = run_executive_grid(campaign.tasks, engine=campaign.engine)
            for i, (task, result) in enumerate(grid):
                lines.append(
                    _entry_line(
                        i,
                        f"exec-{task.cache_key()}.npz",
                        executive_entry_bytes(result),
                    )
                )
        elif campaign.kind == "resilience":
            points = run_resilience_grid(campaign.tasks, engine=campaign.engine)
            for i, point in enumerate(points):
                lines.append(
                    json.dumps(
                        {"type": "point", "index": i, "point": point.to_dict()},
                        sort_keys=True,
                    )
                )
        else:  # fleet
            assert campaign.fleet is not None
            fleet_result = run_fleet(campaign.fleet, engine=campaign.engine)
            for i, (task, result) in enumerate(
                zip(fleet_result.tasks, fleet_result.results)
            ):
                lines.append(
                    _entry_line(
                        i, f"{task.cache_key()}.npz", fixed_entry_bytes(result)
                    )
                )
            summary["fleet"] = {
                "n_devices": len(fleet_result.tasks),
                "progress_percentiles": fleet_result.progress_percentiles,
                "progress_rate_percentiles": (
                    fleet_result.progress_rate_percentiles
                ),
                "availability_percentiles": (
                    fleet_result.availability_percentiles
                ),
                "availability_cdf": {
                    f"{threshold:g}": fraction
                    for threshold, fraction in (
                        fleet_result.availability_cdf.items()
                    )
                },
                "energy_per_progress_percentiles": (
                    fleet_result.energy_per_progress_percentiles
                ),
                "per_archetype": fleet_result.per_archetype,
            }
            lines.append(
                json.dumps(
                    {"type": "summary", **summary["fleet"]}, sort_keys=True
                )
            )
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    summary["tasks"] = campaign.n_tasks
    lines.append(
        json.dumps(
            {"type": "end", "count": campaign.n_tasks, "kind": campaign.kind},
            sort_keys=True,
        )
    )
    return lines, summary


def summarize_reports(
    reports: Sequence[telemetry.RunReport],
) -> Dict[str, object]:
    """Aggregate a job's collected RunReports into status telemetry."""
    return telemetry.summarize_events(
        [{"event": "run", **report.to_dict()} for report in reports]
    )


# -- stdlib HTTP client ---------------------------------------------------------
#
# The environment has no third-party HTTP client; urllib is entirely
# sufficient for the service's JSON + JSONL surface, and using it here
# keeps the CLI, tests and benchmark on one code path. The helpers are
# *hardened*: connection errors (a server mid-restart) and 503s (a
# draining or saturated queue) retry with jittered exponential
# backoff, honouring any ``Retry-After`` the server sent — safe
# because submissions are idempotent on their content hash.

#: HTTP statuses the retrying client treats as transient.
RETRYABLE_STATUSES = (503,)

#: Upper bound on any single backoff sleep.
MAX_BACKOFF_S = 10.0


def _request(
    method: str,
    url: str,
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 30.0,
) -> Tuple[int, bytes, Dict[str, str]]:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                response.read(),
                {k.lower(): v for k, v in response.headers.items()},
            )
    except urllib.error.HTTPError as exc:
        return (
            exc.code,
            exc.read(),
            {k.lower(): v for k, v in (exc.headers or {}).items()},
        )


def _backoff_delay(
    attempt: int,
    backoff_s: float,
    retry_after: Optional[str],
    rng: "random.Random",
) -> float:
    """One jittered exponential delay, floored by the server's hint."""
    base = min(backoff_s * (2 ** attempt), MAX_BACKOFF_S)
    if retry_after:
        try:
            base = max(base, min(float(retry_after), MAX_BACKOFF_S))
        except ValueError:
            pass
    # Full jitter on [base/2, base]: desynchronises a client storm
    # without ever collapsing the wait to ~zero.
    return base * (0.5 + 0.5 * rng.random())


def _retrying_request(
    method: str,
    url: str,
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 30.0,
    retries: int = 0,
    backoff_s: float = 0.25,
    rng: Optional["random.Random"] = None,
) -> Tuple[int, bytes, Dict[str, str]]:
    """`_request` with bounded retries on connection errors and 503.

    A connection-level failure (refused / reset / timed out — the
    signature of a server being SIGKILLed and restarted under the
    client) or a retryable status consumes one retry and backs off;
    anything else returns (or raises) immediately. With ``retries=0``
    this is exactly ``_request``.
    """
    rng = rng if rng is not None else random.Random()
    attempt = 0
    while True:
        try:
            status, body, headers = _request(
                method, url, payload, timeout=timeout
            )
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
            if attempt >= retries:
                raise
            time.sleep(_backoff_delay(attempt, backoff_s, None, rng))
            attempt += 1
            continue
        if status in RETRYABLE_STATUSES and attempt < retries:
            time.sleep(
                _backoff_delay(
                    attempt, backoff_s, headers.get("retry-after"), rng
                )
            )
            attempt += 1
            continue
        return status, body, headers


def _json_or_error(status: int, body: bytes, what: str) -> Dict[str, object]:
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RuntimeError(
            f"{what}: HTTP {status} with unparseable body {body[:200]!r}"
        ) from exc
    if status >= 400:
        raise RuntimeError(
            f"{what}: HTTP {status}: {decoded.get('error', decoded)}"
        )
    return decoded


def http_submit(
    base_url: str,
    payload: Dict[str, object],
    timeout: float = 30.0,
    retries: int = 0,
    backoff_s: float = 0.25,
) -> Dict[str, object]:
    """POST a campaign; returns the job status object (raises on 4xx/5xx).

    With ``retries > 0`` connection errors and 503s back off and
    retry; resubmission is safe because the service deduplicates
    active jobs on the campaign's content hash, so a retry after a
    crashed server recovers lands on the journaled job, never a
    duplicate.
    """
    status, body, _ = _retrying_request(
        "POST",
        f"{base_url}/jobs",
        payload,
        timeout=timeout,
        retries=retries,
        backoff_s=backoff_s,
    )
    return _json_or_error(status, body, "submit")


def http_wait(
    base_url: str,
    job_id: str,
    timeout: float = 60.0,
    poll_s: float = 0.05,
    retries: int = 0,
    backoff_s: float = 0.25,
) -> Dict[str, object]:
    """Poll ``GET /jobs/<id>`` until the job leaves queued/running.

    ``retries`` bounds back-to-back connection failures (a server
    restarting under the poll); the budget refills after any
    successful response.
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(f"job {job_id} still pending after {timeout}s")
        wait_s = min(max(remaining, 0.01), 10.0)
        status, body, _ = _retrying_request(
            "GET",
            f"{base_url}/jobs/{job_id}?wait={wait_s:g}",
            timeout=wait_s + 10.0,
            retries=retries,
            backoff_s=backoff_s,
        )
        job = _json_or_error(status, body, f"poll {job_id}")
        if job.get("status") not in ("queued", "running"):
            return job
        time.sleep(poll_s)


def http_results(
    base_url: str,
    job_id: str,
    timeout: float = 60.0,
    retries: int = 0,
    backoff_s: float = 0.25,
) -> List[Dict[str, object]]:
    """Fetch and parse a finished job's streamed JSONL result lines."""
    status, body, _ = _retrying_request(
        "GET",
        f"{base_url}/jobs/{job_id}/results",
        timeout=timeout,
        retries=retries,
        backoff_s=backoff_s,
    )
    if status >= 400:
        _json_or_error(status, body, f"results {job_id}")
    lines = [line for line in body.decode("utf-8").splitlines() if line]
    return [json.loads(line) for line in lines]


def http_cache_info(base_url: str, timeout: float = 30.0) -> Dict[str, object]:
    """Fetch the service's shared-cache info (``GET /cache``)."""
    status, body, _ = _request("GET", f"{base_url}/cache", timeout=timeout)
    return _json_or_error(status, body, "cache info")


def http_health(
    base_url: str, timeout: float = 10.0, retries: int = 0
) -> Dict[str, object]:
    """``GET /healthz``."""
    status, body, _ = _retrying_request(
        "GET", f"{base_url}/healthz", timeout=timeout, retries=retries
    )
    return _json_or_error(status, body, "health")


def http_metrics(base_url: str, timeout: float = 10.0) -> str:
    """``GET /metrics`` — the Prometheus text document."""
    status, body, _ = _request("GET", f"{base_url}/metrics", timeout=timeout)
    if status >= 400:
        raise RuntimeError(f"metrics: HTTP {status}: {body[:200]!r}")
    return body.decode("utf-8")
