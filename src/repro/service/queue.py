"""Bounded job queue + worker pool for the campaign service.

Jobs move ``queued → running → done`` (or ``failed`` / ``cancelled``).
The queue is bounded: once ``queued + running`` reaches capacity, new
submissions are refused with :class:`~repro.errors.QueueFullError`
(the HTTP layer maps that to 503) — backpressure instead of unbounded
memory growth under a client storm.

Identical campaigns (equal :meth:`Campaign.signature`) are
*singleflighted*: a per-signature lock serialises their execution, so
when N clients submit the same grid at once, one job computes and the
rest replay almost entirely from the shared cache. That is what bounds
duplicate computation in the stress suite — without it, N workers
would race each task's compute-then-put window.

Each job executes under three scopes:

* :func:`repro.analysis.telemetry.job_scope` — its grid reports carry
  the job id;
* :func:`repro.analysis.telemetry.collected` — per-job telemetry
  summary without scanning shared history;
* :func:`repro.analysis.engine.cancel_scope` — ``DELETE /jobs/<id>``
  trips the event and the engine aborts between waves.
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import telemetry
from ..analysis.engine import cancel_scope
from ..errors import JobCancelledError, QueueFullError
from .protocol import Campaign, execute_campaign, parse_campaign, summarize_reports

__all__ = ["Job", "CampaignQueue"]

#: Terminal job states — ``done_event`` is set exactly when one is reached.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted campaign and everything the service knows about it."""

    id: str
    campaign: Campaign
    signature: str
    status: str = "queued"
    error: str = ""
    created_at: float = field(default_factory=time.time)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Streamed JSONL result lines (set when status == "done").
    result_lines: List[str] = field(default_factory=list)
    #: Campaign-level summary from :func:`execute_campaign`.
    summary: Dict[str, object] = field(default_factory=dict)
    #: Aggregated per-job run telemetry (computed / cache_hits / ...).
    telemetry: Dict[str, object] = field(default_factory=dict)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` status document."""
        out: Dict[str, object] = {
            "id": self.id,
            "kind": self.campaign.kind,
            "engine": self.campaign.engine,
            "n_tasks": self.campaign.n_tasks,
            "signature": self.signature,
            "status": self.status,
            "created_at": self.created_at,
        }
        if self.started_at:
            out["started_at"] = self.started_at
        if self.finished_at:
            out["finished_at"] = self.finished_at
            out["wall_s"] = self.finished_at - max(
                self.started_at, self.created_at
            )
        if self.error:
            out["error"] = self.error
        if self.telemetry:
            out["telemetry"] = self.telemetry
        if self.summary:
            out["summary"] = self.summary
        if self.status == "done":
            out["result_lines"] = len(self.result_lines)
        return out


class CampaignQueue:
    """Bounded FIFO of campaign jobs drained by daemon worker threads."""

    def __init__(self, capacity: int = 64, workers: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.capacity = int(capacity)
        self._pending: "_queue.Queue[Optional[Job]]" = _queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._flights: Dict[str, threading.Lock] = {}
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"campaign-worker-{i}",
                daemon=True,
            )
            for i in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # -- submission / lookup ---------------------------------------------------

    def submit(self, payload: object) -> Job:
        """Parse, admit and enqueue a campaign; returns the queued job.

        Raises :class:`~repro.errors.ConfigurationError` for malformed
        payloads and :class:`~repro.errors.QueueFullError` when the
        queue has no room (neither creates a job record).
        """
        campaign = parse_campaign(payload)
        with self._lock:
            if self._closed:
                raise QueueFullError("campaign queue is shut down")
            active = sum(
                1
                for job in self._jobs.values()
                if job.status in ("queued", "running")
            )
            if active >= self.capacity:
                raise QueueFullError(
                    f"campaign queue at capacity ({self.capacity} active jobs)"
                )
            job = Job(
                id=f"job-{next(self._ids):06d}",
                campaign=campaign,
                signature=campaign.signature(),
            )
            self._jobs[job.id] = job
        self._pending.put(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All known jobs, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; a still-queued job is cancelled at once."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.status == "queued":
                job.status = "cancelled"
                job.finished_at = time.time()
                job.done_event.set()
        return job

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop accepting work and join the worker threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._pending.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout_s)

    # -- execution -------------------------------------------------------------

    def _flight_lock(self, signature: str) -> threading.Lock:
        with self._lock:
            lock = self._flights.get(signature)
            if lock is None:
                lock = self._flights[signature] = threading.Lock()
            return lock

    def _worker_loop(self) -> None:
        while True:
            job = self._pending.get()
            if job is None:
                return
            # cancel() may have finished the job while it sat queued.
            if job.done_event.is_set():
                continue
            with self._lock:
                job.status = "running"
                job.started_at = time.time()
            try:
                with self._flight_lock(job.signature):
                    self._execute(job)
            except BaseException:  # pragma: no cover - worker must survive
                with self._lock:
                    job.status = "failed"
                    job.error = traceback.format_exc(limit=3)
                    job.finished_at = time.time()
                job.done_event.set()

    def _execute(self, job: Job) -> None:
        reports: List[telemetry.RunReport] = []
        try:
            with telemetry.job_scope(job.id):
                with telemetry.collected() as reports:
                    lines, summary = execute_campaign(
                        job.campaign, cancel_event=job.cancel_event
                    )
            status, error = "done", ""
        except JobCancelledError:
            lines, summary = [], {}
            status, error = "cancelled", ""
        except Exception as exc:
            lines, summary = [], {}
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            job.result_lines = lines
            job.summary = summary
            job.telemetry = summarize_reports(reports)
            job.status = status
            job.error = error
            job.finished_at = time.time()
        job.done_event.set()
