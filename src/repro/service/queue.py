"""Bounded job queue + worker pool for the campaign service.

Jobs move ``queued → running → done`` (or ``failed`` / ``cancelled``,
or back to ``requeued`` when a drain interrupts them). The queue is
bounded: once ``queued + running`` reaches capacity, new submissions
are refused with :class:`~repro.errors.QueueFullError` (the HTTP
layer maps that to 503 + ``Retry-After``) — backpressure instead of
unbounded memory growth under a client storm.

Identical campaigns (equal :meth:`Campaign.signature`) are
*singleflighted*: a per-signature lock serialises their execution, so
when N clients submit the same grid at once, one job computes and the
rest replay almost entirely from the shared cache. The same content
hash doubles as an **idempotency key** across restarts: submitting a
campaign whose signature matches a still-active *recovered* job
returns that job instead of creating a duplicate — which is what lets
a client that lost its connection to a crashed server resubmit
blindly and land on the journal-replayed job. (Fresh identical
submissions still get their own job records; the flight lock alone
bounds their duplicate computation.)

Durability comes from an optional write-ahead
:class:`~repro.service.journal.JobJournal`: every commit point
(``submitted`` / ``started`` / ``cancelled`` / ``finished`` /
``requeued``) is fsync-ed to the journal before it is acknowledged,
and a queue constructed over an existing journal **replays** it —
jobs whose last event is non-terminal are re-created under their
original ids and re-enqueued, so a SIGKILL-ed server restarted on the
same journal + cache directories finishes every job it had accepted.

Graceful shutdown is :meth:`CampaignQueue.drain`: stop admitting,
let running jobs finish up to a deadline, cancel-and-requeue the
overrun, sweep still-queued jobs into ``requeued`` journal records,
then :meth:`close` — which cancels any stragglers through the
engine's thread-local ``cancel_scope`` and actually joins the worker
threads instead of abandoning them.

Each job executes under three scopes:

* :func:`repro.analysis.telemetry.job_scope` — its grid reports carry
  the job id;
* :func:`repro.analysis.telemetry.collected` — per-job telemetry
  summary without scanning shared history;
* :func:`repro.analysis.engine.cancel_scope` — ``DELETE /jobs/<id>``
  trips the event and the engine aborts between waves.
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import telemetry
from ..errors import (
    ConfigurationError,
    JobCancelledError,
    QueueFullError,
    ServiceDrainingError,
)
from ..obs.metrics import MetricsRegistry
from .journal import JobJournal
from .protocol import Campaign, execute_campaign, parse_campaign, summarize_reports

__all__ = ["Job", "CampaignQueue", "TERMINAL_STATES", "ACTIVE_STATES"]

#: Terminal job states — ``done_event`` is set exactly when one is reached.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: States that count against queue capacity.
ACTIVE_STATES = ("queued", "running")

#: Every state a job status document may carry.
JOB_STATES = ("queued", "running", "requeued", "done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted campaign and everything the service knows about it."""

    id: str
    campaign: Campaign
    signature: str
    status: str = "queued"
    error: str = ""
    created_at: float = field(default_factory=time.time)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: True when this job was rebuilt from the journal at startup.
    recovered: bool = False
    #: Set while draining so a cancel requeues instead of cancelling.
    requeue_on_cancel: bool = False
    #: Streamed JSONL result lines (set when status == "done").
    result_lines: List[str] = field(default_factory=list)
    #: Campaign-level summary from :func:`execute_campaign`.
    summary: Dict[str, object] = field(default_factory=dict)
    #: Aggregated per-job run telemetry (computed / cache_hits / ...).
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Memoised canonical run-table CSV (built on first request; the
    #: bytes are a pure function of the campaign + result payloads, so
    #: caching them is safe and keeps streaming overhead low).
    runtable_csv: Optional[bytes] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` status document."""
        out: Dict[str, object] = {
            "id": self.id,
            "kind": self.campaign.kind,
            "engine": self.campaign.engine,
            "n_tasks": self.campaign.n_tasks,
            "signature": self.signature,
            "status": self.status,
            "created_at": self.created_at,
        }
        if self.recovered:
            out["recovered"] = True
        if self.started_at:
            out["started_at"] = self.started_at
        if self.finished_at:
            out["finished_at"] = self.finished_at
            out["wall_s"] = self.finished_at - max(
                self.started_at, self.created_at
            )
        if self.error:
            out["error"] = self.error
        if self.telemetry:
            out["telemetry"] = self.telemetry
        if self.summary:
            out["summary"] = self.summary
        if self.status == "done":
            out["result_lines"] = len(self.result_lines)
        return out


class CampaignQueue:
    """Bounded FIFO of campaign jobs drained by joinable worker threads."""

    def __init__(
        self,
        capacity: int = 64,
        workers: int = 2,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.capacity = int(capacity)
        self.journal = journal
        self.metrics = MetricsRegistry()
        self._pending: "_queue.Queue[Optional[Job]]" = _queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._flights: Dict[str, threading.Lock] = {}
        self._closed = False
        self._joined = False
        self._draining = False
        recovered, max_ordinal = self._recover()
        self._ids = itertools.count(max_ordinal + 1)
        for job in recovered:
            self._pending.put(job)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"campaign-worker-{i}",
                daemon=True,
            )
            for i in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> Tuple[List[Job], int]:
        """Replay the journal into re-enqueueable jobs (original ids).

        A pending record whose payload no longer parses (schema drift,
        hand-edited journal) is retired with a ``finished``/``failed``
        record so it cannot replay forever — the serving-layer analog
        of the restore chain giving up on an unrecoverable checkpoint.
        """
        if self.journal is None:
            return [], 0
        records, max_ordinal = self.journal.replay()
        jobs: List[Job] = []
        for record in records:
            job_id = str(record["job"])
            try:
                campaign = parse_campaign(record["payload"])
            except ConfigurationError as exc:
                self.journal.stats.recover_failed += 1
                self.journal.append(
                    "finished",
                    job_id,
                    status="failed",
                    error=f"unrecoverable journal payload: {exc}",
                )
                continue
            job = Job(
                id=job_id,
                campaign=campaign,
                signature=campaign.signature(),
                recovered=True,
            )
            self._jobs[job.id] = job
            jobs.append(job)
            self.journal.stats.recovered += 1
            self.journal.append("requeued", job.id)
        return jobs, max_ordinal

    # -- submission / lookup ---------------------------------------------------

    def submit(self, payload: object) -> Tuple[Job, bool]:
        """Parse, admit and enqueue a campaign.

        Returns ``(job, created)``: when a still-active *recovered*
        job carries the same content signature, that job is returned
        with ``created=False`` — idempotent resubmission after a crash
        — and nothing is enqueued. Raises
        :class:`~repro.errors.ConfigurationError` for malformed
        payloads, :class:`~repro.errors.ServiceDrainingError` while
        draining, and :class:`~repro.errors.QueueFullError` when the
        queue has no room (none of which create a job record).
        """
        campaign = parse_campaign(payload)
        signature = campaign.signature()
        with self._lock:
            if self._draining:
                raise ServiceDrainingError(
                    "campaign queue is draining for shutdown"
                )
            if self._closed:
                raise QueueFullError("campaign queue is shut down")
            for existing in self._jobs.values():
                if (
                    existing.recovered
                    and existing.signature == signature
                    and existing.status in ACTIVE_STATES
                ):
                    return existing, False
            active = sum(
                1
                for job in self._jobs.values()
                if job.status in ACTIVE_STATES
            )
            if active >= self.capacity:
                raise QueueFullError(
                    f"campaign queue at capacity ({self.capacity} active jobs)"
                )
            job = Job(
                id=f"job-{next(self._ids):06d}",
                campaign=campaign,
                signature=signature,
            )
            self._jobs[job.id] = job
        # Journal *before* enqueueing: a crash between the append and
        # the put loses only in-memory state the replay rebuilds.
        if self.journal is not None:
            self.journal.append(
                "submitted",
                job.id,
                signature=signature,
                payload=campaign.payload,
            )
        self._pending.put(job)
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All known jobs, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def counts(self) -> Dict[str, int]:
        """Job tallies by state (every state present, zero or not)."""
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            out[job.status] = out.get(job.status, 0) + 1
        return out

    @property
    def draining(self) -> bool:
        return self._draining

    def metrics_snapshot(self) -> MetricsRegistry:
        """A merged copy of the queue's accumulated metrics."""
        snapshot = MetricsRegistry()
        with self._lock:
            snapshot.merge(self.metrics)
        return snapshot

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; a still-queued job is cancelled at once."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.status == "queued":
                job.status = "cancelled"
                job.finished_at = time.time()
                job.done_event.set()
                if self.journal is not None:
                    self.journal.append("cancelled", job.id)
        return job

    # -- drain / shutdown ------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> Dict[str, int]:
        """Graceful shutdown: finish what's running, requeue the rest.

        Flips the queue into draining mode (submissions refused with
        :class:`~repro.errors.ServiceDrainingError`), lets running
        jobs finish until ``timeout_s`` elapses, then cancels the
        overrun through their cancel scopes so they are journaled as
        ``requeued`` instead of lost. Still-queued jobs are swept to
        ``requeued`` by the workers on their way down, and the worker
        threads are joined. Returns the final job tallies.
        """
        with self._lock:
            first = not self._draining
            self._draining = True
        if first:
            deadline = time.monotonic() + max(float(timeout_s), 0.0)
            while time.monotonic() < deadline:
                running = [
                    job for job in self.jobs() if job.status == "running"
                ]
                if not running:
                    break
                running[0].done_event.wait(
                    min(0.05, max(deadline - time.monotonic(), 0.0))
                )
            with self._lock:
                overrun = [
                    job
                    for job in self._jobs.values()
                    if job.status == "running"
                ]
                for job in overrun:
                    job.requeue_on_cancel = True
                    job.cancel_event.set()
        self.close(cancel_running=False)
        return self.counts()

    def close(
        self, timeout_s: float = 10.0, cancel_running: bool = True
    ) -> List[str]:
        """Stop accepting work, cancel running jobs, join the workers.

        Returns the names of any worker threads that survived the join
        timeout (the stress suite asserts this is empty). Safe to call
        more than once; only the first call enqueues sentinels.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
            running = [
                job for job in self._jobs.values() if job.status == "running"
            ]
        if cancel_running:
            for job in running:
                job.cancel_event.set()
        if first:
            for _ in self._workers:
                self._pending.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout_s)
        leaked = [
            worker.name for worker in self._workers if worker.is_alive()
        ]
        if not leaked and not self._joined:
            self._joined = True
            if self.journal is not None:
                self.journal.close()
        return leaked

    # -- execution -------------------------------------------------------------

    def _flight_lock(self, signature: str) -> threading.Lock:
        with self._lock:
            lock = self._flights.get(signature)
            if lock is None:
                lock = self._flights[signature] = threading.Lock()
            return lock

    def _worker_loop(self) -> None:
        while True:
            job = self._pending.get()
            if job is None:
                return
            # cancel() may have finished the job while it sat queued.
            if job.done_event.is_set():
                continue
            with self._lock:
                if self._draining:
                    # Draining: never start new work; sweep the queued
                    # job into a durable requeued record instead.
                    if job.status == "queued":
                        job.status = "requeued"
                        if self.journal is not None:
                            self.journal.append("requeued", job.id)
                    continue
                if self._closed:
                    # Abrupt close (no drain): cancel instead of
                    # executing, so the join is prompt and bounded.
                    if job.status == "queued":
                        job.status = "cancelled"
                        job.finished_at = time.time()
                        if self.journal is not None:
                            self.journal.append("cancelled", job.id)
                        job.done_event.set()
                    continue
                job.status = "running"
                job.started_at = time.time()
            if self.journal is not None:
                self.journal.append("started", job.id)
            try:
                with self._flight_lock(job.signature):
                    self._execute(job)
            except BaseException:  # pragma: no cover - worker must survive
                with self._lock:
                    job.status = "failed"
                    job.error = traceback.format_exc(limit=3)
                    job.finished_at = time.time()
                self._finalize(job, "failed")
                job.done_event.set()

    def _execute(self, job: Job) -> None:
        reports: List[telemetry.RunReport] = []
        try:
            with telemetry.job_scope(job.id):
                with telemetry.collected() as reports:
                    lines, summary = execute_campaign(
                        job.campaign, cancel_event=job.cancel_event
                    )
            status, error = "done", ""
        except JobCancelledError:
            lines, summary = [], {}
            status, error = "cancelled", ""
        except Exception as exc:
            lines, summary = [], {}
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
        if status == "cancelled" and job.requeue_on_cancel:
            # Drain interrupted this job: put it back on the durable
            # queue (requeued), not into a terminal state, so the
            # restarted server picks it up.
            with self._lock:
                job.status = "requeued"
                job.started_at = 0.0
                job.telemetry = summarize_reports(reports)
            self._finalize(job, "requeued")
            return
        with self._lock:
            job.result_lines = lines
            job.summary = summary
            job.telemetry = summarize_reports(reports)
            job.status = status
            job.error = error
            job.finished_at = time.time()
            self.metrics.inc(f"service.jobs_finished.{status}")
            for key, value in job.telemetry.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    self.metrics.inc(f"engine.{key}", value)
            for report in reports:
                if report.device_metrics:
                    self.metrics.merge_dict(report.device_metrics)
        self._finalize(job, status)
        job.done_event.set()

    def _finalize(self, job: Job, status: str) -> None:
        """Durably record a job's exit from the running state."""
        if self.journal is None:
            return
        if status == "requeued":
            self.journal.append("requeued", job.id)
        elif status == "cancelled":
            self.journal.append("cancelled", job.id)
        else:
            fields: Dict[str, object] = {"status": status}
            if job.error:
                fields["error"] = job.error[:500]
            self.journal.append("finished", job.id, **fields)
