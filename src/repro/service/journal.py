"""Write-ahead job journal: the campaign service's crash-survival log.

The paper's device survives arbitrary power failure because every
commit point is journaled to NVM and restored through a guarded
fallback chain; this module applies the identical discipline to the
serving layer. Every job state transition the service must not forget
— ``submitted``, ``started``, ``requeued``, ``cancelled``,
``finished`` — is appended to a single JSONL file and flushed
*before* the transition is acknowledged, so a SIGKILL at any instant
loses at most the record being written. Records that back an
external promise (:data:`FSYNC_EVENTS`) are additionally group-
``fsync``-ed to survive power loss; the rest become durable at the
next group fsync, trading at worst one idempotent re-run for keeping
the worker pool off the platter.

Each line carries its own integrity guard, exactly like the device
checkpoints (CRC-8 guard words) and the result cache (quarantine on
corrupt entries)::

    <crc32 as 8 hex chars> <compact sorted-key JSON>\\n

Replay at startup is the guarded fallback chain: lines whose CRC or
JSON fails are *skipped and counted* — a torn final line (the one the
power cut interrupted) as ``skipped_torn``, anything else as
``skipped_corrupt`` — and every job whose last surviving event is
non-terminal is handed back to the queue for re-execution. Because
campaign results are content-addressed in the shared cache, re-running
a recovered job is idempotent: it replays from cache where possible
and recomputes bit-identical bytes where not.

The journal is single-writer by design: one service process owns one
journal file (appends from multiple worker threads are serialised by
an internal lock). A restarted server keeps appending to the same
file; replay folds the whole history, so terminal records written
before the crash keep their jobs from re-running.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "JOURNAL_EVENTS",
    "PENDING_EVENTS",
    "TERMINAL_EVENTS",
    "FSYNC_EVENTS",
    "DEFAULT_SYNC_WINDOW_S",
    "JournalStats",
    "JobJournal",
    "encode_record",
    "decode_record",
]

#: Every event kind the journal accepts, in lifecycle order.
JOURNAL_EVENTS = ("submitted", "started", "requeued", "cancelled", "finished")

#: A job whose *last* event is one of these is re-enqueued at replay.
PENDING_EVENTS = ("submitted", "started", "requeued")

#: A job whose last event is one of these stays dead at replay.
TERMINAL_EVENTS = ("cancelled", "finished")

#: Events that demand platter durability — the records that back a
#: promise made to the outside world: the 202 admission ack
#: (``submitted``), the cancellation ack (``cancelled``) and the
#: drain's nothing-was-dropped guarantee (``requeued``). ``started``
#: and ``finished`` are deliberately absent: losing one only re-runs
#: an idempotent job whose results already live in the
#: content-addressed cache — a few milliseconds of cache replay, not
#: data loss — so they ride along with the next fsync instead of
#: forcing their own. Keeping them off the fsync path keeps the
#: worker pool's throughput at the journal-less rate.
FSYNC_EVENTS = ("submitted", "requeued", "cancelled")

#: Default group-commit window: how long a promise-backing record may
#: wait for the background syncer before it is on the platter. Zero
#: selects strict synchronous mode (every :data:`FSYNC_EVENTS` append
#: blocks on its own group fsync).
DEFAULT_SYNC_WINDOW_S = 0.05

_JOB_ID_RE = re.compile(r"^job-(\d+)$")


def encode_record(record: Dict[str, object]) -> bytes:
    """One journal line: CRC32 guard + compact sorted-key JSON + newline."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def decode_record(line: bytes) -> Dict[str, object]:
    """Parse one journal line; raises ``ValueError`` on any damage.

    The guard is checked *before* the JSON is parsed, so a flipped bit
    anywhere in the payload is caught even when the mutation still
    happens to be valid JSON.
    """
    if len(line) < 10 or line[8:9] != b" ":
        raise ValueError("malformed journal line (no CRC prefix)")
    try:
        crc = int(line[:8], 16)
    except ValueError:
        raise ValueError("malformed journal line (bad CRC field)") from None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ValueError("journal line failed its CRC guard")
    record = json.loads(payload.decode("utf-8"))
    if (
        not isinstance(record, dict)
        or record.get("event") not in JOURNAL_EVENTS
        or not isinstance(record.get("job"), str)
    ):
        raise ValueError("journal line is not a job record")
    return record


@dataclass
class JournalStats:
    """Replay and append accounting, surfaced by ``/healthz`` and
    ``/metrics`` exactly like the cache's quarantine counters."""

    #: Valid records folded during startup replay.
    replayed: int = 0
    #: Records appended by this process since startup.
    appended: int = 0
    #: Jobs re-enqueued at startup (last event non-terminal).
    recovered: int = 0
    #: Jobs whose journal history had already reached a terminal event.
    completed: int = 0
    #: Torn final line skipped at replay (the interrupted write).
    skipped_torn: int = 0
    #: Any other line that failed its CRC / JSON / schema guard.
    skipped_corrupt: int = 0
    #: Pending jobs that could not be re-enqueued (payload no longer
    #: parses, or the submission record itself was lost to corruption).
    recover_failed: int = 0
    #: Group fsyncs performed (each may cover many appended records).
    synced: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(asdict(self))


class JobJournal:
    """Append-only, CRC-guarded, group-committed JSONL job journal.

    Durability modes (``fsync`` / ``sync_window_s``):

    * ``fsync=True, sync_window_s > 0`` (default) — **windowed group
      commit**: every append is flushed before it returns (a SIGKILL
      loses at most the record being written), and a background
      syncer thread fsyncs at most once per window, so *power* loss
      can cost at most the last window's records. Promise-backing
      records are idempotently resubmittable (content-hash dedup), so
      the window is a bounded, documented tradeoff — not silent loss.
    * ``fsync=True, sync_window_s=0`` — **strict**: every
      :data:`FSYNC_EVENTS` append blocks until a group fsync covers
      it (concurrent appenders share one platter round-trip).
    * ``fsync=False`` — flush-only (tests, throwaway journals).
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        fsync: bool = True,
        sync_window_s: float = DEFAULT_SYNC_WINDOW_S,
    ) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ConfigurationError(
                f"journal path {self.path} is a directory"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.sync_window_s = max(0.0, float(sync_window_s))
        self.stats = JournalStats()
        self._lock = threading.Lock()
        self._handle = open(self.path, "ab")
        # Group commit: appenders note the write sequence they need
        # durable; whoever performs an fsync syncs everything written
        # so far, covering every record behind it.
        self._fsync_lock = threading.Lock()
        self._written_seq = 0
        self._synced_seq = 0
        self._sync_needed = threading.Event()
        self._stop = threading.Event()
        self._syncer: Union[threading.Thread, None] = None
        if self.fsync and self.sync_window_s > 0:
            self._syncer = threading.Thread(
                target=self._sync_loop, name="journal-sync", daemon=True
            )
            self._syncer.start()

    # -- writing ---------------------------------------------------------------

    def append(self, event: str, job_id: str, **fields: object) -> None:
        """Record one job transition (a commit point).

        The line is written and flushed before this returns — a
        SIGKILL at any later instant cannot lose it. Events in
        :data:`FSYNC_EVENTS` additionally reach the platter: within
        :attr:`sync_window_s` via the background syncer (default), or
        before this returns in strict mode (``sync_window_s=0``).
        Either way the fsync is a **group commit** — one platter
        round-trip covers every record written before it. A closed
        journal ignores appends — shutdown races between worker
        threads and ``close()`` must not raise.
        """
        if event not in JOURNAL_EVENTS:
            raise ConfigurationError(
                f"journal event must be one of {JOURNAL_EVENTS}, "
                f"got {event!r}"
            )
        record: Dict[str, object] = {
            "event": event,
            "job": str(job_id),
            "ts": round(time.time(), 6),
        }
        record.update(fields)
        line = encode_record(record)
        with self._lock:
            if self._handle is None or self._handle.closed:
                return
            self._handle.write(line)
            self._handle.flush()
            self.stats.appended += 1
            self._written_seq += 1
            my_seq = self._written_seq
        if not self.fsync or event not in FSYNC_EVENTS:
            return
        if self._syncer is not None:
            self._sync_needed.set()
            return
        # Strict mode: wait for a group fsync that covers this record.
        with self._fsync_lock:
            if self._synced_seq >= my_seq:
                return  # a later appender's fsync already covered us
            self._fsync_once()

    def _fsync_once(self) -> None:
        """One group fsync (caller holds ``_fsync_lock``)."""
        with self._lock:
            if self._handle is None or self._handle.closed:
                return
            fileno = self._handle.fileno()
            target = self._written_seq
        try:
            os.fsync(fileno)
        except OSError:  # closed under us mid-shutdown
            return
        self._synced_seq = max(self._synced_seq, target)
        self.stats.synced += 1

    def _sync_loop(self) -> None:
        """Background group commit: at most one fsync per window."""
        while True:
            self._sync_needed.wait()
            if self._stop.is_set():
                return
            self._sync_needed.clear()
            with self._fsync_lock:
                self._fsync_once()
            # Rate limit: whatever lands during this wait shares the
            # next fsync instead of forcing its own.
            if self._stop.wait(self.sync_window_s):
                return

    def close(self) -> None:
        """Make every flushed record durable, then close the file."""
        if self._syncer is not None:
            self._stop.set()
            self._sync_needed.set()  # wake a waiting sync loop
            self._syncer.join(timeout=5.0)
            self._syncer = None
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                if self.fsync:
                    try:
                        os.fsync(self._handle.fileno())
                    except OSError:  # pragma: no cover - exotic fs
                        pass
                self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- replay ----------------------------------------------------------------

    def replay(self) -> Tuple[List[Dict[str, object]], int]:
        """Fold the journal into its pending jobs.

        Returns ``(pending, max_ordinal)``: the submission records of
        every job whose last surviving event is non-terminal (in
        submission order, each carrying the original ``payload`` and
        ``signature``), and the highest numeric job ordinal seen
        anywhere in the journal so a restarted queue never reuses an
        id. Damaged lines are skipped and counted in :attr:`stats`;
        non-terminal events whose submission record was itself lost
        count as ``recover_failed`` — the fallback chain ran out, the
        same way a checkpoint with no valid predecessor does.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0
        if not blob:
            return [], 0
        torn_tail = not blob.endswith(b"\n")
        lines = blob.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        pending: Dict[str, Dict[str, object]] = {}
        orphaned: set = set()
        terminal: set = set()
        max_ordinal = 0
        for i, line in enumerate(lines):
            if not line:
                self.stats.skipped_corrupt += 1
                continue
            try:
                record = decode_record(line)
            except ValueError:
                if torn_tail and i == len(lines) - 1:
                    self.stats.skipped_torn += 1
                else:
                    self.stats.skipped_corrupt += 1
                continue
            self.stats.replayed += 1
            job_id = str(record["job"])
            match = _JOB_ID_RE.match(job_id)
            if match:
                max_ordinal = max(max_ordinal, int(match.group(1)))
            event = record["event"]
            if event == "submitted":
                if job_id not in terminal:
                    pending[job_id] = record
                orphaned.discard(job_id)
            elif event in TERMINAL_EVENTS:
                pending.pop(job_id, None)
                orphaned.discard(job_id)
                if job_id not in terminal:
                    terminal.add(job_id)
                    self.stats.completed += 1
            else:  # started / requeued keep the job pending
                if job_id not in pending and job_id not in terminal:
                    # Non-terminal event but the submission record is
                    # gone (skipped as corrupt): unrecoverable.
                    orphaned.add(job_id)
        self.stats.recover_failed += len(orphaned)
        out: List[Dict[str, object]] = []
        for job_id, record in pending.items():
            if not isinstance(record.get("payload"), dict) or not isinstance(
                record.get("signature"), str
            ):
                self.stats.recover_failed += 1
                continue
            out.append(record)
        out.sort(key=lambda record: str(record["job"]))
        return out, max_ordinal
