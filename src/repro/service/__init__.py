"""Campaign service: simulation-as-a-service over HTTP.

The long-running front end of the experiment engine (ROADMAP item 1):
an asyncio HTTP server accepts grid / executive / resilience / fleet
campaign submissions as JSON, enqueues them on a bounded job queue,
executes them through the existing robust engine on a worker pool —
many concurrent clients sharing one sharded, hot-tiered result cache —
and streams status plus JSONL results back.

* :mod:`repro.service.protocol` — campaign parsing/validation, the
  result-line encoding (byte-identical to the on-disk cache entries by
  construction), and a stdlib HTTP client;
* :mod:`repro.service.journal` — the write-ahead job journal
  (CRC-guarded JSONL, fsync on commit points) that makes the queue
  crash-recoverable;
* :mod:`repro.service.queue` — the bounded job queue, worker threads,
  per-campaign singleflight, idempotent resubmission, cancellation
  and graceful drain;
* :mod:`repro.service.app` — the hand-rolled asyncio HTTP server and
  the in-thread service handle used by tests, benchmarks and the CLI.
"""

from __future__ import annotations

from .app import CampaignService, ServiceHandle, create_service, start_in_thread
from .journal import JobJournal, JournalStats
from .protocol import (
    Campaign,
    execute_campaign,
    http_cache_info,
    http_health,
    http_metrics,
    http_results,
    http_submit,
    http_wait,
    parse_campaign,
)
from .queue import CampaignQueue, Job

__all__ = [
    "Campaign",
    "CampaignQueue",
    "CampaignService",
    "Job",
    "JobJournal",
    "JournalStats",
    "ServiceHandle",
    "create_service",
    "execute_campaign",
    "http_cache_info",
    "http_health",
    "http_metrics",
    "http_results",
    "http_submit",
    "http_wait",
    "parse_campaign",
    "start_in_thread",
]
