"""Campaign service: simulation-as-a-service over HTTP.

The long-running front end of the experiment engine (ROADMAP item 1):
an asyncio HTTP server accepts grid / executive / resilience / fleet
campaign submissions as JSON, enqueues them on a bounded job queue,
executes them through the existing robust engine on a worker pool —
many concurrent clients sharing one sharded, hot-tiered result cache —
and streams status plus JSONL results back.

* :mod:`repro.service.protocol` — campaign parsing/validation, the
  result-line encoding (byte-identical to the on-disk cache entries by
  construction), and a stdlib HTTP client;
* :mod:`repro.service.queue` — the bounded job queue, worker threads,
  per-campaign singleflight and cancellation;
* :mod:`repro.service.app` — the hand-rolled asyncio HTTP server and
  the in-thread service handle used by tests, benchmarks and the CLI.
"""

from __future__ import annotations

from .app import CampaignService, ServiceHandle, create_service, start_in_thread
from .protocol import (
    Campaign,
    execute_campaign,
    http_cache_info,
    http_health,
    http_results,
    http_submit,
    http_wait,
    parse_campaign,
)
from .queue import CampaignQueue, Job

__all__ = [
    "Campaign",
    "CampaignQueue",
    "CampaignService",
    "Job",
    "ServiceHandle",
    "create_service",
    "execute_campaign",
    "http_cache_info",
    "http_health",
    "http_results",
    "http_submit",
    "http_wait",
    "parse_campaign",
    "start_in_thread",
]
