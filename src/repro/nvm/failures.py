"""Retention-failure model: bit decay during power outages (Figure 22).

A bit backed up with shaped retention time ``T`` is only guaranteed to
survive outages shorter than ``T``. When the power outage that follows
a backup lasts ``d > T`` ticks, the bit has decayed past its guaranteed
window: we count a *retention failure* for that bit, and on restore the
stored value of that bit is randomised (a decayed magnetic cell reads
back either polarity, so it flips with probability one half).

The randomisation is *seeded, not free-running*: every decayed-bit draw
comes from a PCG64 stream derived solely from the model's ``seed``
argument, so the same seed replays the same corruption bit for bit.
The executive quality replay relies on this — each frame's model is
seeded ``seed + 7919 * (frame_id + 1)``
(``repro.core.executive._FAILURE_SEED_STRIDE``), making the corruption
of any frame a pure function of ``(frame_id, seed)``, independent of
which other frames were scored before it. That purity is what lets
frame scores be memoized and replayed from the result cache.
``tests/test_nvm_failures.py`` pins the guarantee.

Figure 22 of the paper reports 15-1200 retention-failure counts per
bit, varying with policy and power profile; Figures 23-24 show that the
resulting quality impact stays within the tolerance of approximable
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range, check_probability
from ..errors import NVMError
from .retention import RetentionPolicy

__all__ = ["RetentionFailureModel", "FailureCounts", "count_retention_failures"]


@dataclass(frozen=True)
class FailureCounts:
    """Per-bit retention-failure counts (index 0 = LSB).

    ``seed`` records the subsampling seed the counts were produced
    with (``None`` when every outage was counted and no randomness was
    involved), so a Figure 22 row can be reproduced from its counts
    object alone.
    """

    policy_name: str
    per_bit: Tuple[int, ...]
    seed: Optional[int] = None

    @property
    def total(self) -> int:
        """Total failures across all bits."""
        return int(sum(self.per_bit))

    def for_bit(self, bit_index: int) -> int:
        """Failure count of bit ``bit_index`` (1 = LSB)."""
        bit = check_int_in_range(bit_index, "bit_index", 1, len(self.per_bit), exc=NVMError)
        return self.per_bit[bit - 1]


class RetentionFailureModel:
    """Decides which backed-up bits decay across each outage.

    Parameters
    ----------
    policy:
        The retention-shaping policy the backup was written with.
    decay_flip_probability:
        Probability that a bit *whose retention expired* reads back
        flipped. Physically a fully decayed cell is random (0.5); a
        value below 0.5 models cells that only partially lose margin.
    seed:
        Seed for the decay randomness. The decay stream is a pure
        function of this value: two models built with the same seed
        corrupt identical inputs identically, which is what makes the
        per-frame corruption of the executive replay reproducible
        from ``(frame_id, seed)`` alone.
    """

    def __init__(
        self,
        policy: RetentionPolicy,
        decay_flip_probability: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not isinstance(policy, RetentionPolicy):
            raise NVMError("policy must be a RetentionPolicy instance")
        self.policy = policy
        self.decay_flip_probability = check_probability(
            decay_flip_probability, "decay_flip_probability", exc=NVMError
        )
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._retention_ticks = policy.retention_profile_ticks()

    @property
    def word_bits(self) -> int:
        """Word width of the protected data."""
        return self.policy.word_bits

    def expired_bits(self, outage_ticks: int) -> np.ndarray:
        """Boolean mask (LSB first) of bits whose retention expired."""
        outage = check_int_in_range(outage_ticks, "outage_ticks", 0, exc=NVMError)
        return self._retention_ticks < float(outage)

    def violation_count(self, outage_ticks: int) -> int:
        """Number of bit positions violated by one outage of this length."""
        return int(np.count_nonzero(self.expired_bits(outage_ticks)))

    def corrupt_words(self, words: np.ndarray, outage_ticks: int) -> np.ndarray:
        """Return ``words`` after decay across an ``outage_ticks`` outage.

        Each expired bit position of each word is independently flipped
        with ``decay_flip_probability``. Unexpired bits are untouched.
        The input array is not modified.
        """
        words = np.asarray(words)
        if not np.issubdtype(words.dtype, np.integer):
            raise NVMError("corrupt_words expects an integer array")
        expired = self.expired_bits(outage_ticks)
        if not expired.any():
            return words.copy()
        out = words.astype(np.int64, copy=True)
        # One batched draw over all expired bit positions: filling a
        # (k,)+shape array consumes the identical PCG64 stream as k
        # sequential draws of `shape`, and the per-bit XOR masks touch
        # disjoint bits, so accumulation order cannot matter.
        expired_idx = np.flatnonzero(expired)
        draws = self._rng.random((expired_idx.size,) + words.shape)
        flips = (draws < self.decay_flip_probability).astype(np.int64)
        shifts = expired_idx.astype(np.int64).reshape(
            (expired_idx.size,) + (1,) * words.ndim
        )
        out ^= np.bitwise_xor.reduce(flips << shifts, axis=0)
        return out.astype(words.dtype)


def count_retention_failures(
    outage_durations_ticks: Iterable[int],
    policy: RetentionPolicy,
    backup_fraction: float = 1.0,
    seed: Optional[int] = None,
) -> FailureCounts:
    """Count per-bit retention failures over a sequence of outages.

    Every outage follows one backup; each bit whose shaped retention is
    shorter than the outage contributes one failure. ``backup_fraction``
    subsamples outages for systems that do not approximate every backup
    (e.g. only incidental-marked state uses shaped retention); the
    subsample is drawn from ``seed`` (``None`` means seed 0), and the
    seed actually used is recorded on the returned
    :class:`FailureCounts` so the row is reproducible from its result.

    This reproduces the Figure 22 counting: per-bit failure totals per
    policy per power profile.
    """
    if not isinstance(policy, RetentionPolicy):
        raise NVMError("policy must be a RetentionPolicy instance")
    fraction = check_probability(backup_fraction, "backup_fraction", exc=NVMError)
    durations = np.asarray(list(outage_durations_ticks), dtype=np.float64)
    if durations.size and durations.min() < 0:
        raise NVMError("outage durations must be non-negative")
    used_seed: Optional[int] = None
    if fraction < 1.0 and durations.size:
        used_seed = 0 if seed is None else seed
        rng = np.random.default_rng(used_seed)
        keep = rng.random(durations.size) < fraction
        durations = durations[keep]
    retention = policy.retention_profile_ticks()
    per_bit = [
        int(np.count_nonzero(durations > retention[bit]))
        for bit in range(policy.word_bits)
    ]
    return FailureCounts(
        policy_name=policy.name, per_bit=tuple(per_bit), seed=used_seed
    )
