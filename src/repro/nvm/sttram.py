"""STT-RAM write current / pulse width / retention model (Figure 4).

The paper observes (citing Smullen et al. [58], Jog et al. [12] and
Swaminathan et al. [63]) that relaxing an STT-RAM cell's retention time
dramatically reduces its write energy: "77% of write energy can be
saved ... by reducing the retention time from 1 day to 10 ms".

We use the standard thermal-stability formulation:

* retention time ``t_ret = tau0 * exp(Delta)`` with ``tau0 = 1 ns``,
  so the thermal-stability factor is ``Delta = ln(t_ret / tau0)``;
* the critical switching current scales with a power of the (relative)
  thermal stability, ``Ic0(Delta) = i_ref * (Delta / Delta_ref)**p``;
* for a finite write pulse of width ``t_p`` the required current is
  ``I(t_p) = Ic0 * (1 + t_char / t_p)`` (precessional penalty for short
  pulses);
* write energy is ``E = V * I * t_p``.

The exponent ``p`` is calibrated (p = 1.6) so that the minimum-energy
write point for 10 ms retention costs ~23 % of the 1-day point — the
paper's 77 % saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from .._validation import check_positive
from ..errors import NVMError

__all__ = ["STTRAMModel", "RETENTION_ONE_DAY_S", "RETENTION_10MS_S"]

#: One day, in seconds — the paper's "reliable" retention reference.
RETENTION_ONE_DAY_S: float = 86_400.0

#: Ten milliseconds — the paper's most-relaxed example retention.
RETENTION_10MS_S: float = 0.010

#: Attempt period of the free magnetic layer (seconds).
_TAU0_S: float = 1.0e-9


@dataclass(frozen=True)
class STTRAMModel:
    """Analytic STT-RAM cell model for dynamic-retention writes.

    Parameters
    ----------
    i_ref_ua:
        Critical current (µA) for the reference retention (1 day) at an
        infinitely long pulse.
    stability_exponent:
        Exponent ``p`` in ``Ic0 ∝ (Delta/Delta_ref)^p``; calibrated to
        reproduce the 77 % write-energy saving of Figure 4.
    t_char_ns:
        Characteristic precessional time constant (ns): the pulse-width
        penalty scale.
    write_voltage_v:
        Write voltage across the cell (V).
    max_current_ua:
        Largest current the write driver can source (the Figure 4 axis
        tops out at 250 µA).
    min_pulse_ns / max_pulse_ns:
        Feasible write-pulse range of the driver and timing counter.
    """

    i_ref_ua: float = 100.0
    stability_exponent: float = 1.65
    t_char_ns: float = 1.0
    write_voltage_v: float = 1.2
    max_current_ua: float = 250.0
    min_pulse_ns: float = 0.25
    max_pulse_ns: float = 10.0

    def __post_init__(self) -> None:
        check_positive(self.i_ref_ua, "i_ref_ua", exc=NVMError)
        check_positive(self.stability_exponent, "stability_exponent", exc=NVMError)
        check_positive(self.t_char_ns, "t_char_ns", exc=NVMError)
        check_positive(self.write_voltage_v, "write_voltage_v", exc=NVMError)
        check_positive(self.max_current_ua, "max_current_ua", exc=NVMError)
        check_positive(self.min_pulse_ns, "min_pulse_ns", exc=NVMError)
        if self.max_pulse_ns <= self.min_pulse_ns:
            raise NVMError("max_pulse_ns must exceed min_pulse_ns")

    # -- thermal stability ---------------------------------------------

    @staticmethod
    def thermal_stability(retention_s: float) -> float:
        """Thermal-stability factor ``Delta = ln(t_ret / tau0)``."""
        retention = check_positive(retention_s, "retention_s", exc=NVMError)
        if retention <= _TAU0_S:
            raise NVMError(
                f"retention_s must exceed the attempt period {_TAU0_S} s"
            )
        return math.log(retention / _TAU0_S)

    @property
    def reference_stability(self) -> float:
        """``Delta`` of the 1-day reference retention."""
        return self.thermal_stability(RETENTION_ONE_DAY_S)

    def critical_current_ua(self, retention_s: float) -> float:
        """Long-pulse critical current for the requested retention (µA)."""
        delta = self.thermal_stability(retention_s)
        ratio = delta / self.reference_stability
        return self.i_ref_ua * ratio ** self.stability_exponent

    # -- the Figure 4 surface --------------------------------------------

    def write_current_ua(self, pulse_ns: float, retention_s: float) -> float:
        """Required write current (µA) for a pulse of ``pulse_ns``.

        This is the family of curves in Figure 4: current falls with
        pulse width and rises with retention time.
        """
        pulse = check_positive(pulse_ns, "pulse_ns", exc=NVMError)
        ic0 = self.critical_current_ua(retention_s)
        return ic0 * (1.0 + self.t_char_ns / pulse)

    def write_energy_pj(self, pulse_ns: float, retention_s: float) -> float:
        """Write energy (pJ) at the given pulse width and retention.

        ``E = V * I * t_p`` with I in µA and t_p in ns gives femtojoules
        scaled by the voltage; we return picojoules.
        """
        current = self.write_current_ua(pulse_ns, retention_s)
        return self.write_voltage_v * current * float(pulse_ns) * 1.0e-3

    def optimal_write_point(self, retention_s: float) -> Tuple[float, float, float]:
        """Minimum-energy feasible write point for ``retention_s``.

        Returns ``(pulse_ns, current_ua, energy_pj)`` — the "best write
        energy box" of Figure 4. Since ``E = V*Ic0*(t_p + t_char)`` is
        increasing in ``t_p``, the optimum sits at the shortest pulse
        whose required current the driver can still source.
        """
        ic0 = self.critical_current_ua(retention_s)
        if ic0 >= self.max_current_ua:
            raise NVMError(
                f"retention {retention_s} s needs critical current {ic0:.0f} uA, "
                f"beyond the {self.max_current_ua:.0f} uA driver limit"
            )
        pulse_at_imax = self.t_char_ns / (self.max_current_ua / ic0 - 1.0)
        pulse = min(max(pulse_at_imax, self.min_pulse_ns), self.max_pulse_ns)
        current = self.write_current_ua(pulse, retention_s)
        if current > self.max_current_ua + 1e-9:
            raise NVMError(
                f"no feasible write pulse for retention {retention_s} s"
            )
        return pulse, current, self.write_energy_pj(pulse, retention_s)

    def optimal_write_energy_pj(self, retention_s: float) -> float:
        """Energy (pJ) at the minimum-energy feasible write point."""
        return self.optimal_write_point(retention_s)[2]

    def energy_saving_fraction(self, from_retention_s: float, to_retention_s: float) -> float:
        """Fractional write-energy saving when relaxing retention.

        ``energy_saving_fraction(1 day, 10 ms)`` reproduces the paper's
        headline 77 % saving.
        """
        base = self.optimal_write_energy_pj(from_retention_s)
        relaxed = self.optimal_write_energy_pj(to_retention_s)
        return 1.0 - relaxed / base

    # -- inversion: what retention does a given drive achieve? -----------

    def achieved_retention_s(self, current_ua: float, pulse_ns: float) -> float:
        """Retention time achieved by writing with ``current_ua``/``pulse_ns``.

        Inverts :meth:`write_current_ua`; used by the write circuit to
        check that a quantised (mirror-selected) drive still meets the
        retention the policy asked for.
        """
        current = check_positive(current_ua, "current_ua", exc=NVMError)
        pulse = check_positive(pulse_ns, "pulse_ns", exc=NVMError)
        ic0 = current / (1.0 + self.t_char_ns / pulse)
        ratio = ic0 / self.i_ref_ua
        if ratio <= 0.0:
            raise NVMError("drive too weak to switch the cell at all")
        delta = self.reference_stability * ratio ** (1.0 / self.stability_exponent)
        return _TAU0_S * math.exp(delta)

    def current_sweep(
        self, pulse_widths_ns: Sequence[float], retention_s: float
    ) -> Tuple[Tuple[float, float], ...]:
        """Tabulate (pulse_ns, current_ua) pairs — one Figure 4 curve."""
        return tuple(
            (float(p), self.write_current_ua(p, retention_s)) for p in pulse_widths_ns
        )
