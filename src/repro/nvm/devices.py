"""Alternative NVM device presets (footnote 1 and Section 4).

The paper picks STT-RAM for the backup store "mainly for endurance
concerns for the backup rate associated with this specific energy
harvester", notes that "ReRAM is an excellent option for infrequent
backups", and that the dynamic retention-time control scheme "can be
extended to these devices" — ReRAM, PCRAM and FeRAM.

This module provides calibrated presets of the same analytic write
model for those technologies, plus the endurance arithmetic behind the
footnote: given a platform's backup cadence, which devices survive a
deployment lifetime?

The per-device constants are representative of the literature the
paper cites ([21] ReRAM NVP, [13] FeRAM NVP, [42, 72] PCRAM write
modes) at the order-of-magnitude level — exactly the granularity the
endurance/energy trade-off needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .._validation import check_non_negative, check_positive
from ..errors import NVMError
from .sttram import STTRAMModel

__all__ = [
    "NVMDeviceSpec",
    "DEVICE_PRESETS",
    "device_by_name",
    "endurance_lifetime_years",
    "recommend_device",
]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class NVMDeviceSpec:
    """One nonvolatile technology usable as the distributed backup store.

    Attributes
    ----------
    cell:
        The write current/pulse/retention model (shared analytic form).
    endurance_cycles:
        Write-endurance rating of one cell.
    supports_dynamic_retention:
        Whether the Figure 7 write circuit's retention knob applies
        (FeRAM's polarization writes are not retention-tunable the same
        way; the paper cites [56] for its separate trade-offs).
    notes:
        One-line characterisation used in reports.
    """

    name: str
    cell: STTRAMModel
    endurance_cycles: float
    supports_dynamic_retention: bool
    notes: str

    def __post_init__(self) -> None:
        check_positive(self.endurance_cycles, "endurance_cycles", exc=NVMError)


def _build_presets() -> Dict[str, NVMDeviceSpec]:
    return {
        "stt-ram": NVMDeviceSpec(
            name="stt-ram",
            cell=STTRAMModel(),
            endurance_cycles=1e12,
            supports_dynamic_retention=True,
            notes="the paper's choice: effectively unlimited endurance at NVP backup rates",
        ),
        "reram": NVMDeviceSpec(
            name="reram",
            cell=STTRAMModel(
                i_ref_ua=20.0,
                stability_exponent=1.3,
                t_char_ns=1.5,
                write_voltage_v=1.4,
                max_current_ua=120.0,
                min_pulse_ns=0.5,
                max_pulse_ns=50.0,
            ),
            endurance_cycles=1e8,
            supports_dynamic_retention=True,
            notes="cheap writes, limited endurance: 'excellent for infrequent backups'",
        ),
        "pcram": NVMDeviceSpec(
            name="pcram",
            cell=STTRAMModel(
                i_ref_ua=150.0,
                stability_exponent=1.2,
                t_char_ns=20.0,
                write_voltage_v=1.8,
                max_current_ua=400.0,
                min_pulse_ns=10.0,
                max_pulse_ns=200.0,
            ),
            endurance_cycles=1e9,
            supports_dynamic_retention=True,
            notes="multi-write-mode capable [42, 72]; slow, energy-hungry SET",
        ),
        "feram": NVMDeviceSpec(
            name="feram",
            cell=STTRAMModel(
                i_ref_ua=15.0,
                stability_exponent=1.05,
                t_char_ns=30.0,
                write_voltage_v=1.5,
                max_current_ua=60.0,
                min_pulse_ns=20.0,
                max_pulse_ns=300.0,
            ),
            endurance_cycles=1e14,
            supports_dynamic_retention=False,
            notes="destructive-read polarization storage [56]; retention knob n/a",
        ),
    }


DEVICE_PRESETS: Dict[str, NVMDeviceSpec] = _build_presets()


def device_by_name(name: str) -> NVMDeviceSpec:
    """Look up a device preset by technology name."""
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        raise NVMError(
            f"unknown NVM device {name!r}; available: {sorted(DEVICE_PRESETS)}"
        ) from None


def endurance_lifetime_years(
    device: NVMDeviceSpec, backups_per_minute: float
) -> float:
    """Deployment lifetime before cell wear-out at the given cadence.

    Every backup writes every cell of the distributed state once. The
    paper's harvester produces 1400-1700 backups per minute — the
    footnote's "endurance concern".
    """
    rate = check_non_negative(backups_per_minute, "backups_per_minute", exc=NVMError)
    if rate == 0.0:
        return float("inf")
    seconds = device.endurance_cycles / (rate / 60.0)
    return seconds / _SECONDS_PER_YEAR


def recommend_device(
    backups_per_minute: float, lifetime_years: float = 10.0
) -> Tuple[NVMDeviceSpec, Dict[str, float]]:
    """The footnote's decision: pick the cheapest device that survives.

    Among devices supporting dynamic retention and meeting the lifetime
    at the given cadence, returns the one with the lowest shaped-write
    word energy (linear policy), plus every candidate's lifetime for
    the report.
    """
    check_positive(lifetime_years, "lifetime_years", exc=NVMError)
    from .retention import LinearRetention

    lifetimes = {
        name: endurance_lifetime_years(spec, backups_per_minute)
        for name, spec in DEVICE_PRESETS.items()
    }
    viable = [
        spec
        for name, spec in DEVICE_PRESETS.items()
        if spec.supports_dynamic_retention and lifetimes[name] >= lifetime_years
    ]
    if not viable:
        raise NVMError(
            f"no dynamic-retention device survives {backups_per_minute:.0f} "
            f"backups/min for {lifetime_years:g} years"
        )
    policy = LinearRetention()
    best = min(viable, key=lambda spec: policy.word_write_energy_pj(spec.cell))
    return best, lifetimes
