"""Multi-version NVM data memory with precision metadata (Section 4).

The paper's incidental NVP widens each data word from 8 to 32 bits —
four 8-bit *versions*, one per SIMD lane — and attaches 3 precision
bits per version (12 per word) recording how many reliable bits the
stored value was computed with. The memory itself implements the
intra-bundle merge operations (``max``, ``min``, ``sum`` and the
precision-driven ``higherbits``) that the ``assemble`` pragma invokes,
iterating over the region one pair of values at a time under a
controller state machine.

This class is the storage substrate; :mod:`repro.core.merge` provides
the pragma-facing assemble semantics on top of it.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .._validation import check_choice, check_int_in_range
from ..errors import MergeError, NVMError

__all__ = ["VersionedNVMemory", "MAX_VERSIONS", "MERGE_MODES"]

#: Hardware version (SIMD lane) count — at most 4-way SIMD in the paper.
MAX_VERSIONS: int = 4

#: Merge modes implemented by the memory's combination state machine.
MERGE_MODES: Tuple[str, ...] = ("sum", "max", "min", "higherbits")

_Index = Union[int, slice, np.ndarray]


class VersionedNVMemory:
    """A nonvolatile word array with ``versions`` values per address.

    Parameters
    ----------
    n_words:
        Number of addressable words.
    word_bits:
        Width of each stored value (8 for the 8051-class NVP).
    versions:
        Number of versions per word (4 in the paper's implementation).
    """

    def __init__(self, n_words: int, word_bits: int = 8, versions: int = MAX_VERSIONS) -> None:
        self.n_words = check_int_in_range(n_words, "n_words", 1, exc=NVMError)
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=NVMError)
        self.versions = check_int_in_range(versions, "versions", 1, MAX_VERSIONS, exc=NVMError)
        self._values = np.zeros((self.versions, self.n_words), dtype=np.int64)
        # Precision metadata: number of reliable bits each value was
        # computed with (0 = never written).
        self._precision = np.zeros((self.versions, self.n_words), dtype=np.int8)

    # -- helpers ----------------------------------------------------------

    @property
    def max_value(self) -> int:
        """Largest representable word value."""
        return (1 << self.word_bits) - 1

    def _check_version(self, version: int) -> int:
        return check_int_in_range(version, "version", 0, self.versions - 1, exc=NVMError)

    def _clip(self, values: np.ndarray) -> np.ndarray:
        return np.clip(values, 0, self.max_value)

    # -- reads and writes --------------------------------------------------

    def write(
        self,
        version: int,
        index: _Index,
        values: Union[int, np.ndarray],
        precision_bits: Union[int, np.ndarray],
    ) -> None:
        """Store ``values`` with ``precision_bits`` metadata.

        Values are clipped to the word range (the datapath saturates);
        precision must lie in ``[0, word_bits]``.
        """
        v = self._check_version(version)
        values_arr = np.asarray(values, dtype=np.int64)
        precision_arr = np.asarray(precision_bits, dtype=np.int64)
        if np.any(precision_arr < 0) or np.any(precision_arr > self.word_bits):
            raise NVMError(
                f"precision_bits must be in [0, {self.word_bits}]"
            )
        self._values[v, index] = self._clip(values_arr)
        self._precision[v, index] = precision_arr.astype(np.int8)

    def read(self, version: int, index: _Index = slice(None)) -> np.ndarray:
        """Read stored values for one version (copy)."""
        v = self._check_version(version)
        return self._values[v, index].copy()

    def read_precision(self, version: int, index: _Index = slice(None)) -> np.ndarray:
        """Read precision metadata for one version (copy)."""
        v = self._check_version(version)
        return self._precision[v, index].astype(np.int64)

    def clear_version(self, version: int) -> None:
        """Zero one version's values and precision (lane freed)."""
        v = self._check_version(version)
        self._values[v].fill(0)
        self._precision[v].fill(0)

    # -- the combination state machine (assemble support) ------------------

    def merge_versions(
        self,
        dst_version: int,
        src_version: int,
        mode: str,
        index: _Index = slice(None),
    ) -> int:
        """Combine ``src_version`` into ``dst_version`` over ``index``.

        Modes (Section 4 / Table 1):

        * ``"sum"``        — saturating add; precision takes the minimum
          (a sum is only as reliable as its least reliable addend).
        * ``"max"`` / ``"min"`` — keep the extreme value; precision
          follows the chosen element.
        * ``"higherbits"`` — per element, the value computed with more
          reliable bits covers the one computed with fewer (ties keep
          the destination).

        Returns the number of destination elements that changed. The
        paper's controller blocks execution while this state machine
        runs; callers can charge latency proportional to the region
        size.
        """
        mode = check_choice(mode, "mode", MERGE_MODES, exc=MergeError)
        d = self._check_version(dst_version)
        s = self._check_version(src_version)
        if d == s:
            raise MergeError("cannot merge a version into itself")
        dst_vals = self._values[d, index]
        src_vals = self._values[s, index]
        dst_prec = self._precision[d, index]
        src_prec = self._precision[s, index]

        if mode == "sum":
            merged = self._clip(dst_vals + src_vals)
            merged_prec = np.minimum(dst_prec, src_prec)
        elif mode == "max":
            take_src = src_vals > dst_vals
            merged = np.where(take_src, src_vals, dst_vals)
            merged_prec = np.where(take_src, src_prec, dst_prec)
        elif mode == "min":
            take_src = src_vals < dst_vals
            merged = np.where(take_src, src_vals, dst_vals)
            merged_prec = np.where(take_src, src_prec, dst_prec)
        else:  # higherbits
            take_src = src_prec > dst_prec
            merged = np.where(take_src, src_vals, dst_vals)
            merged_prec = np.where(take_src, src_prec, dst_prec)

        changed = int(np.count_nonzero(merged != dst_vals))
        self._values[d, index] = merged
        self._precision[d, index] = merged_prec.astype(np.int8)
        return changed

    # -- backup integration -------------------------------------------------

    def snapshot(self, version: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Copy out (values, precision) for backup.

        With ``version=None`` the full multi-version state is returned.
        """
        if version is None:
            return self._values.copy(), self._precision.copy()
        v = self._check_version(version)
        return self._values[v].copy(), self._precision[v].copy()

    def restore(
        self,
        values: np.ndarray,
        precision: np.ndarray,
        version: Optional[int] = None,
    ) -> None:
        """Load (values, precision) produced by :meth:`snapshot`."""
        values = np.asarray(values, dtype=np.int64)
        precision = np.asarray(precision, dtype=np.int8)
        if version is None:
            if values.shape != self._values.shape or precision.shape != self._precision.shape:
                raise NVMError("restore shape mismatch for full-memory snapshot")
            self._values[...] = self._clip(values)
            self._precision[...] = precision
            return
        v = self._check_version(version)
        if values.shape != (self.n_words,) or precision.shape != (self.n_words,):
            raise NVMError("restore shape mismatch for single-version snapshot")
        self._values[v] = self._clip(values)
        self._precision[v] = precision

    def __repr__(self) -> str:
        return (
            f"VersionedNVMemory(n_words={self.n_words}, "
            f"word_bits={self.word_bits}, versions={self.versions})"
        )
