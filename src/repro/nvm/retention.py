"""Retention-time shaping policies (Equations 1-3, Figure 5).

During an approximate (incidental) backup, each bit of a backed-up word
is written with a retention time that depends on its significance: the
MSB keeps a long retention (preventing catastrophic quality loss) while
lower-order bits are persisted unreliably with cheap, short-retention
writes.

The paper proposes three shaping functions over the bit index ``B``
(1 = LSB ... 8 = MSB), with retention ``T`` in 0.1 ms ticks:

* **linear**   ``T = 427 * B``                      (Equation 1)
* **log**      ``T = 426 * (B - 1)**0.25 + 9``      (Equation 2)
* **parabola** ``T = 61 * B**2 + 976 * B - 905``    (Equation 3)

Equation 2 as printed in the paper is typographically mangled
(``T = p 426 B-1 4 + 9``); we read it as the fourth-root (log-like,
concave) curve ``426 * (B-1)^(1/4) + 9``, which matches every property
the paper states about the log policy: it is the lowest of the three
curves (Figure 5), frees the most backup energy (Figure 25), and incurs
the most retention failures (Figure 22).

The linear policy suits most kernels; the parabola is the most
conservative for high-order bits (for algorithms that degrade sharply
below 4 bits); the log policy fits highly approximation-tolerant
kernels (Section 3.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple, Type

import numpy as np

from .._validation import check_int_in_range, check_positive
from ..energy.traces import TICK_S
from ..errors import RetentionPolicyError
from .sttram import RETENTION_ONE_DAY_S, STTRAMModel

__all__ = [
    "RetentionPolicy",
    "LinearRetention",
    "LogRetention",
    "ParabolaRetention",
    "UniformRetention",
    "policy_by_name",
    "STANDARD_POLICY_NAMES",
]

#: Default word width of the 8051-class NVP datapath.
DEFAULT_WORD_BITS: int = 8


class RetentionPolicy(ABC):
    """A mapping from bit significance to backup retention time.

    Bit indices follow the paper's convention: ``B = 1`` is the least
    significant bit and ``B = word_bits`` the most significant. All
    retention times are expressed in 0.1 ms ticks (the paper's ``T``)
    and clamped to the device's reliable maximum (1 day) so the shaping
    can only *relax* retention, never promise more than the cell has.

    ``time_scale`` stretches the whole shaping curve: the paper's
    constants are tuned to *its* platform's backup cadence (~1500
    backups/minute, so outages of tens of ms); "matching the retention
    time to the power interval profile" (Section 3.2) on a platform
    with longer backup-to-restore intervals means scaling the curve by
    the cadence ratio while keeping its shape. The write-energy model
    consumes the scaled times, so a stretched policy honestly costs
    more per bit.
    """

    #: Short machine-readable name, e.g. ``"linear"``.
    name: str = "abstract"

    def __init__(self, word_bits: int = DEFAULT_WORD_BITS, time_scale: float = 1.0) -> None:
        self.word_bits = check_int_in_range(
            word_bits, "word_bits", 1, 64, exc=RetentionPolicyError
        )
        self.time_scale = check_positive(time_scale, "time_scale", exc=RetentionPolicyError)
        self._max_ticks = RETENTION_ONE_DAY_S / TICK_S

    @abstractmethod
    def _raw_retention_ticks(self, bit_index: int) -> float:
        """The unclamped shaping function ``T(B)``."""

    def retention_ticks(self, bit_index: int) -> float:
        """Shaped retention time (0.1 ms ticks) for bit ``bit_index``.

        ``bit_index`` runs from 1 (LSB) to ``word_bits`` (MSB).
        """
        bit = check_int_in_range(
            bit_index, "bit_index", 1, self.word_bits, exc=RetentionPolicyError
        )
        raw = self._raw_retention_ticks(bit)
        if raw < 0.0:
            raise RetentionPolicyError(
                f"{self.name} policy produced negative retention for bit {bit}"
            )
        return float(min(raw * self.time_scale, self._max_ticks))

    def retention_seconds(self, bit_index: int) -> float:
        """Shaped retention time for ``bit_index``, in seconds."""
        return self.retention_ticks(bit_index) * TICK_S

    def retention_profile_ticks(self) -> np.ndarray:
        """Retention of every bit (index 0 = LSB), in ticks — Figure 5."""
        return np.array(
            [self.retention_ticks(b) for b in range(1, self.word_bits + 1)],
            dtype=np.float64,
        )

    # -- energy ----------------------------------------------------------

    def word_write_energy_pj(self, cell: STTRAMModel) -> float:
        """Energy (pJ) to back up one word under this policy.

        Sums the minimum-energy write cost of each bit at its shaped
        retention time.
        """
        return float(
            sum(
                cell.optimal_write_energy_pj(self.retention_seconds(b))
                for b in range(1, self.word_bits + 1)
            )
        )

    def relative_write_energy(self, cell: STTRAMModel) -> float:
        """Word write energy relative to a full-retention (1 day) backup.

        This ratio is what scales the system simulator's backup cost;
        the log policy yields the smallest ratio, parabola the largest
        of the three shaped policies.
        """
        baseline = UniformRetention(
            RETENTION_ONE_DAY_S, word_bits=self.word_bits
        ).word_write_energy_pj(cell)
        return self.word_write_energy_pj(cell) / baseline

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(word_bits={self.word_bits}, "
            f"time_scale={self.time_scale})"
        )


class LinearRetention(RetentionPolicy):
    """Equation 1: ``T = 427 * B`` (ticks). Suits most kernels (FFT, iFFT...)."""

    name = "linear"

    def _raw_retention_ticks(self, bit_index: int) -> float:
        return 427.0 * bit_index


class LogRetention(RetentionPolicy):
    """Equation 2 (as reconstructed): ``T = 426 * (B-1)**0.25 + 9`` (ticks).

    The most aggressive policy: lowest retention everywhere, greatest
    backup-energy saving, most retention failures. Fits kernels with
    high approximation tolerance (e.g. neural-network inference).
    """

    name = "log"

    def _raw_retention_ticks(self, bit_index: int) -> float:
        return 426.0 * float(bit_index - 1) ** 0.25 + 9.0


class ParabolaRetention(RetentionPolicy):
    """Equation 3: ``T = 61*B**2 + 976*B - 905`` (ticks).

    The most conservative policy for high-order bits; designed for
    algorithms that lose significant quality below 4 bits.
    """

    name = "parabola"

    def _raw_retention_ticks(self, bit_index: int) -> float:
        return 61.0 * bit_index ** 2 + 976.0 * bit_index - 905.0


class UniformRetention(RetentionPolicy):
    """All bits share one retention time — the non-shaped baseline.

    ``UniformRetention(RETENTION_ONE_DAY_S)`` is the precise-NVP backup
    model ("8Bit 1 Day Baseline" in Figure 25).
    """

    name = "uniform"

    def __init__(
        self,
        retention_s: float,
        word_bits: int = DEFAULT_WORD_BITS,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(word_bits=word_bits, time_scale=time_scale)
        self.retention_s = check_positive(retention_s, "retention_s", exc=RetentionPolicyError)

    def _raw_retention_ticks(self, bit_index: int) -> float:
        return self.retention_s / TICK_S

    def __repr__(self) -> str:
        return (
            f"UniformRetention(retention_s={self.retention_s!r}, "
            f"word_bits={self.word_bits})"
        )


_POLICY_REGISTRY: Dict[str, Type[RetentionPolicy]] = {
    LinearRetention.name: LinearRetention,
    LogRetention.name: LogRetention,
    ParabolaRetention.name: ParabolaRetention,
}

#: Names of the three shaped policies of the paper, in paper order.
STANDARD_POLICY_NAMES: Tuple[str, ...] = ("linear", "log", "parabola")


def policy_by_name(
    name: str, word_bits: int = DEFAULT_WORD_BITS, time_scale: float = 1.0
) -> RetentionPolicy:
    """Instantiate a shaped retention policy from its pragma name.

    This is the lookup the ``incidental(src, minbits, maxbits, policy)``
    pragma performs.
    """
    try:
        cls = _POLICY_REGISTRY[name]
    except KeyError:
        raise RetentionPolicyError(
            f"unknown retention policy {name!r}; expected one of {STANDARD_POLICY_NAMES}"
        ) from None
    return cls(word_bits=word_bits, time_scale=time_scale)
