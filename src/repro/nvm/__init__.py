"""Nonvolatile-memory substrate.

Models the STT-RAM backing store used for distributed backup in the
NVP: the write-current / pulse-width / retention-time trade-off of
Figure 4, the three retention-time shaping policies of Equations 1-3
and Figure 5, the retention-failure (bit-decay) model behind Figure 22,
the behavioral dynamic-retention write circuit of Figure 7, and the
multi-version data memory with per-word precision metadata described in
Section 4.
"""

from .sttram import STTRAMModel, RETENTION_ONE_DAY_S, RETENTION_10MS_S
from .retention import (
    RetentionPolicy,
    LinearRetention,
    LogRetention,
    ParabolaRetention,
    UniformRetention,
    policy_by_name,
    STANDARD_POLICY_NAMES,
)
from .failures import (
    RetentionFailureModel,
    FailureCounts,
    count_retention_failures,
)
from .write_circuit import DynamicRetentionWriteCircuit, BitWriteRecord, WordWriteRecord
from .memory import VersionedNVMemory, MAX_VERSIONS
from .devices import (
    NVMDeviceSpec,
    DEVICE_PRESETS,
    device_by_name,
    endurance_lifetime_years,
    recommend_device,
)

__all__ = [
    "STTRAMModel",
    "RETENTION_ONE_DAY_S",
    "RETENTION_10MS_S",
    "RetentionPolicy",
    "LinearRetention",
    "LogRetention",
    "ParabolaRetention",
    "UniformRetention",
    "policy_by_name",
    "STANDARD_POLICY_NAMES",
    "RetentionFailureModel",
    "FailureCounts",
    "count_retention_failures",
    "DynamicRetentionWriteCircuit",
    "BitWriteRecord",
    "WordWriteRecord",
    "VersionedNVMemory",
    "MAX_VERSIONS",
    "NVMDeviceSpec",
    "DEVICE_PRESETS",
    "device_by_name",
    "endurance_lifetime_years",
    "recommend_device",
]
