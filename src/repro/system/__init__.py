"""System-level simulator.

Reproduces the second half of the paper's simulation framework
(Figure 10): a discrete-time (0.1 ms tick) model of the analog front
end, storage capacitor, and threshold-driven OFF/RESTORE/RUN/BACKUP
state machine that drives the behavioral NVP, producing the output
metrics the paper reports — forward progress, number of backups, and
system-on time. The wait-compute baseline of Section 2.2 lives here
too.
"""

from .config import SystemConfig
from .states import SystemState
from .metrics import SimulationResult
from .simulator import (
    BitAllocator,
    FixedBitAllocator,
    NVPSystemSimulator,
    simulate_fixed_bits,
)
from .wait_compute import WaitComputeResult, WaitComputeSimulator

__all__ = [
    "SystemConfig",
    "SystemState",
    "SimulationResult",
    "BitAllocator",
    "FixedBitAllocator",
    "NVPSystemSimulator",
    "simulate_fixed_bits",
    "WaitComputeResult",
    "WaitComputeSimulator",
]
