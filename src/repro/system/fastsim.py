"""Bit-exact fast path for fixed-bit system simulations.

:class:`~repro.system.simulator.NVPSystemSimulator` steps one 0.1 ms
tick at a time through :class:`~repro.energy.capacitor.Capacitor`
method calls — ~100 000 validated Python calls per 10 s trace — which
makes it the bottleneck of every experiment grid. This module
re-derives the *same* trajectory for the fixed-bit special case
(:class:`FixedBitAllocator` semantics: constant lanes, no narrowing, no
allocator state) at a fraction of the cost, and it is required to be
**bit-exact**: the returned :class:`SimulationResult` is identical
field for field — including every float and the per-tick bit schedule —
to what the reference tick loop produces. ``tests/test_engine_equivalence.py``
enforces that contract differentially.

How the speed is won without changing a single rounding:

* **Vectorized precomputation.** The front-end conversion of the whole
  trace, the per-tick energy constants (run power, tick energy, backup
  reserve, restore cost, the backup-cost table for emergency
  narrowing), and the instruction-rate constant are all hoisted out of
  the loop. Fixed-bit lanes make every one of these a constant, so
  hoisting cannot change a result.

* **Exact outage skipping.** Whole trace segments are fast-forwarded
  when the capacitor is provably pinned at exactly ``0.0``: from an
  empty capacitor, a tick whose accepted income does not survive the
  leak and off-drain ends at exactly ``0.0`` again (the final
  ``drain_power`` subtracts ``min(demand, e) == e``). That predicate is
  evaluated for every tick up front with numpy — using the identical
  IEEE-754 operations the scalar path would apply to ``e == 0.0`` — and
  the simulator jumps straight to the next tick that can hold charge.
  On the standard profiles this skips 55-75 % of all ticks.

* **Exact scalar replay elsewhere.** The remaining ticks run in a tight
  local-variable loop that reproduces the reference arithmetic
  *operation for operation, in the same order* (e.g. the leak term is
  ``(e * leak_frac) * dt + floor``, never ``e * (leak_frac * dt)``),
  so IEEE-754 rounding is identical by construction. State transitions
  (restore, power-emergency backup) fall back to the real
  :class:`NonvolatileProcessor` bookkeeping calls — they are rare, and
  sharing them with the reference keeps the energy ledgers identical.

Observability rides along under the same discipline: the hot replay
loop carries **no per-tick tracer guards at all** — spans and instants
are emitted only at the rare restore/backup transitions (guarded by one
hoisted bool) and the four ``tracer.phase`` wall-time hooks bracket the
setup / precompute / replay / finalize sections. Tracing only reads
state, so traced and untraced runs stay bit-identical
(``tests/test_obs_differential.py``), and with the tracer disabled the
loop is byte-for-byte the code above.

The invariants this file relies on are documented in DESIGN.md
("Experiment engine" section); if you change the reference simulator or
the capacitor model, change this file in lockstep and let the
differential suite arbitrate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import check_int_in_range
from ..energy.frontend import DualChannelFrontend
from ..energy.management import derive_thresholds
from ..energy.traces import TICK_S, PowerTrace
from ..errors import SimulationError
from ..nvm.retention import RetentionPolicy
from ..nvp.energy_model import CYCLES_PER_TICK
from ..nvp.isa import DEFAULT_MIX, InstructionMix
from ..nvp.processor import NonvolatileProcessor
from ..obs.metrics import OUTAGE_TICKS_BUCKETS
from ..obs.tracer import resolve_tracer
from .config import SystemConfig
from .metrics import SimulationResult
from .simulator import _fold_run_metrics

__all__ = ["fast_fixed_run"]


def fast_fixed_run(
    trace: PowerTrace,
    bits: int,
    simd_width: int = 1,
    policy: Optional[RetentionPolicy] = None,
    mix: InstructionMix = DEFAULT_MIX,
    config: Optional[SystemConfig] = None,
    tracer=None,
) -> SimulationResult:
    """Fixed-bit system simulation, bit-exact vs the reference loop.

    Equivalent to ``NVPSystemSimulator(trace, NonvolatileProcessor(...),
    FixedBitAllocator(bits, simd_width), config).run()`` — same results,
    same error behaviour — but typically 20-40x faster.

    Device resilience is deliberately not modeled here: the vectorized
    outage math assumes atomic backups and always-valid restores, so
    :func:`repro.system.simulator.simulate_fixed_bits` routes any run
    with a resilience config to the reference loop instead (for a
    rate-0 unpriced config both are bit-identical, enforced by
    ``tests/test_resilience_faults.py``).
    """
    trc = resolve_tracer(tracer)
    with trc.phase("fastsim.setup"):
        cfg = config if config is not None else SystemConfig()
        proc = NonvolatileProcessor(policy=policy, mix=mix, tracer=tracer)
        # Same validation (and error messages) as FixedBitAllocator.
        bits = check_int_in_range(bits, "bits", 1, proc.energy_model.word_bits)
        simd_width = check_int_in_range(simd_width, "simd_width", 1, 4)
        lanes: List[int] = [bits] * simd_width

        samples = trace.samples_uw
        frontend = cfg.build_frontend()
        converted = frontend.convert_trace(samples)
        direct = None
        if isinstance(frontend, DualChannelFrontend):
            direct = samples * frontend.bypass_efficiency
            direct[samples < frontend.min_input_uw] = 0.0
        n = len(samples)

        mix_weight = proc.mix.mean_energy_weight
        thresholds = derive_thresholds(
            backup_energy_uj=proc.backup_energy_uj(lanes),
            restore_energy_uj=proc.restore_energy_uj(lanes),
            run_power_uw=proc.run_power_uw(lanes) * mix_weight,
            min_run_ticks=cfg.min_run_ticks,
            backup_margin=cfg.backup_margin,
        )
        start_level = max(
            thresholds.start_energy_uj,
            cfg.start_fill_fraction * cfg.capacitor_uj,
        )
        if start_level > cfg.capacitor_uj:
            raise SimulationError(
                f"start level {start_level:.2f} uJ exceeds capacitor "
                f"capacity {cfg.capacitor_uj:.2f} uJ; this configuration "
                "can never start"
            )

        # -- hoisted per-tick constants (all pure functions of the fixed
        #    lane configuration, evaluated exactly as the reference does) --
        dt = TICK_S
        capacity = float(cfg.capacitor_uj)
        leak_frac = float(cfg.capacitor_leak_per_s)
        floor_e = float(cfg.capacitor_leak_floor_uw) * dt
        off_e = float(cfg.off_leakage_uw) * dt
        run_power = proc.run_power_uw(lanes) * mix_weight
        run_e = run_power * dt  # == tick_energy == drain_power demand
        reserve = proc.backup_energy_uj(lanes) * (1.0 + cfg.backup_margin)
        restore_cost = proc.restore_energy_uj(lanes)
        # Backup-cost table for the (rare) emergency narrowing loop, which
        # lowers only the lane-0 bit budget.
        backup_cost = [0.0] * (bits + 1)
        for b0 in range(1, bits + 1):
            backup_cost[b0] = proc.backup_energy_uj([b0] + lanes[1:])
        instr_per_tick = CYCLES_PER_TICK / proc.mix.mean_cycles
        run_energy_per_tick = run_power * 1.0e-4  # literal from execute_tick

    with trc.phase("fastsim.precompute"):
        # -- vectorized precomputation over the whole trace ----------------
        # Sticky-zero predicate: starting a tick at e == 0.0, does the tick
        # end back at exactly 0.0? Replays charge/leak/drain elementwise
        # with the same IEEE operations the scalar path would use.
        inc0 = np.minimum(converted * dt, capacity)  # accepted charge
        loss0 = np.minimum(inc0, inc0 * leak_frac * dt + floor_e)  # leak
        sticky = (inc0 - loss0) <= off_e  # off-drain pins e at 0.0
        nonsticky_idx = np.flatnonzero(~sticky)
        income_idx = np.flatnonzero(converted > 0.0)

        conv_list = converted.tolist()
        direct_list = direct.tolist() if direct is not None else None
        sticky_list = sticky.tolist()
        nonsticky_list = nonsticky_idx.tolist()
        income_list = income_idx.tolist()
        n_nonsticky = len(nonsticky_list)
        n_income = len(income_list)
        searchsorted = np.searchsorted

    with trc.phase("fastsim.replay"):
        # -- exact scalar replay ---------------------------------------
        # Tracer hooks appear only at restore/backup transitions behind
        # the single hoisted bool below; the per-tick paths are guard-free.
        t_on = trc.enabled
        outage_start = 0
        run_start = 0
        e = 0.0  # capacitor energy (uJ); cap starts empty, like build_capacitor()
        t = 0
        running = False
        on_ticks = 0
        committed = 0
        residue = 0.0
        run_energy = 0.0
        run_tick_idx: List[int] = []
        backup_ticks: List[int] = []

        while t < n:
            if not running:
                # OFF: charge from the storage channel, leak, off-drain,
                # then restore if the start level is reached.
                if e == 0.0 and sticky_list[t]:
                    # Pinned at exactly 0.0 until a tick can hold charge.
                    j = int(searchsorted(nonsticky_idx, t))
                    t = nonsticky_list[j] if j < n_nonsticky else n
                    continue
                c = conv_list[t]
                if c == 0.0:
                    # Zero-income decay span: e only falls, so neither the
                    # restore check nor the charge step can fire before the
                    # next income tick (or e reaches exactly 0.0).
                    j = int(searchsorted(income_idx, t))
                    span_end = income_list[j] if j < n_income else n
                    while t < span_end:
                        loss = e * leak_frac * dt + floor_e
                        if loss > e:
                            loss = e
                        e -= loss
                        if e >= off_e:
                            e -= off_e
                            t += 1
                        else:
                            e = 0.0
                            t += 1
                            break
                    continue
                incoming = c * dt
                room = capacity - e
                e += incoming if incoming < room else room
                if e > 0.0:
                    loss = e * leak_frac * dt + floor_e
                    if loss > e:
                        loss = e
                    e -= loss
                if e >= off_e:
                    e -= off_e
                else:
                    e = 0.0
                if e >= start_level:
                    # RESTORE occupies this tick.
                    if restore_cost > e + 1e-12:
                        raise SimulationError(
                            "start threshold did not cover restore energy"
                        )
                    e -= restore_cost
                    if e < 0.0:
                        e = 0.0
                    if t_on:
                        trc.tick = t
                    proc.restore(lanes)
                    running = True
                    on_ticks += 1
                    if t_on:
                        trc.span("outage", outage_start, t, cat="system")
                        trc.metrics.observe(
                            "outage.ticks", t - outage_start, OUTAGE_TICKS_BUCKETS
                        )
                        run_start = t
                t += 1
                continue

            # RUN: charge (bypass channel when dual), leak, then either a
            # power-emergency backup or one executed tick.
            c = direct_list[t] if direct_list is not None else conv_list[t]
            if c > 0.0:
                incoming = c * dt
                room = capacity - e
                e += incoming if incoming < room else room
            if e > 0.0:
                loss = e * leak_frac * dt + floor_e
                if loss > e:
                    loss = e
                e -= loss
            if e - run_e < reserve:
                # Power emergency: back up with the reserved charge,
                # narrowing the lane-0 budget if the charge fell short.
                b0 = bits
                cost = backup_cost[b0]
                while b0 > 1 and cost > e:
                    b0 -= 1
                    cost = backup_cost[b0]
                if cost > e + 1e-12:
                    raise SimulationError("backup reserve was not available")
                e -= cost
                if e < 0.0:
                    e = 0.0
                if t_on:
                    trc.tick = t
                proc.backup(t, [b0] + lanes[1:])
                backup_ticks.append(t)
                running = False
                on_ticks += 1
                if t_on:
                    trc.span("run", run_start, t, cat="system")
                    outage_start = t
                t += 1
                continue
            if run_e <= e:
                e -= run_e
            else:
                raise SimulationError("run tick drained past available charge")
            # execute_tick bookkeeping, inlined (lanes are constant).
            exact = instr_per_tick + residue
            ipl = int(exact)
            residue = exact - ipl
            committed += ipl
            run_energy += run_energy_per_tick
            run_tick_idx.append(t)
            on_ticks += 1
            t += 1

    with trc.phase("fastsim.finalize"):
        bit_schedule = np.zeros(n, dtype=np.int16)
        lane_schedule = np.zeros(n, dtype=np.int16)
        if run_tick_idx:
            idx = np.asarray(run_tick_idx, dtype=np.intp)
            bit_schedule[idx] = bits
            lane_schedule[idx] = simd_width
        if t_on:
            if running:
                trc.span("run", run_start, n, cat="system")
            else:
                trc.span("outage", outage_start, n, cat="system")
            _fold_run_metrics(trc, bit_schedule, lane_schedule, on_ticks, n)
        engine = proc.backup_engine
        result = SimulationResult(
            total_ticks=n,
            forward_progress=committed,
            incidental_progress=committed * (simd_width - 1),
            backup_count=engine.backup_count,
            restore_count=engine.restore_count,
            on_ticks=on_ticks,
            income_energy_uj=trace.total_energy_uj,
            converted_energy_uj=float(converted.sum() * TICK_S),
            run_energy_uj=run_energy,
            backup_energy_uj=engine.total_backup_energy_uj,
            restore_energy_uj=engine.total_restore_energy_uj,
            bit_schedule=bit_schedule,
            lane_schedule=lane_schedule,
            backup_ticks=tuple(backup_ticks),
        )
    return result
