"""The wait-compute baseline of Section 2.2.

A traditional energy-harvesting platform uses a volatile MCU behind a
*large* energy-storage device: it waits, charging the ESD, until enough
energy is banked to complete an entire logical unit of work (e.g. one
image frame), then executes the unit in one shot. Its pathologies —
charging-efficiency losses, ESD leakage, a minimum charging current,
and the slow top-off curve — are modelled by
:class:`repro.energy.capacitor.StorageCapacitor`.

If power dies mid-unit the volatile MCU loses everything and must
recharge from scratch; the conservative policy therefore banks the
whole unit's energy (plus margin) before starting, exactly the paper's
description. The paper re-implements the NVP-vs-wait-compute
comparison of Ma et al. [24] and reports the NVP approach winning by
2.2x-5x on the Figure 2 traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._validation import check_int_in_range, check_positive
from ..energy.capacitor import StorageCapacitor
from ..energy.frontend import RectifierFrontend
from ..energy.traces import TICK_S, PowerTrace
from ..nvp.energy_model import CYCLES_PER_TICK, EnergyModel
from ..nvp.isa import DEFAULT_MIX, InstructionMix

__all__ = ["WaitComputeResult", "WaitComputeSimulator"]


@dataclass(frozen=True)
class WaitComputeResult:
    """Outcome of a wait-compute simulation."""

    total_ticks: int
    units_completed: int
    units_lost: int
    forward_progress: int
    charging_ticks: int
    running_ticks: int

    @property
    def mean_ticks_per_unit(self) -> float:
        """Average ticks between completed units (inf when none)."""
        if self.units_completed == 0:
            return float("inf")
        return self.total_ticks / self.units_completed


class WaitComputeSimulator:
    """Charge-then-execute simulation of a volatile MCU platform.

    Parameters
    ----------
    unit_instructions:
        Instructions in one logical unit of work (e.g. one frame of
        the running kernel). The platform banks the whole unit's energy
        before starting.
    storage:
        The large ESD; defaults to a GZ115-class supercapacitor model.
    energy_model / mix:
        Same compute model as the NVP (Section 7: "the same model
        adapted in the NVP"), so differences come purely from the
        execution paradigm.
    start_margin:
        Extra fractional energy banked beyond the unit requirement, to
        survive ESD leakage during the run.
    init_instructions:
        Volatile-platform wake-up cost: boot, clock/peripheral and
        sensor re-initialisation executed before every unit. An NVP
        wakes by restoring nonvolatile state instead ("Passive
        checkpointing can save system initialization time and energy
        when powered up", Section 9).
    """

    def __init__(
        self,
        unit_instructions: int,
        storage: Optional[StorageCapacitor] = None,
        energy_model: Optional[EnergyModel] = None,
        mix: InstructionMix = DEFAULT_MIX,
        frontend: Optional[RectifierFrontend] = None,
        start_margin: float = 0.1,
        init_instructions: int = 4_000,
    ) -> None:
        self.unit_instructions = check_int_in_range(unit_instructions, "unit_instructions", 1)
        self.init_instructions = check_int_in_range(init_instructions, "init_instructions", 0)
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.mix = mix
        self.start_margin = check_positive(1.0 + start_margin, "start_margin") - 1.0
        self.frontend = frontend if frontend is not None else RectifierFrontend()
        if storage is None:
            # Size the ESD for the unit with headroom; a bigger ESD
            # leaks more, a smaller one cannot hold the unit at all.
            storage = StorageCapacitor(capacity_uj=self.unit_energy_uj * 2.0)
        if storage.capacity_uj < self.unit_energy_uj * (1.0 + self.start_margin):
            raise ValueError(
                "storage capacitor cannot hold one unit of work: "
                f"{storage.capacity_uj:.1f} uJ < "
                f"{self.unit_energy_uj * (1.0 + self.start_margin):.1f} uJ"
            )
        self.storage = storage

    @property
    def run_power_uw(self) -> float:
        """MCU power while executing (same datapath model as the NVP)."""
        return self.energy_model.uniform_run_power_uw(
            self.energy_model.word_bits
        ) * self.mix.mean_energy_weight

    @property
    def instructions_per_tick(self) -> float:
        """Execution throughput while running."""
        return CYCLES_PER_TICK / self.mix.mean_cycles

    @property
    def unit_ticks(self) -> int:
        """Ticks needed to execute one unit, including wake-up init."""
        total = self.unit_instructions + self.init_instructions
        return max(1, int(round(total / self.instructions_per_tick)))

    @property
    def unit_energy_uj(self) -> float:
        """Energy needed to execute one unit (including init)."""
        return self.run_power_uw * TICK_S * self.unit_ticks

    def run(self, trace: PowerTrace) -> WaitComputeResult:
        """Simulate the wait-compute platform over ``trace``."""
        storage = self.storage
        storage.reset(0.0)
        target = self.unit_energy_uj * (1.0 + self.start_margin)
        units_completed = 0
        units_lost = 0
        charging_ticks = 0
        running_ticks = 0
        ticks_into_unit = 0
        running = False

        for sample in trace.samples_uw:
            income = self.frontend.convert(float(sample))
            storage.charge(income)
            storage.leak()
            if not running:
                charging_ticks += 1
                if storage.energy_uj >= target:
                    running = True
                    ticks_into_unit = 0
                continue
            # Executing: drain run power; income keeps charging above.
            shortfall = storage.drain_power(self.run_power_uw)
            running_ticks += 1
            if shortfall > 0.0:
                # Brown-out mid-unit: volatile state lost.
                units_lost += 1
                running = False
                continue
            ticks_into_unit += 1
            if ticks_into_unit >= self.unit_ticks:
                units_completed += 1
                running = False

        forward_progress = int(units_completed * self.unit_instructions)
        return WaitComputeResult(
            total_ticks=len(trace),
            units_completed=units_completed,
            units_lost=units_lost,
            forward_progress=forward_progress,
            charging_ticks=charging_ticks,
            running_ticks=running_ticks,
        )
