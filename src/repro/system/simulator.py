"""The 0.1 ms-tick NVP system simulator (Figure 10, system layer).

Each tick the simulator: converts the trace's harvested power through
the front end, integrates the on-chip capacitor (income, load,
leakage), and advances the OFF / RESTORE / RUN / BACKUP state machine:

* **OFF** — the NVP is unpowered (nonvolatile state needs nothing);
  when the capacitor reaches the *start threshold* (restore energy +
  backup reserve + a minimum run budget) the system restores.
* **RUN** — a :class:`BitAllocator` chooses the per-lane reliable-bit
  budgets for the tick (fixed for the baseline NVP; power-tracking for
  dynamic bitwidth; surplus-driven multi-lane for incidental SIMD).
  If finishing the tick would drop the capacitor below the backup
  reserve for the *current* lane configuration, a power emergency is
  declared and the state is backed up instead.
* **RESTORE** / **BACKUP** — occupy one tick each and spend their
  energy atomically.

The per-tick lane-0 bit budget is recorded as the *bit schedule*, which
couples this simulation to kernel output quality (Figures 17-19).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_int_in_range
from ..energy.frontend import DualChannelFrontend
from ..energy.management import derive_thresholds
from ..energy.traces import TICK_S, PowerTrace
from ..errors import SimulationError
from ..nvm.retention import RetentionPolicy
from ..nvp.isa import DEFAULT_MIX, InstructionMix
from ..nvp.processor import NonvolatileProcessor
from ..obs.metrics import BITWIDTH_BUCKETS, OUTAGE_TICKS_BUCKETS
from ..resilience import ResilienceConfig, RestoreOutcome
from .config import SystemConfig
from .metrics import SimulationResult
from .states import SystemState

__all__ = [
    "BitAllocator",
    "FixedBitAllocator",
    "NVPSystemSimulator",
    "simulate_fixed_bits",
]


class BitAllocator(ABC):
    """Strategy choosing per-tick lane bit budgets.

    The system simulator is agnostic to *why* a configuration runs with
    a given precision; baselines use :class:`FixedBitAllocator`, while
    the paper's contribution plugs in the dynamic and incidental
    allocators from :mod:`repro.core.controller`.
    """

    #: Whether the simulator may drop trailing SIMD lanes when the
    #: backup reserve would be violated. Incidental allocators opt in
    #: (their lanes are opportunistic); fixed-width baselines must not
    #: have their configuration silently narrowed.
    allow_lane_narrowing: bool = False

    @abstractmethod
    def start_lane_bits(self) -> List[int]:
        """Cheapest viable lane configuration.

        Used to derive the system start threshold: the system wakes as
        soon as it can afford to run in this configuration, which is
        why aggressive ``minbits`` pragmas lower the start threshold
        (Figure 9).
        """

    @abstractmethod
    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        """Lane budgets for this tick given income and stored energy."""

    def notify_backup(self, tick: int) -> None:
        """Hook: the system backed up at ``tick`` (stateful allocators)."""

    def notify_restore(self, tick: int) -> None:
        """Hook: the system restored at ``tick``."""

    def notify_executed(self, tick: int, lane_bits: List[int], instructions_per_lane: int) -> None:
        """Hook: a run tick completed with these lanes (stateful allocators)."""

    def notify_degraded_restore(self, tick: int, outcome: RestoreOutcome) -> None:
        """Hook: restore-time validation degraded (fallback/rollforward/
        silent corruption). Stateful allocators discard or distrust the
        progress the lost checkpoint epoch covered; the default is a
        no-op because stateless allocators carry no resumable state."""


class FixedBitAllocator(BitAllocator):
    """Always run ``simd_width`` lanes at ``bits`` reliable bits.

    ``FixedBitAllocator(8)`` is the paper's precise baseline NVP;
    ``FixedBitAllocator(8, simd_width=4)`` is the "4-SIMD NVP" of
    Figure 9.
    """

    def __init__(self, bits: int, simd_width: int = 1, word_bits: int = 8) -> None:
        self.bits = check_int_in_range(bits, "bits", 1, word_bits)
        self.simd_width = check_int_in_range(simd_width, "simd_width", 1, 4)

    def start_lane_bits(self) -> List[int]:
        return [self.bits] * self.simd_width

    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        return [self.bits] * self.simd_width


def _fold_run_metrics(tracer, bit_schedule, lane_schedule, on_ticks, n) -> None:
    """Fold end-of-run schedule distributions into the tracer's metrics.

    Shared by the reference loop and the fast path so both engines
    produce identical per-run metrics (histograms are derived from the
    bit-exact schedules, not from loop-side counters).
    """
    metrics = tracer.metrics
    run_mask = bit_schedule > 0
    bits = np.bincount(bit_schedule[run_mask], minlength=9)
    widths = np.bincount(lane_schedule[run_mask], minlength=9)
    bits_hist = metrics.histogram("lane0.bits", BITWIDTH_BUCKETS)
    width_hist = metrics.histogram("simd.width", BITWIDTH_BUCKETS)
    for value in range(1, min(9, len(bits))):
        if bits[value]:
            bits_hist.observe(value, int(bits[value]))
    for value in range(1, min(9, len(widths))):
        if widths[value]:
            width_hist.observe(value, int(widths[value]))
    metrics.inc("sim.on_ticks", int(on_ticks))
    metrics.inc("sim.total_ticks", int(n))
    metrics.set_gauge("sim.on_fraction", on_ticks / n if n else 0.0)


class NVPSystemSimulator:
    """Drives a :class:`NonvolatileProcessor` over one power trace."""

    def __init__(
        self,
        trace: PowerTrace,
        processor: NonvolatileProcessor,
        allocator: BitAllocator,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.trace = trace
        self.processor = processor
        self.allocator = allocator
        self.config = config if config is not None else SystemConfig()

    def run(self) -> SimulationResult:
        """Simulate the whole trace; returns the collected metrics."""
        cfg = self.config
        proc = self.processor
        proc.reset_counters()
        cap = cfg.build_capacitor()
        # Observability: the processor's tracer covers the whole device,
        # so the system layer and the capacitor report into it too. All
        # hooks are guarded by the hoisted flags below; with the default
        # NULL_TRACER every guard is False and the loop is unchanged.
        tracer = proc.tracer
        t_enabled = tracer.enabled
        t_events = tracer.events
        cap.attach_tracer(tracer)
        frontend = cfg.build_frontend()
        samples = self.trace.samples_uw
        converted = frontend.convert_trace(samples)
        # Dual-channel front end (§2.2): while the load runs, income
        # arrives through the bypass channel at its flat efficiency
        # instead of the storage round-trip. (Surplus beyond the load is
        # also banked at bypass efficiency — marginally optimistic, but
        # surplus-while-running is rare on these profiles.)
        direct = None
        if isinstance(frontend, DualChannelFrontend):
            direct = samples * frontend.bypass_efficiency
            direct[samples < frontend.min_input_uw] = 0.0
        n = len(samples)

        start_lanes = self.allocator.start_lane_bits()
        thresholds = derive_thresholds(
            backup_energy_uj=proc.backup_energy_uj(start_lanes),
            restore_energy_uj=proc.restore_energy_uj(start_lanes),
            run_power_uw=proc.run_power_uw(start_lanes) * proc.mix.mean_energy_weight,
            min_run_ticks=cfg.min_run_ticks,
            backup_margin=cfg.backup_margin,
        )
        # Bounded-range charging (Ma et al. [24]): bank a real run
        # buffer before starting, not just the bare viability threshold.
        start_level_uj = max(
            thresholds.start_energy_uj,
            cfg.start_fill_fraction * cfg.capacitor_uj,
        )
        if start_level_uj > cfg.capacitor_uj:
            raise SimulationError(
                f"start level {start_level_uj:.2f} uJ exceeds capacitor "
                f"capacity {cfg.capacitor_uj:.2f} uJ; this configuration "
                "can never start"
            )

        state = SystemState.OFF
        on_ticks = 0
        backup_ticks: List[int] = []
        bit_schedule = np.zeros(n, dtype=np.int16)
        lane_schedule = np.zeros(n, dtype=np.int16)
        mix_weight = proc.mix.mean_energy_weight
        resilience = proc.resilience
        outage_start = 0
        run_start = 0
        prev_lanes: Optional[List[int]] = None

        for tick in range(n):
            if t_enabled:
                tracer.tick = tick
            if direct is not None and state is SystemState.RUN:
                cap.charge(direct[tick])
            else:
                cap.charge(converted[tick])
            cap.leak()

            if state is SystemState.OFF:
                cap.drain_power(cfg.off_leakage_uw)
                if cap.energy_uj >= start_level_uj:
                    # RESTORE occupies this tick.
                    lanes = self.allocator.start_lane_bits()
                    restore_cost = proc.restore_energy_uj(lanes)
                    if resilience is not None and resilience.restore_blocked(tick):
                        # Brownout tail: the NVM read/wake-up silently
                        # fails. The attempt's energy is spent (which
                        # naturally stretches the outage) but the
                        # device stays OFF.
                        cap.draw(restore_cost)
                        resilience.telemetry.wasted_restore_energy_uj += restore_cost
                        continue
                    if not cap.draw(restore_cost):
                        raise SimulationError(
                            "start threshold did not cover restore energy"
                        )
                    proc.restore(lanes)
                    outcome = (
                        resilience.on_restore(tick)
                        if resilience is not None
                        else None
                    )
                    self.allocator.notify_restore(tick)
                    if outcome is not None and outcome.degraded:
                        self.allocator.notify_degraded_restore(tick, outcome)
                    state = SystemState.RUN
                    on_ticks += 1
                    if t_enabled:
                        tracer.span("outage", outage_start, tick, cat="system")
                        tracer.metrics.observe(
                            "outage.ticks", tick - outage_start, OUTAGE_TICKS_BUCKETS
                        )
                        run_start = tick
                        prev_lanes = None
                continue

            # state is RUN
            income_now = (
                direct[tick] if direct is not None else converted[tick]
            )
            lanes = self.allocator.allocate(income_now, cap.energy_uj, tick)
            requested_lanes = len(lanes) if t_events else 0
            run_power = proc.run_power_uw(lanes) * mix_weight
            tick_energy = run_power * TICK_S
            backup_reserve = proc.backup_energy_uj(lanes) * (1.0 + cfg.backup_margin)
            # The controller never widens SIMD into a configuration it
            # could not back up: drop lanes until the reserve invariant
            # holds (or only the current lane remains).
            while (
                self.allocator.allow_lane_narrowing
                and len(lanes) > 1
                and cap.energy_uj - tick_energy < backup_reserve
            ):
                lanes = lanes[:-1]
                run_power = proc.run_power_uw(lanes) * mix_weight
                tick_energy = run_power * TICK_S
                backup_reserve = proc.backup_energy_uj(lanes) * (1.0 + cfg.backup_margin)
            if t_events and requested_lanes > len(lanes):
                tracer.instant(
                    "lanes.narrowed",
                    tick=tick,
                    cat="system",
                    args={"requested": requested_lanes, "granted": len(lanes)},
                )

            if cap.energy_uj - tick_energy < backup_reserve:
                # Power emergency: back up with the reserved charge.
                # If the allocator just raised the bit budget past what
                # the remaining charge can persist, only the affordable
                # reliable slice of the state is backed up.
                backup_lanes = list(lanes)
                backup_cost = proc.backup_energy_uj(backup_lanes)
                while backup_lanes[0] > 1 and backup_cost > cap.energy_uj:
                    backup_lanes[0] -= 1
                    backup_cost = proc.backup_energy_uj(backup_lanes)
                if not cap.draw(backup_cost):
                    raise SimulationError("backup reserve was not available")
                if t_events and backup_lanes[0] < lanes[0]:
                    tracer.instant(
                        "backup.narrowed",
                        tick=tick,
                        cat="system",
                        args={"requested_bits": lanes[0], "granted_bits": backup_lanes[0]},
                    )
                lanes = backup_lanes
                proc.backup(tick, lanes)
                self.allocator.notify_backup(tick)
                backup_ticks.append(tick)
                state = SystemState.OFF
                on_ticks += 1
                if t_enabled:
                    tracer.span("run", run_start, tick, cat="system")
                    outage_start = tick
                continue

            shortfall = cap.drain_power(run_power)
            if shortfall > 0.0:
                raise SimulationError("run tick drained past available charge")
            executed = proc.execute_tick(lanes)
            self.allocator.notify_executed(tick, lanes, executed // len(lanes))
            bit_schedule[tick] = lanes[0]
            lane_schedule[tick] = len(lanes)
            on_ticks += 1
            if t_events and lanes != prev_lanes:
                tracer.instant(
                    "lanes",
                    tick=tick,
                    cat="system",
                    args={"bits": list(lanes), "width": len(lanes)},
                )
                prev_lanes = list(lanes)

        if t_enabled:
            if state is SystemState.OFF:
                tracer.span("outage", outage_start, n, cat="system")
            else:
                tracer.span("run", run_start, n, cat="system")
            _fold_run_metrics(tracer, bit_schedule, lane_schedule, on_ticks, n)

        return SimulationResult(
            total_ticks=n,
            forward_progress=proc.forward_progress,
            incidental_progress=proc.incidental_progress,
            backup_count=proc.backup_count,
            restore_count=proc.backup_engine.restore_count,
            on_ticks=on_ticks,
            income_energy_uj=self.trace.total_energy_uj,
            converted_energy_uj=float(converted.sum() * TICK_S),
            run_energy_uj=proc.run_energy_uj,
            backup_energy_uj=proc.backup_engine.total_backup_energy_uj,
            restore_energy_uj=proc.backup_engine.total_restore_energy_uj,
            bit_schedule=bit_schedule,
            lane_schedule=lane_schedule,
            backup_ticks=tuple(backup_ticks),
        )


def simulate_fixed_bits(
    trace: PowerTrace,
    bits: int,
    simd_width: int = 1,
    policy: Optional[RetentionPolicy] = None,
    mix: InstructionMix = DEFAULT_MIX,
    config: Optional[SystemConfig] = None,
    engine: str = "auto",
    resilience: Optional[ResilienceConfig] = None,
    tracer=None,
) -> SimulationResult:
    """Convenience: simulate a fixed-bitwidth NVP over ``trace``.

    This is the workhorse behind Figures 15, 16 and 25: sweep ``bits``
    from 8 down to 1 (and ``policy`` across retention shapes) and
    compare forward progress and backup counts.

    ``engine`` selects the implementation: ``"auto"``/``"fast"`` use
    the bit-exact vectorized fast path of :mod:`repro.system.fastsim`
    (the default — results are identical by contract, enforced by the
    differential suite); ``"reference"`` forces the per-tick loop of
    :class:`NVPSystemSimulator`.

    ``resilience`` attaches a device fault model + hardened restore
    path. The fast path does not replicate fault semantics, so any
    resilience config routes to the reference loop (for a rate-0,
    unpriced config the result is still bit-identical to the fast path
    — the restore validation trivially passes — which the differential
    suite in ``tests/test_resilience_faults.py`` enforces).

    ``tracer`` threads an observability :class:`~repro.obs.Tracer`
    through whichever engine runs; by contract (enforced by
    ``tests/test_obs_differential.py``) it never changes the result.
    """
    if engine not in ("auto", "fast", "reference"):
        raise SimulationError(
            f"engine must be 'auto', 'fast' or 'reference', got {engine!r}"
        )
    if engine != "reference" and resilience is None:
        from .fastsim import fast_fixed_run

        return fast_fixed_run(
            trace,
            bits,
            simd_width=simd_width,
            policy=policy,
            mix=mix,
            config=config,
            tracer=tracer,
        )
    processor = NonvolatileProcessor(
        policy=policy, mix=mix, resilience=resilience, tracer=tracer
    )
    allocator = FixedBitAllocator(bits, simd_width=simd_width)
    return NVPSystemSimulator(trace, processor, allocator, config=config).run()
