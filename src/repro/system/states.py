"""Execution states of the NVP system state machine."""

from __future__ import annotations

from enum import Enum

__all__ = ["SystemState"]


class SystemState(Enum):
    """States of the OFF/RESTORE/RUN/BACKUP machine.

    ``OFF`` covers both dead and charging (the capacitor charges
    whenever income arrives, regardless of state); ``RESTORE`` and
    ``BACKUP`` each occupy the tick in which their energy is spent.
    """

    OFF = "off"
    RESTORE = "restore"
    RUN = "run"
    BACKUP = "backup"
