"""Simulation output metrics.

The paper's two headline "execution metrics" are *forward progress*
(persistently committed instructions) and the *number of backups*
(Figures 15-16, 20-21, 25, 28), with system-on time appearing in the
Figure 9 analysis. :class:`SimulationResult` carries those plus the
energy ledger and the per-tick bit schedule that couples the system
simulation to kernel output quality (Figures 17-19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import SimulationError

__all__ = ["SimulationResult"]

#: Sentinel in the bit schedule for "system off this tick".
OFF_BITS: int = 0


@dataclass(frozen=True)
class SimulationResult:
    """Everything one system-level simulation run produced.

    Attributes
    ----------
    forward_progress:
        Committed instructions on the current-data lane (lane 0). For a
        non-incidental NVP this is the paper's forward progress metric.
    incidental_progress:
        Committed instructions on incidental SIMD lanes (lanes 1-3);
        the paper's incidental FP counts these too.
    bit_schedule:
        Per-tick reliable-bit budget of lane 0 (``0`` = system off) —
        the series plotted in Figure 18.
    lane_schedule:
        Per-tick active lane count (0 when off).
    """

    total_ticks: int
    forward_progress: int
    incidental_progress: int
    backup_count: int
    restore_count: int
    on_ticks: int
    income_energy_uj: float
    converted_energy_uj: float
    run_energy_uj: float
    backup_energy_uj: float
    restore_energy_uj: float
    bit_schedule: np.ndarray
    lane_schedule: np.ndarray
    backup_ticks: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.total_ticks <= 0:
            raise SimulationError("total_ticks must be positive")
        if len(self.bit_schedule) != self.total_ticks:
            raise SimulationError("bit_schedule length must equal total_ticks")
        if len(self.lane_schedule) != self.total_ticks:
            raise SimulationError("lane_schedule length must equal total_ticks")

    # -- headline metrics ---------------------------------------------------

    @property
    def total_progress(self) -> int:
        """Current-lane plus incidental-lane committed instructions."""
        return self.forward_progress + self.incidental_progress

    @property
    def system_on_fraction(self) -> float:
        """Fraction of ticks spent powered (RESTORE/RUN/BACKUP)."""
        return self.on_ticks / self.total_ticks

    @property
    def backup_energy_share(self) -> float:
        """Backup energy as a share of converted income energy.

        Section 3.2 reports 20.1-33 % for a precise NVP on the
        wristwatch profiles.
        """
        if self.converted_energy_uj <= 0.0:
            return 0.0
        return self.backup_energy_uj / self.converted_energy_uj

    # -- bit-utilisation series (Figures 17-18) ----------------------------

    def bit_utilization(self, word_bits: int = 8) -> Dict[int, float]:
        """Fraction of ticks at each bit level, 0 meaning OFF.

        Reproduces the right-hand distribution of Figure 18 (e.g.
        "OFF 59.7 %, 8 bits 19.8 %, sparse middle").
        """
        schedule = np.asarray(self.bit_schedule)
        out: Dict[int, float] = {}
        for level in range(0, word_bits + 1):
            out[level] = float(np.mean(schedule == level))
        return out

    def mean_active_bits(self) -> float:
        """Mean lane-0 bit budget over powered ticks (0 if never on)."""
        schedule = np.asarray(self.bit_schedule)
        active = schedule[schedule > 0]
        if active.size == 0:
            return 0.0
        return float(active.mean())

    def active_bit_series(self) -> np.ndarray:
        """Bit budgets of powered ticks only, in time order.

        This is the per-element bit schedule handed to kernels under
        dynamic bitwidth: element ``k`` of a frame is computed during
        the ``k``-th powered tick's budget.
        """
        schedule = np.asarray(self.bit_schedule)
        return schedule[schedule > 0].astype(np.int64)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"FP={self.forward_progress} (+{self.incidental_progress} incidental), "
            f"backups={self.backup_count}, on={100 * self.system_on_fraction:.1f}%, "
            f"backup-energy={100 * self.backup_energy_share:.1f}% of income"
        )
