"""Trace-parallel batched replay of fixed-bit system simulations.

:mod:`repro.system.fastsim` replays one (trace, config) point per call;
an experiment grid replays N of them, paying the per-task dispatch
(and, under the pooled tier, process spawn + pickling) N times. This
module stacks a whole grid into one **ragged batch**:

* every distinct (trace, front-end config) pair becomes one *slot* —
  its converted/bypass income series, the sticky-zero outage mask and
  the precomputed outage/income skip schedules are built once and
  padded into (S, n_max) arrays with per-slot valid lengths
  (:class:`BatchTracePlan`);
* every grid point becomes a *lane* referencing a slot plus its own
  scalar constants (thresholds, reserve, backup-cost table), and the
  replay loop runs in a compiled kernel (:mod:`repro._accel`) over the
  slot's row views.

The batch path is required to be **bit-exact**: every lane's
:class:`SimulationResult` is identical field for field to what
:func:`~repro.system.fastsim.fast_fixed_run` — and therefore the
reference :class:`~repro.system.simulator.NVPSystemSimulator` — would
produce. ``tests/test_batch_equivalence.py`` enforces that contract
differentially; ``tests/test_batch_properties.py`` pins the ragged
representation itself against the per-task precomputation.

Lanes the batch path cannot honor byte-for-byte are *refused*, never
approximated: setup errors (e.g. a start level above the capacitor
capacity) and kernel status codes hand the lane back to the caller,
who re-runs it through the per-task path where the identical
:class:`~repro.errors.SimulationError` surfaces naturally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import _accel
from .._validation import check_int_in_range
from ..energy.frontend import DualChannelFrontend
from ..energy.management import derive_thresholds
from ..energy.traces import TICK_S, PowerTrace
from ..errors import SimulationError
from ..nvm.retention import RetentionPolicy
from ..nvp.energy_model import CYCLES_PER_TICK
from ..nvp.isa import DEFAULT_MIX, InstructionMix
from ..nvp.processor import NonvolatileProcessor
from .config import SystemConfig
from .metrics import SimulationResult

__all__ = [
    "FixedLaneSpec",
    "LaneOutcome",
    "BatchTracePlan",
    "build_trace_plan",
    "chunk_lane_indices",
    "estimate_plan_bytes",
    "run_fixed_batch",
    "batch_available",
]


def batch_available() -> bool:
    """Whether the compiled batch kernels can run on this host."""
    return _accel.available()


# -- ragged trace plan --------------------------------------------------------


@dataclass(frozen=True)
class BatchTracePlan:
    """Padded per-slot trace precomputation shared by a batch.

    One *slot* per distinct (trace, front-end config) pair; lanes map
    onto slots via :attr:`slot_of`. All 2-D arrays are padded to the
    longest slot; :attr:`lengths` carries each slot's valid tick count
    and :meth:`valid_mask` materialises it as a boolean mask. Padding
    is never read by the replay kernel (its loop stops at the valid
    length), so its value is immaterial; zeros are used throughout
    except for the skip schedules, which pad with ``n`` (one past the
    last valid tick) to keep them sorted.
    """

    #: Per-slot valid tick counts (S,).
    lengths: np.ndarray
    #: Lane -> slot index (L,).
    slot_of: np.ndarray
    #: Storage-channel income per tick, padded (S, n_max) float64.
    conv: np.ndarray
    #: Bypass-channel income (dual-channel slots), padded; ``None``
    #: when no slot uses a dual-channel front end.
    direct: Optional[np.ndarray]
    #: Per-slot flag: does this slot use the bypass channel? (S,) bool.
    has_direct: np.ndarray
    #: Sticky-zero outage mask, padded (S, n_max) uint8: from an empty
    #: capacitor, this tick provably ends back at exactly 0.0.
    sticky: np.ndarray
    #: Sorted non-sticky tick indices, padded with ``n`` (S, k_max).
    nonsticky: np.ndarray
    #: Valid entry count of each ``nonsticky`` row (S,).
    nonsticky_len: np.ndarray
    #: Sorted positive-income tick indices, padded with ``n`` (S, m_max).
    income: np.ndarray
    #: Valid entry count of each ``income`` row (S,).
    income_len: np.ndarray

    def __len__(self) -> int:
        return int(self.slot_of.shape[0])

    @property
    def n_slots(self) -> int:
        return int(self.lengths.shape[0])

    def valid_mask(self) -> np.ndarray:
        """Boolean (S, n_max) mask of valid (non-padding) ticks."""
        n_max = self.conv.shape[1]
        return np.arange(n_max)[None, :] < self.lengths[:, None]

    def converted_row(self, slot: int) -> np.ndarray:
        """The slot's unpadded converted-income series (a view)."""
        return self.conv[slot, : int(self.lengths[slot])]


def _slot_key(trace: PowerTrace, config: SystemConfig) -> Tuple[int, SystemConfig]:
    return (id(trace), config)


def build_trace_plan(
    entries: Sequence[Tuple[PowerTrace, SystemConfig]],
) -> BatchTracePlan:
    """Build the ragged batch plan for ``entries`` (one lane each).

    Precomputes, per distinct (trace, config) slot, exactly what
    ``fast_fixed_run`` precomputes per task — front-end conversion,
    bypass series, the sticky-zero predicate and the sorted skip
    schedules — using the identical IEEE-754 operations, then pads
    everything to the longest slot.
    """
    slots: Dict[Tuple[int, SystemConfig], int] = {}
    slot_conv: List[np.ndarray] = []
    slot_direct: List[Optional[np.ndarray]] = []
    slot_sticky: List[np.ndarray] = []
    slot_nonsticky: List[np.ndarray] = []
    slot_income: List[np.ndarray] = []
    slot_of = np.zeros(len(entries), dtype=np.int64)

    for lane, (trace, config) in enumerate(entries):
        key = _slot_key(trace, config)
        slot = slots.get(key)
        if slot is None:
            slot = len(slot_conv)
            slots[key] = slot
            samples = trace.samples_uw
            frontend = config.build_frontend()
            converted = frontend.convert_trace(samples)
            direct = None
            if isinstance(frontend, DualChannelFrontend):
                direct = samples * frontend.bypass_efficiency
                direct[samples < frontend.min_input_uw] = 0.0
            dt = TICK_S
            capacity = float(config.capacitor_uj)
            leak_frac = float(config.capacitor_leak_per_s)
            floor_e = float(config.capacitor_leak_floor_uw) * dt
            off_e = float(config.off_leakage_uw) * dt
            inc0 = np.minimum(converted * dt, capacity)
            loss0 = np.minimum(inc0, inc0 * leak_frac * dt + floor_e)
            sticky = (inc0 - loss0) <= off_e
            slot_conv.append(np.ascontiguousarray(converted, dtype=np.float64))
            slot_direct.append(
                None
                if direct is None
                else np.ascontiguousarray(direct, dtype=np.float64)
            )
            slot_sticky.append(sticky.astype(np.uint8))
            slot_nonsticky.append(np.flatnonzero(~sticky).astype(np.int64))
            slot_income.append(np.flatnonzero(converted > 0.0).astype(np.int64))
        slot_of[lane] = slot

    n_slots = len(slot_conv)
    lengths = np.array([len(c) for c in slot_conv], dtype=np.int64)
    n_max = int(lengths.max()) if n_slots else 0
    k_max = max((len(a) for a in slot_nonsticky), default=0)
    m_max = max((len(a) for a in slot_income), default=0)

    conv = np.zeros((n_slots, n_max), dtype=np.float64)
    sticky = np.zeros((n_slots, n_max), dtype=np.uint8)
    nonsticky = np.zeros((n_slots, k_max), dtype=np.int64)
    income = np.zeros((n_slots, m_max), dtype=np.int64)
    nonsticky_len = np.zeros(n_slots, dtype=np.int64)
    income_len = np.zeros(n_slots, dtype=np.int64)
    has_direct = np.zeros(n_slots, dtype=bool)
    any_direct = any(d is not None for d in slot_direct)
    direct = np.zeros((n_slots, n_max), dtype=np.float64) if any_direct else None

    for s in range(n_slots):
        n = int(lengths[s])
        conv[s, :n] = slot_conv[s]
        sticky[s, :n] = slot_sticky[s]
        ns = slot_nonsticky[s]
        nonsticky[s, : len(ns)] = ns
        nonsticky[s, len(ns):] = n
        nonsticky_len[s] = len(ns)
        inc = slot_income[s]
        income[s, : len(inc)] = inc
        income[s, len(inc):] = n
        income_len[s] = len(inc)
        if slot_direct[s] is not None:
            has_direct[s] = True
            direct[s, :n] = slot_direct[s]  # type: ignore[index]

    return BatchTracePlan(
        lengths=lengths,
        slot_of=slot_of,
        conv=conv,
        direct=direct,
        has_direct=has_direct,
        sticky=sticky,
        nonsticky=nonsticky,
        nonsticky_len=nonsticky_len,
        income=income,
        income_len=income_len,
    )


# -- chunk planning -----------------------------------------------------------
#
# A single global plan pads every slot to the longest trace in the
# grid: (S, n_max) float64/int64 arrays whose footprint — and, worse,
# whose explicit pad *writes* (the skip schedules fill with ``n`` past
# the valid length) — scale as S x n_max even when most slots are far
# shorter. Chunking packs length-similar slots together so each shard
# pads only to its own longest member, bounding both memory and the
# pad-write cost; because the replay kernel never reads padding, any
# chunking of a grid is bit-exact with the unchunked plan by
# construction (pinned by ``tests/test_batch_chunks.py``).

#: Worst-case plan bytes per (slot, tick): conv float64 + sticky uint8
#: + nonsticky int64 + income int64 + optional direct float64. The
#: skip schedules are at most one entry per tick, so this bounds them.
_PLAN_BYTES_PER_TICK = 33


def estimate_plan_bytes(lengths: Sequence[int]) -> int:
    """Upper-bound the padded-plan footprint for slots of ``lengths``.

    ``lengths`` holds one entry per *slot* (distinct (trace, config)
    pair); the estimate is ``n_slots * max(lengths)`` ticks at the
    worst-case per-tick width, matching how :func:`build_trace_plan`
    pads every per-slot array to the longest member.
    """
    if not lengths:
        return 0
    return int(len(lengths)) * int(max(lengths)) * _PLAN_BYTES_PER_TICK


def chunk_lane_indices(
    lengths: Sequence[int],
    keys: Optional[Sequence] = None,
    max_lanes: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> List[List[int]]:
    """Partition lanes into memory-bounded, dedup-aware chunks.

    Parameters
    ----------
    lengths:
        Per-lane trace tick counts (cheap to obtain without
        synthesising the trace — see ``synth_trace_ticks``).
    keys:
        Optional per-lane dedup keys: lanes with equal keys share one
        plan slot (same (trace, config) precompute) and are kept in
        the same chunk whenever budgets allow, so the shared slot is
        built once per chunk rather than once per lane. ``None``
        treats every lane as its own slot.
    max_lanes:
        Lane-count budget per chunk (``--batch-chunk-lanes``).
    max_bytes:
        Padded-plan byte budget per chunk, compared against
        :func:`estimate_plan_bytes`. A chunk always admits at least
        one dedup group even when that group alone exceeds the budget
        (budgets bound waste, they cannot split a slot).

    Returns a list of chunks — each a sorted list of original lane
    indices — covering every lane exactly once. The partition is a
    pure function of the arguments (deterministic): groups are packed
    longest-first so a chunk's padding is set by its first member and
    only length-similar slots share a shard.
    """
    n_lanes = len(lengths)
    if keys is not None and len(keys) != n_lanes:
        raise ValueError(
            f"keys has {len(keys)} entries for {n_lanes} lanes"
        )
    if max_lanes is not None:
        max_lanes = check_int_in_range(max_lanes, "max_lanes", 1, 1 << 40)
    if max_bytes is not None:
        max_bytes = check_int_in_range(max_bytes, "max_bytes", 1, 1 << 60)
    if n_lanes == 0:
        return []
    if max_lanes is None and max_bytes is None:
        return [list(range(n_lanes))]

    # Group lanes by dedup key, preserving first-seen order for ties.
    group_of: Dict = {}
    groups: List[List[int]] = []
    for lane in range(n_lanes):
        key = keys[lane] if keys is not None else lane
        g = group_of.get(key)
        if g is None:
            group_of[key] = len(groups)
            groups.append([lane])
        else:
            groups[g].append(lane)

    # Split any group larger than the lane budget (its pieces still
    # dedup within their own chunk), then order units longest-first.
    units: List[Tuple[int, int, List[int]]] = []  # (length, order, lanes)
    for order, lanes in enumerate(groups):
        length = max(int(lengths[i]) for i in lanes)
        if max_lanes is not None and len(lanes) > max_lanes:
            for off in range(0, len(lanes), max_lanes):
                units.append((length, order, lanes[off: off + max_lanes]))
        else:
            units.append((length, order, lanes))
    units.sort(key=lambda u: (-u[0], u[1]))

    chunks: List[List[int]] = []
    cur: List[int] = []
    cur_slots = 0
    cur_ticks = 0  # n_max of the open chunk (first unit, longest-first)
    for length, _, lanes in units:
        if cur:
            over_lanes = (
                max_lanes is not None and len(cur) + len(lanes) > max_lanes
            )
            over_bytes = (
                max_bytes is not None
                and (cur_slots + 1) * cur_ticks * _PLAN_BYTES_PER_TICK
                > max_bytes
            )
            if over_lanes or over_bytes:
                chunks.append(cur)
                cur, cur_slots, cur_ticks = [], 0, 0
        if not cur:
            cur_ticks = length
        cur.extend(lanes)
        cur_slots += 1
    if cur:
        chunks.append(cur)
    for chunk in chunks:
        chunk.sort()
    return chunks


# -- lane specs and outcomes --------------------------------------------------


@dataclass(frozen=True)
class FixedLaneSpec:
    """One fixed-bit grid point, mirroring ``fast_fixed_run``'s inputs."""

    trace: PowerTrace
    bits: int
    simd_width: int = 1
    policy: Optional[RetentionPolicy] = None
    mix: InstructionMix = DEFAULT_MIX
    config: Optional[SystemConfig] = None

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig()


@dataclass(frozen=True)
class LaneOutcome:
    """Result of one batch lane: a result, or a refusal reason.

    ``refused`` lanes carry no result; the caller re-runs them through
    the per-task path (where errors raise with the reference message).
    """

    result: Optional[SimulationResult] = None
    refused: Optional[str] = None
    wall_s: float = 0.0


@dataclass
class _FixedLaneSetup:
    """Hoisted per-lane constants (the fastsim setup block, verbatim)."""

    dp: np.ndarray
    ip: np.ndarray
    backup_cost: np.ndarray
    income_energy_uj: float


def _fixed_lane_constants(spec: FixedLaneSpec) -> Tuple[np.ndarray, np.ndarray]:
    """The trace-independent half of the lane setup: ``(dp, backup_cost)``.

    Everything here depends only on (bits, simd_width, policy, mix,
    config) — never on the trace — so :func:`run_fixed_batch` memoises
    it across the lanes of a run (fleet grids repeat a handful of
    device archetypes across thousands of distinct traces).
    """
    cfg = spec.resolved_config()
    proc = NonvolatileProcessor(policy=spec.policy, mix=spec.mix)
    bits = check_int_in_range(spec.bits, "bits", 1, proc.energy_model.word_bits)
    simd_width = check_int_in_range(spec.simd_width, "simd_width", 1, 4)
    lanes = [bits] * simd_width

    mix_weight = proc.mix.mean_energy_weight
    thresholds = derive_thresholds(
        backup_energy_uj=proc.backup_energy_uj(lanes),
        restore_energy_uj=proc.restore_energy_uj(lanes),
        run_power_uw=proc.run_power_uw(lanes) * mix_weight,
        min_run_ticks=cfg.min_run_ticks,
        backup_margin=cfg.backup_margin,
    )
    start_level = max(
        thresholds.start_energy_uj,
        cfg.start_fill_fraction * cfg.capacitor_uj,
    )
    if start_level > cfg.capacitor_uj:
        raise SimulationError(
            f"start level {start_level:.2f} uJ exceeds capacitor "
            f"capacity {cfg.capacitor_uj:.2f} uJ; this configuration "
            "can never start"
        )

    dt = TICK_S
    run_power = proc.run_power_uw(lanes) * mix_weight
    backup_cost = np.zeros(bits + 1, dtype=np.float64)
    for b0 in range(1, bits + 1):
        backup_cost[b0] = proc.backup_energy_uj([b0] + lanes[1:])

    dp = np.array(
        [
            dt,
            float(cfg.capacitor_uj),
            float(cfg.capacitor_leak_per_s),
            float(cfg.capacitor_leak_floor_uw) * dt,
            float(cfg.off_leakage_uw) * dt,
            run_power * dt,
            proc.backup_energy_uj(lanes) * (1.0 + cfg.backup_margin),
            proc.restore_energy_uj(lanes),
            start_level,
            CYCLES_PER_TICK / proc.mix.mean_cycles,
            run_power * 1.0e-4,
        ],
        dtype=np.float64,
    )
    return dp, backup_cost


def _fixed_lane_setup(
    spec: FixedLaneSpec,
    slot: int,
    plan: BatchTracePlan,
    memo: Optional[Dict] = None,
) -> _FixedLaneSetup:
    """Per-lane setup mirroring ``fast_fixed_run``'s setup phase.

    Raises the same :class:`SimulationError` the fast path would for an
    unstartable configuration; the caller converts that into a refusal
    so the per-task tier re-raises it through the normal machinery.
    ``memo`` caches the trace-independent constants within one call of
    :func:`run_fixed_batch`; policy/mix are keyed by identity, with the
    references pinned in the memo value so the ids stay valid for the
    memo's lifetime.
    """
    if memo is None:
        dp, backup_cost = _fixed_lane_constants(spec)
    else:
        key = (
            spec.bits,
            spec.simd_width,
            id(spec.policy),
            id(spec.mix),
            spec.config,
        )
        hit = memo.get(key)
        if hit is not None and hit[0] is spec.policy and hit[1] is spec.mix:
            dp, backup_cost = hit[2], hit[3]
        else:
            dp, backup_cost = _fixed_lane_constants(spec)
            memo[key] = (spec.policy, spec.mix, dp, backup_cost)

    n = int(plan.lengths[slot])
    ip = np.array(
        [
            n,
            int(plan.nonsticky_len[slot]),
            int(plan.income_len[slot]),
            int(spec.bits),
            int(spec.simd_width),
            1 if plan.has_direct[slot] else 0,
            n,  # backup_ticks capacity: one backup needs >= 1 run tick
        ],
        dtype=np.int64,
    )
    return _FixedLaneSetup(
        dp=dp,
        ip=ip,
        backup_cost=backup_cost,
        income_energy_uj=spec.trace.total_energy_uj,
    )


def run_fixed_batch(
    specs: Sequence[FixedLaneSpec],
    plan: Optional[BatchTracePlan] = None,
) -> List[LaneOutcome]:
    """Replay every lane of ``specs`` through the batch kernel.

    Returns one :class:`LaneOutcome` per lane, in order. Lanes are
    never approximated: any setup error or kernel status refuses the
    lane instead. With the accelerator unavailable every lane refuses.
    """
    if not batch_available():
        return [LaneOutcome(refused="accelerator unavailable") for _ in specs]
    if plan is None:
        plan = build_trace_plan(
            [(spec.trace, spec.resolved_config()) for spec in specs]
        )
    outcomes: List[LaneOutcome] = []
    scratch_backups: Optional[np.ndarray] = None
    setup_memo: Dict = {}
    for lane, spec in enumerate(specs):
        start = time.perf_counter()
        slot = int(plan.slot_of[lane])
        n = int(plan.lengths[slot])
        try:
            setup = _fixed_lane_setup(spec, slot, plan, memo=setup_memo)
        except SimulationError as exc:
            outcomes.append(
                LaneOutcome(
                    refused=f"setup raised: {exc}",
                    wall_s=time.perf_counter() - start,
                )
            )
            continue
        if scratch_backups is None or scratch_backups.shape[0] < n:
            scratch_backups = np.zeros(max(n, 1), dtype=np.int64)
        bit_schedule = np.zeros(n, dtype=np.int16)
        lane_schedule = np.zeros(n, dtype=np.int16)
        iout = np.zeros(4, dtype=np.int64)
        dout = np.zeros(3, dtype=np.float64)
        status = _accel.fixed_replay(
            plan.conv[slot],
            plan.direct[slot] if plan.direct is not None else None,
            plan.sticky[slot],
            plan.nonsticky[slot],
            plan.income[slot],
            setup.dp,
            setup.ip,
            setup.backup_cost,
            bit_schedule,
            lane_schedule,
            scratch_backups,
            iout,
            dout,
        )
        if status != 0:
            outcomes.append(
                LaneOutcome(
                    refused=f"kernel status {status}",
                    wall_s=time.perf_counter() - start,
                )
            )
            continue
        committed = int(iout[0])
        n_backups = int(iout[2])
        converted_view = plan.converted_row(slot)
        result = SimulationResult(
            total_ticks=n,
            forward_progress=committed,
            incidental_progress=committed * (spec.simd_width - 1),
            backup_count=n_backups,
            restore_count=int(iout[3]),
            on_ticks=int(iout[1]),
            income_energy_uj=setup.income_energy_uj,
            converted_energy_uj=float(converted_view.sum() * TICK_S),
            run_energy_uj=float(dout[0]),
            backup_energy_uj=float(dout[1]),
            restore_energy_uj=float(dout[2]),
            bit_schedule=bit_schedule,
            lane_schedule=lane_schedule,
            backup_ticks=tuple(int(b) for b in scratch_backups[:n_backups]),
        )
        outcomes.append(
            LaneOutcome(result=result, wall_s=time.perf_counter() - start)
        )
    return outcomes
