"""System-level configuration (the simulator inputs of Figure 10).

The paper lists the system simulator's inputs as: "the system capacitor
size, capacitor leakage, chip leakage, front-end circuit efficiency,
system start threshold, backup energy threshold, and recovery
threshold". :class:`SystemConfig` carries exactly those knobs (the
thresholds being derived per-configuration from backup/restore energies
via :func:`repro.energy.management.derive_thresholds`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._validation import check_int_in_range, check_non_negative, check_positive
from ..energy.capacitor import Capacitor
from ..energy.frontend import DualChannelFrontend, RectifierFrontend
from ..errors import ConfigurationError

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of the NVP system simulation.

    Defaults are jointly calibrated (DESIGN.md §5.3) against the
    published system behaviour: backup energy share of 20-33 % for a
    precise NVP, several hundred to ~1200 backups per 10 s trace, and
    the Figure 15/16 scaling trends.
    """

    #: On-chip capacitor capacity (µJ) — small, per the NVP paradigm.
    capacitor_uj: float = 4.5
    #: Fraction of capacity the cap must reach before a start (on top
    #: of the derived start threshold): the bounded-range charging
    #: policy of Ma et al. [24], which banks a real run buffer instead
    #: of starting the instant the bare threshold is met.
    start_fill_fraction: float = 0.35
    #: Proportional capacitor self-discharge (fraction per second).
    capacitor_leak_per_s: float = 0.02
    #: Constant parasitic draw from the cap while charged (µW).
    capacitor_leak_floor_uw: float = 0.5
    #: Front-end asymptotic conversion efficiency.
    frontend_eta_max: float = 0.82
    #: Front-end half-efficiency input power (µW).
    frontend_half_power_uw: float = 12.0
    #: Front-end cold-start minimum input (µW).
    frontend_min_input_uw: float = 2.0
    #: Guaranteed execution burst after a start (ticks).
    min_run_ticks: int = 10
    #: Safety margin on the backup-energy reserve.
    backup_margin: float = 0.25
    #: Chip leakage while the NVP is off (µW); NV state needs none,
    #: this covers the power-detection circuitry.
    off_leakage_uw: float = 0.2
    #: Dual-channel front end (Sheng et al. [57], discussed in §2.2):
    #: while the NVP runs, income bypasses the storage round-trip and
    #: reaches the load at ``dual_channel_efficiency``.
    dual_channel: bool = False
    dual_channel_efficiency: float = 0.92

    def __post_init__(self) -> None:
        check_positive(self.capacitor_uj, "capacitor_uj")
        check_positive(self.start_fill_fraction, "start_fill_fraction")
        if self.start_fill_fraction > 1.0:
            raise ConfigurationError("start_fill_fraction must not exceed 1")
        check_non_negative(self.capacitor_leak_per_s, "capacitor_leak_per_s")
        check_non_negative(self.capacitor_leak_floor_uw, "capacitor_leak_floor_uw")
        check_positive(self.frontend_eta_max, "frontend_eta_max")
        check_positive(self.frontend_half_power_uw, "frontend_half_power_uw")
        check_non_negative(self.frontend_min_input_uw, "frontend_min_input_uw")
        check_int_in_range(self.min_run_ticks, "min_run_ticks", 1)
        check_non_negative(self.backup_margin, "backup_margin")
        check_non_negative(self.off_leakage_uw, "off_leakage_uw")
        if not 0.0 < self.dual_channel_efficiency <= 1.0:
            raise ConfigurationError("dual_channel_efficiency must be in (0, 1]")

    def build_capacitor(self) -> Capacitor:
        """Instantiate the configured on-chip capacitor (empty)."""
        return Capacitor(
            capacity_uj=self.capacitor_uj,
            leakage_fraction_per_s=self.capacitor_leak_per_s,
            leakage_floor_uw=self.capacitor_leak_floor_uw,
        )

    def build_frontend(self) -> RectifierFrontend:
        """Instantiate the configured AC-DC front end."""
        if self.dual_channel:
            return DualChannelFrontend(
                eta_max=self.frontend_eta_max,
                half_power_uw=self.frontend_half_power_uw,
                min_input_uw=self.frontend_min_input_uw,
                bypass_efficiency=self.dual_channel_efficiency,
            )
        return RectifierFrontend(
            eta_max=self.frontend_eta_max,
            half_power_uw=self.frontend_half_power_uw,
            min_input_uw=self.frontend_min_input_uw,
        )
