"""Command-line interface: regenerate any paper artifact from a shell.

Usage (also via ``python -m repro``):

    repro-experiments list                 # all artifact ids
    repro-experiments run fig28            # regenerate one artifact
    repro-experiments run fig15 fig16      # several at once
    repro-experiments run all              # everything (minutes)
    repro-experiments run all --workers 4  # ... across four processes
    repro-experiments run fig15 --cache-dir .cache   # warm across runs
    repro-experiments run fig15 --no-cache # force fresh simulations
    repro-experiments profiles             # Figure 2 trace summaries
    repro-experiments calibration          # the jointly-calibrated constants
    repro-experiments cache info --cache-dir .cache   # entry/byte counts
    repro-experiments cache clear --cache-dir .cache  # drop all entries

``--workers``/``--cache-dir``/``--no-cache`` configure the experiment
engine (:mod:`repro.analysis.engine`) for the whole invocation. The
cache holds both fixed-bit and incidental-executive results (the
latter under an ``exec-`` filename prefix).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import engine
from .analysis import experiments as E
from .analysis.reporting import format_table
from .errors import ConfigurationError

__all__ = ["main", "EXPERIMENT_RUNNERS"]

#: Artifact id -> zero-argument runner.
EXPERIMENT_RUNNERS: Dict[str, Callable[[], "E.ExperimentResult"]] = {
    "fig02": E.fig02_power_profiles,
    "fig03": E.fig03_outage_statistics,
    "fig04": E.fig04_sttram_write,
    "fig05": E.fig05_retention_shaping,
    "sec2.2": E.sec22_wait_compute,
    "fig09": E.fig09_timing_behavior,
    "fig12": E.fig12_alu_quality,
    "fig14": E.fig14_memory_quality,
    "fig15": E.fig15_forward_progress,
    "fig16": E.fig16_backup_counts,
    "fig18": E.fig18_bit_utilization,
    "fig20": E.fig20_dynamic_vs_fixed,
    "fig21": E.fig21_minbits4,
    "fig22": E.fig22_retention_failures,
    "fig24": E.fig24_quality_vs_policy,
    "fig25": E.fig25_fp_retention,
    "fig27": E.fig27_recomputation,
    "table2": E.table2_qos,
    "fig28": E.fig28_overall_gain,
    "sec7": E.sec7_frame_rates,
}


def _cmd_list() -> int:
    rows = []
    for artifact_id, runner in EXPERIMENT_RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        rows.append((artifact_id, doc))
    print(format_table(("artifact", "description"), rows))
    return 0


def _cmd_run(artifact_ids: Sequence[str]) -> int:
    ids = list(artifact_ids)
    if ids == ["all"]:
        ids = list(EXPERIMENT_RUNNERS)
    unknown = [a for a in ids if a not in EXPERIMENT_RUNNERS]
    if unknown:
        print(
            f"unknown artifact(s): {', '.join(unknown)}; "
            "run 'repro-experiments list'",
            file=sys.stderr,
        )
        return 2
    for artifact_id in ids:
        result = EXPERIMENT_RUNNERS[artifact_id]()
        print(result.as_table())
        print()
    return 0


def _cmd_profiles() -> int:
    from .energy import outage_statistics, standard_profiles

    rows = []
    for trace in standard_profiles():
        stats = outage_statistics(trace)
        rows.append(
            (
                trace.name,
                round(trace.mean_power_uw, 1),
                round(trace.peak_power_uw, 0),
                round(trace.total_energy_uj, 1),
                stats.count,
                stats.max_duration_ticks,
            )
        )
    print(
        format_table(
            ("profile", "mean_uW", "peak_uW", "energy_uJ", "emergencies", "max_outage"),
            rows,
        )
    )
    return 0


def _cmd_calibration() -> int:
    from .nvm.retention import LinearRetention, LogRetention, ParabolaRetention
    from .nvm.sttram import RETENTION_10MS_S, RETENTION_ONE_DAY_S, STTRAMModel
    from .nvp.energy_model import EnergyModel
    from .system.config import SystemConfig

    model = EnergyModel()
    cell = STTRAMModel()
    config = SystemConfig()
    rows = [
        ("NVP power @ 8 bits, 1 lane (uW)", round(model.uniform_run_power_uw(8), 1)),
        ("NVP power @ 1 bit, 1 lane (uW)", round(model.uniform_run_power_uw(1), 1)),
        ("NVP power @ 4 lanes x 8 bits (uW)", round(model.uniform_run_power_uw(8, 4), 1)),
        ("backup energy, precise (uJ)", model.backup_base_uj),
        ("restore energy (uJ)", model.restore_base_uj),
        ("capacitor (uJ)", config.capacitor_uj),
        ("start fill fraction", config.start_fill_fraction),
        (
            "STT-RAM saving 1day->10ms",
            round(cell.energy_saving_fraction(RETENTION_ONE_DAY_S, RETENTION_10MS_S), 3),
        ),
        ("rel. backup energy: linear", round(LinearRetention().relative_write_energy(cell), 3)),
        ("rel. backup energy: log", round(LogRetention().relative_write_energy(cell), 3)),
        ("rel. backup energy: parabola", round(ParabolaRetention().relative_write_energy(cell), 3)),
    ]
    print(format_table(("constant", "value"), rows))
    return 0


def _cmd_cache(action: str, cache_dir: Optional[str]) -> int:
    if cache_dir is None:
        print(
            "repro-experiments cache: error: --cache-dir is required",
            file=sys.stderr,
        )
        return 2
    try:
        cache = engine.ResultCache(cache_dir)
    except (ConfigurationError, OSError) as exc:
        print(f"repro-experiments cache: error: {exc}", file=sys.stderr)
        return 2
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.cache_dir}")
        return 0
    info = cache.info()
    rows = [
        ("path", info["path"]),
        ("entries", info["entries"]),
        ("fixed-bit", info["fixed"]),
        ("executive", info["executive"]),
        ("bytes", info["bytes"]),
    ]
    print(format_table(("cache", "value"), rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiments`` / ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate artifacts of the incidental-computing reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list every artifact id")
    run = sub.add_parser("run", help="regenerate artifacts")
    run.add_argument("artifacts", nargs="+", help="artifact ids, or 'all'")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes for experiment grids (default: 1, serial)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk result cache (reused across runs)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (in-memory and on-disk)",
    )
    sub.add_parser("profiles", help="summarise the five power profiles")
    sub.add_parser("calibration", help="print the calibrated constants")
    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="the cache directory to inspect or clear",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        try:
            engine.configure(
                workers=args.workers,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
            )
        except ConfigurationError as exc:
            print(f"repro-experiments run: error: {exc}", file=sys.stderr)
            return 2
        return _cmd_run(args.artifacts)
    if args.command == "profiles":
        return _cmd_profiles()
    if args.command == "cache":
        return _cmd_cache(args.action, args.cache_dir)
    return _cmd_calibration()


if __name__ == "__main__":
    raise SystemExit(main())
