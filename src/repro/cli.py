"""Command-line interface: regenerate any paper artifact from a shell.

Usage (also via ``python -m repro``):

    repro-experiments list                 # all artifact ids
    repro-experiments run fig28            # regenerate one artifact
    repro-experiments run fig15 fig16      # several at once
    repro-experiments run all              # everything (minutes)
    repro-experiments run all --workers 4  # ... across four processes
    repro-experiments run fig15 --cache-dir .cache   # warm across runs
    repro-experiments run fig15 --no-cache # force fresh simulations
    repro-experiments resilience           # fault-rate sweep vs hardened restore
    repro-experiments resilience --rates 0,0.1 --policies linear
    repro-experiments profiles             # Figure 2 trace summaries
    repro-experiments calibration          # the jointly-calibrated constants
    repro-experiments cache info --cache-dir .cache   # entry/byte/quarantine counts
    repro-experiments cache verify --cache-dir .cache # scan + quarantine corrupt entries
    repro-experiments cache clear --cache-dir .cache  # drop all entries
    repro-experiments run all --telemetry-log run.jsonl  # record run telemetry
    repro-experiments report --log run.jsonl          # summarise a recorded campaign
    repro-experiments run fig15 --trace-out trace.json --metrics-out metrics.json
    repro-experiments trace summary trace.json        # top energy consumers + outages
    repro-experiments serve --cache-dir .cache --port 8787  # campaign service
    repro-experiments submit --url http://127.0.0.1:8787 --file campaign.json
    repro-experiments runtable --file campaign.json --output run_table.csv
    repro-experiments runtable --file campaign.json --reps 8  # seeded sweep
    repro-experiments stats --table run_table.csv --metric total_progress \
        --slice-a policy=precise --slice-b policy=linear
    repro-experiments bench-history --root . --output history.csv
    repro-experiments bench-history --baseline /tmp/base --tolerance 0.1

``--trace-out`` records a device-level trace of every *computed* task
(cache hits carry no trace) as Chrome trace-event JSON — load it in
chrome://tracing or https://ui.perfetto.dev — or as a raw JSONL event
log when the path ends in ``.jsonl``. ``--metrics-out`` writes the
merged device metrics registry (see :mod:`repro.obs`).

``--workers``/``--cache-dir``/``--no-cache`` configure the experiment
engine (:mod:`repro.analysis.engine`) for the whole invocation;
``--task-timeout``/``--retries``/``--retry-backoff`` tune its fault
tolerance, and ``--telemetry-log`` appends one JSONL event per grid
run and per task (see :mod:`repro.analysis.telemetry`). The cache
holds fixed-bit and incidental-executive results plus resilience
campaign points (``exec-`` / ``res-`` filename prefixes); corrupt
entries are quarantined into its ``quarantine/`` subdirectory, never
silently dropped.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import engine, telemetry
from .analysis import experiments as E
from .analysis.reporting import format_table
from .errors import ConfigurationError, EngineExecutionError
from .obs import capture as obs_capture

__all__ = ["main", "EXPERIMENT_RUNNERS"]

#: Artifact id -> zero-argument runner.
EXPERIMENT_RUNNERS: Dict[str, Callable[[], "E.ExperimentResult"]] = {
    "fig02": E.fig02_power_profiles,
    "fig03": E.fig03_outage_statistics,
    "fig04": E.fig04_sttram_write,
    "fig05": E.fig05_retention_shaping,
    "sec2.2": E.sec22_wait_compute,
    "fig09": E.fig09_timing_behavior,
    "fig12": E.fig12_alu_quality,
    "fig14": E.fig14_memory_quality,
    "fig15": E.fig15_forward_progress,
    "fig16": E.fig16_backup_counts,
    "fig18": E.fig18_bit_utilization,
    "fig20": E.fig20_dynamic_vs_fixed,
    "fig21": E.fig21_minbits4,
    "fig22": E.fig22_retention_failures,
    "fig24": E.fig24_quality_vs_policy,
    "fig25": E.fig25_fp_retention,
    "fig27": E.fig27_recomputation,
    "table2": E.table2_qos,
    "fig28": E.fig28_overall_gain,
    "sec7": E.sec7_frame_rates,
    "resilience": E.resilience_campaign,
    "fleet": E.fleet_campaign,
    "runtable": E.runtable_stats,
}


def _cmd_list() -> int:
    rows = []
    for artifact_id, runner in EXPERIMENT_RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        rows.append((artifact_id, doc))
    print(format_table(("artifact", "description"), rows))
    return 0


def _cmd_run(artifact_ids: Sequence[str]) -> int:
    ids = list(artifact_ids)
    if ids == ["all"]:
        ids = list(EXPERIMENT_RUNNERS)
    unknown = [a for a in ids if a not in EXPERIMENT_RUNNERS]
    if unknown:
        print(
            f"unknown artifact(s): {', '.join(unknown)}; "
            "run 'repro-experiments list'",
            file=sys.stderr,
        )
        return 2
    for artifact_id in ids:
        try:
            result = EXPERIMENT_RUNNERS[artifact_id]()
        except EngineExecutionError as exc:
            print(
                f"repro-experiments run: error: {artifact_id} failed: {exc}",
                file=sys.stderr,
            )
            return 1
        print(result.as_table())
        print()
    return 0


def _cmd_profiles() -> int:
    from .energy import outage_statistics, standard_profiles

    rows = []
    for trace in standard_profiles():
        stats = outage_statistics(trace)
        rows.append(
            (
                trace.name,
                round(trace.mean_power_uw, 1),
                round(trace.peak_power_uw, 0),
                round(trace.total_energy_uj, 1),
                stats.count,
                stats.max_duration_ticks,
            )
        )
    print(
        format_table(
            ("profile", "mean_uW", "peak_uW", "energy_uJ", "emergencies", "max_outage"),
            rows,
        )
    )
    return 0


def _cmd_calibration() -> int:
    from .nvm.retention import LinearRetention, LogRetention, ParabolaRetention
    from .nvm.sttram import RETENTION_10MS_S, RETENTION_ONE_DAY_S, STTRAMModel
    from .nvp.energy_model import EnergyModel
    from .system.config import SystemConfig

    model = EnergyModel()
    cell = STTRAMModel()
    config = SystemConfig()
    rows = [
        ("NVP power @ 8 bits, 1 lane (uW)", round(model.uniform_run_power_uw(8), 1)),
        ("NVP power @ 1 bit, 1 lane (uW)", round(model.uniform_run_power_uw(1), 1)),
        ("NVP power @ 4 lanes x 8 bits (uW)", round(model.uniform_run_power_uw(8, 4), 1)),
        ("backup energy, precise (uJ)", model.backup_base_uj),
        ("restore energy (uJ)", model.restore_base_uj),
        ("capacitor (uJ)", config.capacitor_uj),
        ("start fill fraction", config.start_fill_fraction),
        (
            "STT-RAM saving 1day->10ms",
            round(cell.energy_saving_fraction(RETENTION_ONE_DAY_S, RETENTION_10MS_S), 3),
        ),
        ("rel. backup energy: linear", round(LinearRetention().relative_write_energy(cell), 3)),
        ("rel. backup energy: log", round(LogRetention().relative_write_energy(cell), 3)),
        ("rel. backup energy: parabola", round(ParabolaRetention().relative_write_energy(cell), 3)),
    ]
    print(format_table(("constant", "value"), rows))
    return 0


def _cmd_cache(action: str, cache_dir: Optional[str]) -> int:
    if cache_dir is None:
        print(
            "repro-experiments cache: error: --cache-dir is required",
            file=sys.stderr,
        )
        return 2
    try:
        cache = engine.ResultCache(cache_dir)
    except (ConfigurationError, OSError) as exc:
        print(f"repro-experiments cache: error: {exc}", file=sys.stderr)
        return 2
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.cache_dir}")
        return 0
    if action == "verify":
        scan = cache.verify()
        rows = [
            ("checked", scan["checked"]),
            ("ok", scan["ok"]),
            ("quarantined now", scan["quarantined"]),
            ("quarantined total", cache.quarantined_count()),
        ]
        print(format_table(("verify", "value"), rows))
        return 0
    info = cache.info()
    rows = [
        ("path", info["path"]),
        ("entries", info["entries"]),
        ("fixed-bit", info["fixed"]),
        ("executive", info["executive"]),
        ("resilience", info["resilience"]),
        ("fleet", info["fleet"]),
        ("bytes", info["bytes"]),
        ("quarantined", info["quarantined"]),
        ("quarantine path", info["quarantine_path"]),
    ]
    print(format_table(("cache", "value"), rows))
    return 0


def _cmd_resilience(args: "argparse.Namespace") -> int:
    """Run a device-resilience campaign with explicit sweep knobs."""
    from .analysis.resilience import ResilienceCampaign

    try:
        campaign = ResilienceCampaign(
            kernels=tuple(k for k in args.kernels.split(",") if k),
            policies=tuple(p for p in args.policies.split(",") if p),
            rates=tuple(float(r) for r in args.rates.split(",") if r),
            duration_s=args.duration,
            validate_restores=not args.no_validation,
            price_guard_words=not args.no_guard_pricing,
            seed=args.seed,
            device_seed=args.device_seed,
        )
    except (ConfigurationError, ValueError) as exc:
        print(
            f"repro-experiments resilience: error: {exc}", file=sys.stderr
        )
        return 2
    try:
        result = campaign.run()
    except ConfigurationError as exc:
        # Task-level validation (policies, kernels, rate bounds) fires
        # when the grid is enumerated, not at campaign construction.
        print(
            f"repro-experiments resilience: error: {exc}", file=sys.stderr
        )
        return 2
    except EngineExecutionError as exc:
        print(
            f"repro-experiments resilience: error: campaign failed: {exc}",
            file=sys.stderr,
        )
        return 1
    print(result.as_table())
    return 0


def _cmd_serve(args: "argparse.Namespace") -> int:
    """Run the campaign service until interrupted (SIGTERM drains)."""
    import asyncio
    import signal

    from .service import create_service

    try:
        service = create_service(
            args.cache_dir,
            capacity=args.capacity,
            workers=args.queue_workers,
            hot_bytes=args.hot_bytes,
            engine_workers=args.workers,
            journal=args.journal,
            drain_timeout_s=args.drain_timeout,
        )
        telemetry.configure(args.telemetry_log)
    except (ConfigurationError, OSError, ValueError) as exc:
        print(f"repro-experiments serve: error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        await service.start(host=args.host, port=args.port)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop: ctrl-C still stops the server
        journal_note = ""
        if service.journal is not None:
            stats = service.journal.stats
            journal_note = (
                f", journal: {service.journal.path} "
                f"(recovered {stats.recovered}, "
                f"skipped {stats.skipped_torn + stats.skipped_corrupt})"
            )
        print(
            f"campaign service on http://{args.host}:{service.port} "
            f"(cache: {service.cache.cache_dir}, "
            f"queue: {args.queue_workers} worker(s), "
            f"capacity {args.capacity}{journal_note})",
            flush=True,
        )
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop.is_set():
            # SIGTERM: graceful drain — refuse new work (503 +
            # Retry-After), finish running jobs up to the deadline,
            # journal the remainder as requeued, join the workers.
            print("SIGTERM: draining campaign service...", flush=True)
            summary = await loop.run_in_executor(None, service.drain)
            print(
                "drained: "
                + ", ".join(
                    f"{state}={count}"
                    for state, count in sorted(summary.items())
                    if count
                ),
                flush=True,
            )
        elif serve_task.done():
            serve_task.result()  # surface listener failures
        serve_task.cancel()
        stop_task.cancel()
        await service.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("campaign service stopped")
    except OSError as exc:
        print(f"repro-experiments serve: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_submit(args: "argparse.Namespace") -> int:
    """Submit a campaign file to a running service and stream results."""
    from .service import http_results, http_submit, http_wait

    try:
        if args.file == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-experiments submit: error: {exc}", file=sys.stderr)
        return 2
    base_url = args.url.rstrip("/")
    try:
        job = http_submit(base_url, payload, retries=args.retries)
        job_id = job["id"]
        print(f"submitted {job_id} ({job['kind']}, {job['n_tasks']} task(s))")
        if args.no_wait:
            return 0
        done = http_wait(
            base_url, job_id, timeout=args.timeout, retries=args.retries
        )
    except (RuntimeError, TimeoutError, OSError) as exc:
        print(f"repro-experiments submit: error: {exc}", file=sys.stderr)
        return 1
    status = done.get("status")
    report = done.get("telemetry", {})
    print(
        f"{job_id}: {status} in {done.get('wall_s', 0.0):.3f}s "
        f"(computed {report.get('computed', 0)}, "
        f"cache hits {report.get('cache_hits', 0)})"
    )
    if status != "done":
        if done.get("error"):
            print(done["error"], file=sys.stderr)
        return 1
    if args.output is None:
        return 0
    try:
        lines = http_results(base_url, job_id, retries=args.retries)
        blob = "\n".join(json.dumps(line, sort_keys=True) for line in lines)
        if args.output == "-":
            print(blob)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(blob + "\n")
            print(f"wrote {len(lines)} result line(s) to {args.output}")
    except (RuntimeError, OSError) as exc:
        print(f"repro-experiments submit: error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_summary(trace_file: str, top: int) -> int:
    """Print top-N energy consumers and outage statistics of a trace."""
    from .obs.export import format_summary, read_trace, summarize_trace

    try:
        events = read_trace(trace_file)
    except (ConfigurationError, OSError) as exc:
        print(f"repro-experiments trace: error: {exc}", file=sys.stderr)
        return 2
    print(format_summary(summarize_trace(events, top=top)))
    return 0


def _cmd_report(log: str, limit: int) -> int:
    """Summarise a JSONL telemetry log (per-run rows plus totals)."""
    try:
        events = telemetry.read_events(log)
    except OSError as exc:
        print(f"repro-experiments report: error: {exc}", file=sys.stderr)
        return 2
    runs = [event for event in events if event.get("event") == "run"]
    if not runs:
        print(f"no run events in {log}")
        return 0
    rows = []
    for event in runs[-limit:] if limit else runs:
        rows.append(
            (
                str(event.get("context") or "-"),
                event.get("kind", "?"),
                event.get("n_tasks", 0),
                int(event.get("memo_hits", 0)) + int(event.get("cache_hits", 0)),
                event.get("computed", 0),
                event.get("retries", 0),
                int(event.get("crashes", 0))
                + int(event.get("timeouts", 0))
                + int(event.get("corrupt_payloads", 0)),
                event.get("quarantines", 0),
                "yes" if event.get("degraded") else "no",
                round(float(event.get("wall_s", 0.0)), 3),
            )
        )
    print(
        format_table(
            (
                "context",
                "kind",
                "tasks",
                "hits",
                "computed",
                "retries",
                "failures",
                "quarantined",
                "degraded",
                "wall_s",
            ),
            rows,
        )
    )
    totals = telemetry.summarize_events(events)
    print()
    print(
        format_table(
            ("total", "value"),
            [
                ("runs", totals["runs"]),
                ("tasks", totals["tasks"]),
                ("cache hits", totals["memo_hits"] + totals["cache_hits"]),
                ("computed", totals["computed"]),
                ("retries", totals["retries"]),
                ("crashes", totals["crashes"]),
                ("timeouts", totals["timeouts"]),
                ("corrupt payloads", totals["corrupt_payloads"]),
                ("quarantined entries", totals["quarantines"]),
                ("pool failures", totals["pool_failures"]),
                ("degraded runs", totals["degraded_runs"]),
                ("failed tasks", totals["failed"]),
                ("wall_s", round(totals["wall_s"], 3)),
            ],
        )
    )
    from .obs.metrics import MetricsRegistry

    merged = MetricsRegistry()
    for event in runs:
        merged.merge_dict(event.get("device_metrics") or {})
    if not merged.is_empty():
        print()
        print(
            format_table(("device metric", "value"), _device_metric_rows(merged))
        )
    return 0


def _device_metric_rows(merged) -> List[tuple]:
    """One sorted ``(label, value)`` row per device metric.

    Counters, gauges and histogram means collate into a single list
    sorted by label, so the table's order is deterministic regardless
    of the registry's insertion order and the report diffs cleanly
    against run-table exports.
    """
    rows = [
        (name, round(float(value), 3))
        for name, value in merged.counters.items()
    ]
    rows.extend(
        (f"{name} (gauge)", round(float(value), 3))
        for name, value in merged.gauges.items()
    )
    rows.extend(
        (f"{name} (mean)", round(hist.mean, 3))
        for name, hist in merged.histograms.items()
    )
    rows.sort(key=lambda row: row[0])
    return rows


def _load_campaign_file(path: str, command: str):
    """Parse a campaign JSON file ('-' reads stdin) or return None."""
    from .service.protocol import parse_campaign

    try:
        if path == "-":
            payload = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        return parse_campaign(payload)
    except (OSError, json.JSONDecodeError, ConfigurationError) as exc:
        print(f"repro-experiments {command}: error: {exc}", file=sys.stderr)
        return None


def _cmd_runtable(args: "argparse.Namespace") -> int:
    """Run a campaign file and write its canonical run table."""
    from .analysis import runtable as runtable_mod
    from .analysis import stats as stats_mod

    campaign = _load_campaign_file(args.file, "runtable")
    if campaign is None:
        return 2
    try:
        if args.reps > 1:
            kind = {"grid": "fixed"}.get(campaign.kind, campaign.kind)
            table = stats_mod.repetition_sweep(
                kind,
                campaign.tasks,
                n_reps=args.reps,
                base_seed=args.rep_seed,
                engine=campaign.engine,
                job=args.job,
            )
        else:
            table = runtable_mod.run_table_for_campaign(
                campaign, job=args.job
            )
    except (ConfigurationError, EngineExecutionError) as exc:
        print(f"repro-experiments runtable: error: {exc}", file=sys.stderr)
        return 1
    blob = table.to_csv_bytes()
    if args.output == "-":
        sys.stdout.write(blob.decode("utf-8"))
        return 0
    try:
        with open(args.output, "wb") as handle:
            handle.write(blob)
    except OSError as exc:
        print(f"repro-experiments runtable: error: {exc}", file=sys.stderr)
        return 1
    print(
        f"wrote {args.output}: {len(table)} row(s), {len(blob)} bytes "
        f"(schema v{runtable_mod.SCHEMA_VERSION})"
    )
    return 0


def _cmd_stats(args: "argparse.Namespace") -> int:
    """Compare a run-table metric between two config slices."""
    from .analysis import runtable as runtable_mod
    from .analysis import stats as stats_mod

    try:
        rows = runtable_mod.read_run_table(args.table)
        comparison = stats_mod.compare_slices(
            rows,
            args.metric,
            stats_mod.parse_slice_spec(args.slice_a),
            stats_mod.parse_slice_spec(args.slice_b),
            seed=args.seed,
            n_boot=args.boot,
            alpha=args.alpha,
        )
    except (OSError, ConfigurationError, ValueError) as exc:
        print(f"repro-experiments stats: error: {exc}", file=sys.stderr)
        return 2
    slice_table = [
        (
            label,
            side["n"],
            round(side["mean"], 6),
            round(side["ci_lo"], 6),
            round(side["ci_hi"], 6),
        )
        for label, side in (
            (args.slice_a, comparison["a"]),
            (args.slice_b, comparison["b"]),
        )
    ]
    print(
        format_table(
            ("slice", "n", f"mean {args.metric}", "ci_lo", "ci_hi"),
            slice_table,
        )
    )
    mw = comparison["mann_whitney"]
    delta = comparison["cliffs_delta"]
    print()
    print(
        format_table(
            ("statistic", "value"),
            [
                ("mann-whitney U", round(mw["u"], 3)),
                ("z", round(mw["z"], 4)),
                ("p-value (two-sided)", round(mw["p_value"], 6)),
                ("cliff's delta", round(delta["delta"], 4)),
                ("effect magnitude", delta["magnitude"]),
            ],
        )
    )
    return 0


def _cmd_bench_history(args: "argparse.Namespace") -> int:
    """Fold BENCH_*.json files into the trajectory table; gate drift."""
    from .analysis import trajectory

    try:
        current = trajectory.bench_rows(args.root)
    except ConfigurationError as exc:
        print(f"repro-experiments bench-history: error: {exc}", file=sys.stderr)
        return 2
    if not current:
        print(
            f"repro-experiments bench-history: error: no BENCH_*.json "
            f"under {args.root}",
            file=sys.stderr,
        )
        return 2
    blob = trajectory.history_csv_bytes(current)
    if args.output == "-":
        sys.stdout.write(blob.decode("utf-8"))
    elif args.output is not None:
        try:
            with open(args.output, "wb") as handle:
                handle.write(blob)
        except OSError as exc:
            print(
                f"repro-experiments bench-history: error: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"wrote {args.output}: {len(current)} trajectory row(s)")
    else:
        gated = sum(
            1
            for row in current
            if trajectory.metric_direction(str(row["metric"]))
        )
        print(
            f"{len(current)} trajectory row(s) from {args.root} "
            f"({gated} gated)"
        )
    if args.baseline is None:
        return 0
    try:
        baseline = trajectory.bench_rows(args.baseline)
        regressions = trajectory.check_regressions(
            baseline, current, tolerance=args.tolerance
        )
    except ConfigurationError as exc:
        print(f"repro-experiments bench-history: error: {exc}", file=sys.stderr)
        return 2
    print(trajectory.format_regressions(regressions))
    return 1 if regressions else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiments`` / ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate artifacts of the incidental-computing reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list every artifact id")

    def add_engine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="processes for experiment grids (default: 1, serial)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed on-disk result cache (reused across runs)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable result caching (in-memory and on-disk)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-task timeout for pooled grids (0 disables; default: disabled)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="re-attempts for a crashed/hung/corrupt task (default: 2)",
        )
        p.add_argument(
            "--batch-chunk-lanes",
            type=int,
            default=None,
            metavar="N",
            help=(
                "max lanes per batch-tier chunk; 0 removes the lane "
                "budget (default: 1024)"
            ),
        )
        p.add_argument(
            "--batch-chunk-bytes",
            type=int,
            default=None,
            metavar="BYTES",
            help=(
                "max estimated plan bytes per batch-tier chunk; 0 "
                "removes the byte budget (default: 256 MiB)"
            ),
        )
        p.add_argument(
            "--retry-backoff",
            type=float,
            default=None,
            metavar="SECONDS",
            help="base exponential backoff between retries (default: 0.05)",
        )
        p.add_argument(
            "--telemetry-log",
            default=None,
            metavar="PATH",
            help="append one JSONL event per grid run/task (see 'report')",
        )
        p.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help=(
                "record a device trace: Chrome trace-event JSON "
                "(chrome://tracing / Perfetto), or a raw JSONL event log "
                "if PATH ends in .jsonl"
            ),
        )
        p.add_argument(
            "--trace-level",
            default="events",
            choices=("spans", "events", "debug"),
            help="tracer verbosity when tracing is armed (default: events)",
        )
        p.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write merged device metrics (counters/gauges/histograms) as JSON",
        )

    run = sub.add_parser("run", help="regenerate artifacts")
    run.add_argument("artifacts", nargs="+", help="artifact ids, or 'all'")
    add_engine_args(run)
    res = sub.add_parser(
        "resilience",
        help="sweep device fault rates against the hardened restore path",
    )
    res.add_argument(
        "--rates",
        default="0,0.05,0.1,0.2",
        metavar="R1,R2,...",
        help="fault-rate sweep values (default: 0,0.05,0.1,0.2)",
    )
    res.add_argument(
        "--policies",
        default="linear,log",
        metavar="P1,P2,...",
        help="retention policies to sweep (default: linear,log)",
    )
    res.add_argument(
        "--kernels",
        default="median",
        metavar="K1,K2,...",
        help="kernels to sweep (default: median)",
    )
    res.add_argument(
        "--duration",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="trace duration per point (default: 3.0)",
    )
    res.add_argument(
        "--no-validation",
        action="store_true",
        help="disable CRC guard-word validation on restore",
    )
    res.add_argument(
        "--no-guard-pricing",
        action="store_true",
        help="do not price guard words into backup energy",
    )
    res.add_argument(
        "--seed", type=int, default=0, help="executive seed (default: 0)"
    )
    res.add_argument(
        "--device-seed",
        type=int,
        default=0,
        help="device fault-stream seed (default: 0)",
    )
    add_engine_args(res)
    sub.add_parser("profiles", help="summarise the five power profiles")
    sub.add_parser("calibration", help="print the calibrated constants")
    cache = sub.add_parser(
        "cache", help="inspect, verify or clear the result cache"
    )
    cache.add_argument("action", choices=("info", "verify", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="the cache directory to inspect, verify or clear",
    )
    report = sub.add_parser(
        "report", help="summarise a recorded JSONL telemetry log"
    )
    report.add_argument(
        "--log",
        required=True,
        metavar="PATH",
        help="the JSONL event log written by 'run --telemetry-log'",
    )
    report.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="show only the last N runs (default: all)",
    )
    serve = sub.add_parser(
        "serve", help="run the campaign service (HTTP, shared cache)"
    )
    serve.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="directory of the shared sharded result cache",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="listening port, 0 for ephemeral (default: 8787)",
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=64,
        metavar="N",
        help="max queued+running jobs before 503 (default: 64)",
    )
    serve.add_argument(
        "--queue-workers",
        type=int,
        default=2,
        metavar="N",
        help="campaign worker threads (default: 2)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="engine processes per grid (default: 1)",
    )
    serve.add_argument(
        "--hot-bytes",
        type=int,
        default=64 * 1024 * 1024,
        metavar="BYTES",
        help="in-memory hot-tier budget (default: 64 MiB)",
    )
    serve.add_argument(
        "--telemetry-log",
        default=None,
        metavar="PATH",
        help="append one JSONL event per executed grid (see 'report')",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "write-ahead job journal; pending jobs found in it are "
            "replayed and re-enqueued at startup (restart-safe serve)"
        ),
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "on SIGTERM (or DELETE /), let running jobs finish this "
            "long before requeueing them (default: 30)"
        ),
    )
    submit = sub.add_parser(
        "submit", help="submit a campaign to a running service"
    )
    submit.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="service base URL, e.g. http://127.0.0.1:8787",
    )
    submit.add_argument(
        "--file",
        required=True,
        metavar="PATH",
        help="campaign JSON file ('-' reads stdin)",
    )
    submit.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSONL result stream here ('-' prints it)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="how long to wait for completion (default: 600)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue and return without waiting for the job",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help=(
            "retry HTTP requests this many times on connection errors "
            "and 503 responses, with jittered exponential backoff that "
            "honors Retry-After (default: 3)"
        ),
    )
    runtable_p = sub.add_parser(
        "runtable",
        help="run a campaign file and write its canonical run_table.csv",
    )
    runtable_p.add_argument(
        "--file",
        required=True,
        metavar="PATH",
        help="campaign JSON file ('-' reads stdin; same schema as 'submit')",
    )
    runtable_p.add_argument(
        "--output",
        default="run_table.csv",
        metavar="PATH",
        help="canonical CSV destination ('-' prints; default: run_table.csv)",
    )
    runtable_p.add_argument(
        "--job",
        default="",
        metavar="LABEL",
        help=(
            "value for the job provenance column (pass a service job id "
            "to reproduce that job's streamed table byte-for-byte)"
        ),
    )
    runtable_p.add_argument(
        "--reps",
        type=int,
        default=1,
        metavar="N",
        help=(
            "seeded harvester-trace repetitions per task (grid/executive "
            "campaigns only; default: 1)"
        ),
    )
    runtable_p.add_argument(
        "--rep-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="base seed the repetition trace seeds derive from (default: 0)",
    )
    add_engine_args(runtable_p)
    stats_p = sub.add_parser(
        "stats",
        help="bootstrap CIs + Mann-Whitney/Cliff's delta between table slices",
    )
    stats_p.add_argument(
        "--table",
        required=True,
        metavar="PATH",
        help="a canonical run_table.csv (see 'runtable')",
    )
    stats_p.add_argument(
        "--metric",
        required=True,
        metavar="COLUMN",
        help="outcome column to compare, e.g. total_progress",
    )
    stats_p.add_argument(
        "--slice-a",
        required=True,
        metavar="COL=VAL[,COL=VAL...]",
        help="filter selecting sample A, e.g. policy=precise,bits=8",
    )
    stats_p.add_argument(
        "--slice-b",
        required=True,
        metavar="COL=VAL[,COL=VAL...]",
        help="filter selecting sample B",
    )
    stats_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="bootstrap seed; identical seeds reproduce identical CIs",
    )
    stats_p.add_argument(
        "--boot",
        type=int,
        default=2000,
        metavar="N",
        help="bootstrap resamples (default: 2000)",
    )
    stats_p.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help="two-sided CI significance level (default: 0.05)",
    )
    bench_hist = sub.add_parser(
        "bench-history",
        help="fold BENCH_*.json snapshots into the perf-trajectory table",
    )
    bench_hist.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="directory holding the current BENCH_*.json files (default: .)",
    )
    bench_hist.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the long-format trajectory CSV here ('-' prints)",
    )
    bench_hist.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help=(
            "gate against the BENCH_*.json files in this directory; "
            "exit 1 when a gated metric regresses beyond --tolerance"
        ),
    )
    bench_hist.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        metavar="FRACTION",
        help="allowed relative drift for gated metrics (default: 0.1)",
    )
    trace = sub.add_parser(
        "trace", help="inspect a recorded device trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="top energy consumers and outage statistics of a trace file",
    )
    trace_summary.add_argument(
        "trace_file",
        metavar="FILE",
        help="a --trace-out file (Chrome trace JSON or .jsonl event log)",
    )
    trace_summary.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="energy consumers to list (default: 5)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command in ("run", "resilience", "runtable"):
        try:
            engine.configure(
                workers=args.workers,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                task_timeout_s=args.task_timeout,
                retries=args.retries,
                retry_backoff_s=args.retry_backoff,
                batch_chunk_lanes=args.batch_chunk_lanes,
                batch_chunk_bytes=args.batch_chunk_bytes,
            )
            telemetry.configure(args.telemetry_log)
            obs_capture.configure(
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
                level=args.trace_level,
            )
        except (ConfigurationError, OSError) as exc:
            print(
                f"repro-experiments {args.command}: error: {exc}",
                file=sys.stderr,
            )
            return 2
        try:
            if args.command == "resilience":
                rc = _cmd_resilience(args)
            elif args.command == "runtable":
                rc = _cmd_runtable(args)
            else:
                rc = _cmd_run(args.artifacts)
        finally:
            # Flush whatever was captured even when the campaign failed
            # part-way: a partial trace of a failed run is exactly what
            # you want to look at.
            try:
                for path in obs_capture.flush():
                    print(f"wrote {path}")
            except OSError as exc:
                print(
                    f"repro-experiments {args.command}: error: "
                    f"could not write trace/metrics output: {exc}",
                    file=sys.stderr,
                )
                rc = 1
            obs_capture.reset()
        return rc
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "trace":
        return _cmd_trace_summary(args.trace_file, args.top)
    if args.command == "profiles":
        return _cmd_profiles()
    if args.command == "cache":
        return _cmd_cache(args.action, args.cache_dir)
    if args.command == "report":
        return _cmd_report(args.log, args.limit)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "bench-history":
        return _cmd_bench_history(args)
    return _cmd_calibration()


if __name__ == "__main__":
    raise SystemExit(main())
