"""CRC-guarded checkpoint images for the hardened restore path.

The behavioral NVP does not simulate actual memory contents, so the
checkpoints modeled here carry *synthetic* word images: a deterministic
byte pattern derived from the backup tick and device seed, sized to the
real backed-up state. That is enough to make fault detection physical —
a torn tail or an SEU flip perturbs real bytes, and the CRC-8 guard
word either catches it or (with the genuine 1/256 collision odds of an
8-bit CRC) misses it — while keeping the simulation content-free.

``CheckpointStore`` holds the newest checkpoints (two by default, the
minimum for a newest → previous-valid fallback chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from .._validation import check_int_in_range
from ..errors import SimulationError

__all__ = ["crc8", "Checkpoint", "CheckpointStore", "CRC8_POLY"]

#: Generator polynomial of the CRC-8 guard (x^8 + x^2 + x + 1).
CRC8_POLY: int = 0x07


def _build_crc8_table(poly: int) -> np.ndarray:
    table = np.zeros(256, dtype=np.uint8)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table[byte] = crc
    return table


_CRC8_TABLE = _build_crc8_table(CRC8_POLY)


def crc8(words: np.ndarray) -> int:
    """CRC-8 (poly 0x07, init 0) over a uint8 word array.

    Detects all single-bit errors and all burst errors up to 8 bits;
    longer corruption escapes detection with probability 1/256, which
    is exactly the undetected-corruption channel the resilience
    telemetry counts.
    """
    data = np.asarray(words, dtype=np.uint8)
    crc = 0
    for byte in data.tolist():
        crc = int(_CRC8_TABLE[crc ^ byte])
    return crc


@dataclass
class Checkpoint:
    """One backed-up state image plus its guard word.

    ``guard`` is computed at write time over the *intended* words, so a
    torn tail (words overwritten after guarding) or later SEU flips
    show up as a guard mismatch. ``corrupted`` is the ground-truth flag
    the fault model sets — the simulator never reads it on the restore
    path (only the guard is architecturally visible); telemetry uses it
    to classify CRC collisions as undetected corruptions.
    """

    tick: int
    state_bits: int
    words: np.ndarray
    guard: int
    torn: bool = False
    corrupted: bool = False
    epoch_progress: int = 0
    #: Last tick up to which SEU exposure has been applied.
    exposed_until: int = field(default=0)

    def __post_init__(self) -> None:
        self.exposed_until = max(self.exposed_until, self.tick)

    @property
    def n_bits(self) -> int:
        """Stored image size in bits (guard word excluded)."""
        return int(self.words.size) * 8

    def validate(self) -> bool:
        """Architectural validity check: does the guard word match?"""
        return crc8(self.words) == self.guard

    def apply_flips(self, positions: np.ndarray) -> None:
        """XOR the given bit positions into the stored words."""
        if positions.size == 0:
            return
        counts = np.bincount(positions % self.n_bits, minlength=self.n_bits)
        odd = np.nonzero(counts & 1)[0]
        if odd.size == 0:
            return
        np.bitwise_xor.at(
            self.words, odd // 8, np.uint8(1) << (odd % 8).astype(np.uint8)
        )
        self.corrupted = True


class CheckpointStore:
    """Newest-first bounded store of checkpoints (fallback chain depth)."""

    def __init__(self, capacity: int = 2) -> None:
        self.capacity = check_int_in_range(
            capacity, "capacity", 1, 16, exc=SimulationError
        )
        self._entries: List[Checkpoint] = []

    def push(self, checkpoint: Checkpoint) -> None:
        """Record a new checkpoint, evicting the oldest beyond capacity."""
        self._entries.append(checkpoint)
        if len(self._entries) > self.capacity:
            del self._entries[0]

    @property
    def newest(self) -> Optional[Checkpoint]:
        return self._entries[-1] if self._entries else None

    @property
    def previous(self) -> Optional[Checkpoint]:
        return self._entries[-2] if len(self._entries) >= 2 else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Checkpoint]:
        return iter(self._entries)
