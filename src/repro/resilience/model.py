"""Seeded, deterministic device-level fault model.

The experiment-engine harness (:mod:`repro.analysis.faults`) injects
faults into *worker processes*; this module injects faults into the
*simulated device*. Three hardware misbehaviors are modeled, matching
the failure modes intermittent-computing systems guard against:

* **torn backups** — a power emergency interrupts the distributed
  backup mid-write, leaving a checkpoint whose tail words never made it
  to NVM (Mementos-style incomplete checkpoints);
* **SEU bit flips** — single-event upsets in STT-RAM beyond the
  modeled retention decay, accumulating while a checkpoint sits
  unpowered (rate is per bit per 0.1 ms tick of exposure);
* **brownout tails** — windows after an outage during which the supply
  is nominally back above the restore threshold but NVM writes silently
  fail, so restore attempts burn energy without waking the device.

Every draw is keyed by ``(seed, event, coordinates)`` through a SHA-256
hash — like :class:`repro.analysis.faults.FaultPlan`'s ``(task,
attempt)`` keying — so outcomes are a pure function of the simulation
timeline and the seed, independent of draw order or interleaving. Two
runs with the same seed see byte-identical fault sequences.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .._validation import check_int_in_range, check_non_negative, check_probability
from ..errors import ConfigurationError

__all__ = ["DeviceFaultModel"]

_HASH_DENOM = float(1 << 64)


def _event_digest(seed: int, event: str, *coords: int) -> bytes:
    """Stable 32-byte digest for one (seed, event, coordinates) tuple."""
    payload = ":".join([str(int(seed)), event, *[str(int(c)) for c in coords]])
    return hashlib.sha256(payload.encode("ascii")).digest()


@dataclass(frozen=True)
class DeviceFaultModel:
    """Deterministic per-event fault draws for the simulated NVP.

    Parameters
    ----------
    torn_backup_rate:
        Probability that any given backup is interrupted mid-write.
    seu_rate:
        Expected bit flips per stored bit per tick of unpowered
        exposure (beyond modeled retention decay).
    brownout_rate:
        Probability that a restore-eligible tick opens a brownout
        window during which restores silently fail.
    brownout_ticks:
        Length of one brownout window, in 0.1 ms ticks.
    seed:
        Root seed; all draws are keyed by ``(seed, event, coords)``.
    """

    torn_backup_rate: float = 0.0
    seu_rate: float = 0.0
    brownout_rate: float = 0.0
    brownout_ticks: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        check_probability(self.torn_backup_rate, "torn_backup_rate")
        check_non_negative(self.seu_rate, "seu_rate")
        if self.seu_rate > 1.0:
            raise ConfigurationError(
                f"seu_rate is a per-bit-tick probability, got {self.seu_rate!r}"
            )
        check_probability(self.brownout_rate, "brownout_rate")
        check_int_in_range(self.brownout_ticks, "brownout_ticks", 1)
        check_int_in_range(self.seed, "seed", 0)

    @property
    def active(self) -> bool:
        """Whether any fault mechanism has a nonzero rate."""
        return (
            self.torn_backup_rate > 0.0
            or self.seu_rate > 0.0
            or self.brownout_rate > 0.0
        )

    # -- keyed draws ---------------------------------------------------

    def uniform(self, event: str, *coords: int) -> float:
        """Uniform [0, 1) draw keyed by ``(seed, event, coords)``."""
        digest = _event_digest(self.seed, event, *coords)
        return int.from_bytes(digest[:8], "big") / _HASH_DENOM

    def rng(self, event: str, *coords: int) -> np.random.Generator:
        """Keyed :class:`numpy.random.Generator` for bulk draws."""
        digest = _event_digest(self.seed, event, *coords)
        return np.random.default_rng(
            np.frombuffer(digest[:16], dtype=np.uint64)
        )

    # -- fault mechanisms ----------------------------------------------

    def torn_backup(self, tick: int) -> bool:
        """Whether the backup taken at ``tick`` is interrupted mid-write."""
        if self.torn_backup_rate <= 0.0:
            return False
        return self.uniform("torn-backup", tick) < self.torn_backup_rate

    def brownout_begins(self, tick: int) -> bool:
        """Whether a brownout window opens at this restore-eligible tick."""
        if self.brownout_rate <= 0.0:
            return False
        return self.uniform("brownout", tick) < self.brownout_rate

    def seu_flip_count(
        self, backup_tick: int, start_tick: int, end_tick: int, n_bits: int
    ) -> int:
        """Bit flips a checkpoint accrues over one exposure window.

        The window ``[start_tick, end_tick)`` covers ticks during which
        the checkpoint written at ``backup_tick`` sat in NVM; draws are
        keyed by the full coordinate triple so re-examining the same
        window (e.g. across fallback attempts) repeats the same answer.
        """
        if self.seu_rate <= 0.0 or end_tick <= start_tick or n_bits <= 0:
            return 0
        trials = int(n_bits) * int(end_tick - start_tick)
        rng = self.rng("seu", backup_tick, start_tick, end_tick)
        return int(rng.binomial(trials, min(self.seu_rate, 1.0)))

    def seu_flip_positions(
        self, backup_tick: int, start_tick: int, end_tick: int, n_bits: int
    ) -> np.ndarray:
        """Bit positions flipped over the window (may repeat; XOR-safe)."""
        count = self.seu_flip_count(backup_tick, start_tick, end_tick, n_bits)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        rng = self.rng("seu-pos", backup_tick, start_tick, end_tick)
        return rng.integers(0, n_bits, size=count, dtype=np.int64)
