"""Hardened restore path: validation, fallback chain, telemetry.

``DeviceResilience`` is the per-run stateful object the processor and
system simulator consult. It owns a :class:`DeviceFaultModel`, a
:class:`CheckpointStore`, and a mutable :class:`ResilienceTelemetry`
ledger, and implements the paper-faithful degradation chain on every
restore:

1. newest checkpoint, if its CRC-8 guard validates;
2. otherwise the previous checkpoint, if *its* guard validates;
3. otherwise abandon the restore image entirely and roll forward from
   the newest buffered input — semantically safe under the incidental
   model, because interrupted frames are re-enqueued as incidental
   lanes rather than required state.

Guard words are priced into backup energy when
``ResilienceConfig.price_guard_words`` is set; pricing is a separate
knob from validation so that a zero-rate fault model with validation
enabled stays bit-identical to the fault-free simulator (the rate-0
differential acceptance criterion).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

import numpy as np

from .._validation import check_choice, check_int_in_range
from ..errors import SimulationError
from ..obs.tracer import NULL_TRACER
from .checkpoint import Checkpoint, CheckpointStore, crc8
from .model import DeviceFaultModel

__all__ = [
    "ResilienceConfig",
    "RestoreOutcome",
    "ResilienceTelemetry",
    "DeviceResilience",
    "OUTCOME_KINDS",
]

#: Restore outcome kinds, from best to worst.
OUTCOME_KINDS = ("ok", "cold", "silent", "fallback_previous", "rollforward")


@dataclass(frozen=True)
class ResilienceConfig:
    """Immutable description of one device-resilience scenario.

    A config with all rates at zero and ``price_guard_words=False``
    leaves the simulated energy/progress trajectory bit-identical to a
    run with no resilience at all — validation still executes (and
    trivially passes), so the rate-0 differential suite exercises the
    full restore path.
    """

    torn_backup_rate: float = 0.0
    seu_rate: float = 0.0
    brownout_rate: float = 0.0
    brownout_ticks: int = 200
    #: Check CRC-8 guards at restore time and run the fallback chain.
    validate_restores: bool = True
    #: Charge guard-word writes into backup energy (perturbs the
    #: capacitor trajectory, so it is a deliberate, separate knob).
    price_guard_words: bool = False
    #: CRC width per guarded region.
    guard_crc_bits: int = 8
    #: Guarded regions: four pipeline-stage latch groups plus the
    #: register bank and the control/PC block.
    guard_regions: int = 6
    #: Fallback chain depth (checkpoints retained).
    checkpoint_depth: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        check_int_in_range(self.guard_crc_bits, "guard_crc_bits", 1, 64)
        check_int_in_range(self.guard_regions, "guard_regions", 1, 64)
        check_int_in_range(self.checkpoint_depth, "checkpoint_depth", 1, 16)
        # Rates are validated by the fault model itself.
        self.build_fault_model()

    def build_fault_model(self) -> DeviceFaultModel:
        return DeviceFaultModel(
            torn_backup_rate=self.torn_backup_rate,
            seu_rate=self.seu_rate,
            brownout_rate=self.brownout_rate,
            brownout_ticks=self.brownout_ticks,
            seed=self.seed,
        )

    @property
    def guard_bits(self) -> int:
        """Total guard-word bits added to every backup image."""
        return self.guard_crc_bits * self.guard_regions

    @property
    def fault_free(self) -> bool:
        """Whether every fault mechanism is disabled."""
        return not self.build_fault_model().active


@dataclass(frozen=True)
class RestoreOutcome:
    """What one hardened restore resolved to."""

    kind: str
    #: Tick of the checkpoint actually restored (None for rollforward
    #: and cold starts, which restore no checkpoint image).
    checkpoint_tick: Optional[int] = None
    #: Committed lane-instructions discarded by this outcome.
    lost_progress: int = 0

    def __post_init__(self) -> None:
        check_choice(self.kind, "kind", OUTCOME_KINDS, exc=SimulationError)

    @property
    def degraded(self) -> bool:
        """Whether the executive must degrade buffered frame state."""
        return self.kind in ("silent", "fallback_previous", "rollforward")


@dataclass
class ResilienceTelemetry:
    """Mutable per-run counters for every detection and fallback."""

    backups: int = 0
    torn_backups: int = 0
    restores: int = 0
    cold_restores: int = 0
    clean_restores: int = 0
    detected_failures: int = 0
    detected_torn: int = 0
    detected_seu: int = 0
    fallback_previous: int = 0
    rollforwards: int = 0
    silent_corruptions: int = 0
    undetected_corruptions: int = 0
    brownouts: int = 0
    blocked_restores: int = 0
    seu_flips: int = 0
    lost_progress: int = 0
    guard_energy_uj: float = 0.0
    wasted_restore_energy_uj: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "ResilienceTelemetry":
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise SimulationError(
                f"unknown resilience telemetry fields: {sorted(unknown)}"
            )
        return cls(**payload)


class DeviceResilience:
    """Per-run fault injection + hardened-restore state machine."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.model = config.build_fault_model()
        self.store = CheckpointStore(capacity=config.checkpoint_depth)
        self.telemetry = ResilienceTelemetry()
        #: Observability tracer; the owning processor overwrites this
        #: with its own tracer right after construction.
        self.tracer = NULL_TRACER
        self._epoch_progress = 0
        self._brownout_until = -1

    @property
    def priced_guard_bits(self) -> int:
        """Guard bits the backup engine should price (0 when unpriced)."""
        return self.config.guard_bits if self.config.price_guard_words else 0

    def reset(self) -> None:
        """Fresh telemetry and checkpoint state (fault model unchanged)."""
        self.store.clear()
        self.telemetry = ResilienceTelemetry()
        self._epoch_progress = 0
        self._brownout_until = -1

    # -- execution-side hooks ------------------------------------------

    def note_executed(self, instructions: int) -> None:
        """Accumulate committed work since the last backup (the stake
        lost if that backup later turns out to be unrecoverable)."""
        self._epoch_progress += int(instructions)

    def note_guard_energy(self, energy_uj: float, state_bits: int) -> None:
        """Attribute the guard-word share of one backup's energy."""
        guard = self.priced_guard_bits
        if guard <= 0 or state_bits <= 0:
            return
        self.telemetry.guard_energy_uj += energy_uj * guard / (state_bits + guard)

    # -- backup path ----------------------------------------------------

    def on_backup(self, tick: int, state_bits: int) -> bool:
        """Write one checkpoint; returns ``True`` if it was torn.

        The stored image is a synthetic byte pattern keyed by the tick,
        guarded at write time; a torn backup overwrites the tail third
        of the image *after* guarding, which is what an interrupted
        distributed in-situ backup physically leaves behind.
        """
        tel = self.telemetry
        tel.backups += 1
        n_words = max(1, (int(state_bits) + 7) // 8)
        words = self.model.rng("content", tick).integers(
            0, 256, size=n_words, dtype=np.uint8
        )
        guard = crc8(words)
        torn = self.model.torn_backup(tick)
        if torn:
            tel.torn_backups += 1
            if self.tracer.events:
                self.tracer.instant(
                    "resilience.torn_backup",
                    tick=tick,
                    cat="resilience",
                    args={"state_bits": int(state_bits)},
                )
            tail = max(1, n_words // 3)
            words[-tail:] = self.model.rng("torn-tail", tick).integers(
                0, 256, size=tail, dtype=np.uint8
            )
        checkpoint = Checkpoint(
            tick=tick,
            state_bits=int(state_bits),
            words=words,
            guard=guard,
            torn=torn,
            corrupted=torn,
            epoch_progress=self._epoch_progress,
        )
        self._epoch_progress = 0
        self.store.push(checkpoint)
        return torn

    # -- restore path ---------------------------------------------------

    def restore_blocked(self, tick: int) -> bool:
        """Whether a brownout tail blocks the restore attempt at ``tick``.

        A blocked attempt still draws restore energy from the capacitor
        (the simulator charges it as wasted energy); the device stays
        OFF until the window closes.
        """
        if self.model.brownout_rate <= 0.0:
            return False
        if tick < self._brownout_until:
            self.telemetry.blocked_restores += 1
            if self.tracer.enabled:
                self.tracer.metrics.inc("resilience.blocked_restores")
            return True
        if self.model.brownout_begins(tick):
            self._brownout_until = tick + self.model.brownout_ticks
            self.telemetry.brownouts += 1
            self.telemetry.blocked_restores += 1
            if self.tracer.enabled:
                self.tracer.metrics.inc("resilience.blocked_restores")
                self.tracer.span(
                    "resilience.brownout",
                    tick,
                    self._brownout_until,
                    cat="resilience",
                )
            return True
        return False

    def _expose(self, checkpoint: Checkpoint, tick: int) -> None:
        """Apply SEU flips accrued since the checkpoint was last examined."""
        if self.model.seu_rate <= 0.0 or tick <= checkpoint.exposed_until:
            return
        positions = self.model.seu_flip_positions(
            checkpoint.tick, checkpoint.exposed_until, tick, checkpoint.n_bits
        )
        checkpoint.exposed_until = tick
        if positions.size:
            self.telemetry.seu_flips += int(positions.size)
            if self.tracer.events:
                self.tracer.instant(
                    "resilience.seu_flips",
                    tick=tick,
                    cat="resilience",
                    args={"flips": int(positions.size), "checkpoint_tick": checkpoint.tick},
                )
            checkpoint.apply_flips(positions)

    def on_restore(self, tick: int) -> RestoreOutcome:
        """Run the fallback chain for the restore completing at ``tick``."""
        outcome = self._resolve_restore(tick)
        tracer = self.tracer
        if tracer.enabled:
            tracer.metrics.inc(f"resilience.restore.{outcome.kind}")
            if tracer.events and outcome.kind != "ok":
                tracer.instant(
                    "resilience.restore_outcome",
                    tick=tick,
                    cat="resilience",
                    args={
                        "kind": outcome.kind,
                        "checkpoint_tick": outcome.checkpoint_tick,
                        "lost_progress": outcome.lost_progress,
                    },
                )
        return outcome

    def _resolve_restore(self, tick: int) -> RestoreOutcome:
        tel = self.telemetry
        tel.restores += 1
        newest = self.store.newest
        if newest is None:
            # Nothing was ever backed up: a cold start, which the
            # roll-forward model already handles (begin at the newest
            # input with empty progress).
            tel.cold_restores += 1
            return RestoreOutcome(kind="cold")
        for checkpoint in self.store:
            self._expose(checkpoint, tick)

        if not self.config.validate_restores:
            # Unguarded restore: corrupted state is consumed as-is.
            if newest.corrupted:
                tel.silent_corruptions += 1
                return RestoreOutcome(kind="silent", checkpoint_tick=newest.tick)
            tel.clean_restores += 1
            return RestoreOutcome(kind="ok", checkpoint_tick=newest.tick)

        if newest.validate():
            if newest.corrupted:
                # CRC-8 collision: architecturally invisible corruption.
                tel.undetected_corruptions += 1
                tel.silent_corruptions += 1
                return RestoreOutcome(kind="silent", checkpoint_tick=newest.tick)
            tel.clean_restores += 1
            return RestoreOutcome(kind="ok", checkpoint_tick=newest.tick)

        # Newest checkpoint failed its guard: detected.
        tel.detected_failures += 1
        if newest.torn:
            tel.detected_torn += 1
        else:
            tel.detected_seu += 1
        lost = newest.epoch_progress
        previous = self.store.previous
        if previous is not None and previous.validate():
            tel.lost_progress += lost
            if previous.corrupted:
                tel.undetected_corruptions += 1
                tel.silent_corruptions += 1
                return RestoreOutcome(
                    kind="silent", checkpoint_tick=previous.tick, lost_progress=lost
                )
            tel.fallback_previous += 1
            return RestoreOutcome(
                kind="fallback_previous",
                checkpoint_tick=previous.tick,
                lost_progress=lost,
            )
        if previous is not None:
            # Both images bad; the previous one's stake is lost too.
            tel.detected_failures += 1
            if previous.torn:
                tel.detected_torn += 1
            else:
                tel.detected_seu += 1
            lost += previous.epoch_progress
        tel.lost_progress += lost
        tel.rollforwards += 1
        # Abandon the restore image entirely; stale checkpoints are
        # useless once rolled past.
        self.store.clear()
        return RestoreOutcome(kind="rollforward", lost_progress=lost)
