"""Device-level fault injection and graceful-degradation restore path.

Where :mod:`repro.analysis.faults` hardens the *host-side* experiment
engine, this package injects faults inside the *simulated device* and
gives the architecture a hardened recovery path: a seeded deterministic
:class:`DeviceFaultModel` (torn backups, STT-RAM SEU bit flips beyond
retention decay, brownout tails), CRC-8 guard words over each
checkpoint image, restore-time validation, and a newest → previous →
roll-forward fallback chain with full per-run telemetry. See DESIGN.md
"Device resilience".
"""

from .checkpoint import CRC8_POLY, Checkpoint, CheckpointStore, crc8
from .model import DeviceFaultModel
from .restore import (
    OUTCOME_KINDS,
    DeviceResilience,
    ResilienceConfig,
    ResilienceTelemetry,
    RestoreOutcome,
)

__all__ = [
    "CRC8_POLY",
    "Checkpoint",
    "CheckpointStore",
    "crc8",
    "DeviceFaultModel",
    "OUTCOME_KINDS",
    "DeviceResilience",
    "ResilienceConfig",
    "ResilienceTelemetry",
    "RestoreOutcome",
]
