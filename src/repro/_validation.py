"""Shared argument validators.

Small, explicit helpers used across the package so that every module
reports bad arguments with a consistent message style and a consistent
exception type (:class:`repro.errors.ConfigurationError` unless a more
specific type is supplied).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Type

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_int_in_range",
    "check_choice",
    "as_float_array",
    "check_probability",
]


def require(condition: bool, message: str, exc: Type[Exception] = ConfigurationError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive(value: float, name: str, exc: Type[Exception] = ConfigurationError) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise exc(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str, exc: Type[Exception] = ConfigurationError) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise exc(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    exc: Type[Exception] = ConfigurationError,
) -> float:
    """Validate that ``low <= value <= high``."""
    value = float(value)
    if not np.isfinite(value) or value < low or value > high:
        raise exc(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_int_in_range(
    value: int,
    name: str,
    low: int,
    high: Optional[int] = None,
    exc: Type[Exception] = ConfigurationError,
) -> int:
    """Validate that ``value`` is an integer with ``low <= value``.

    When ``high`` is given, additionally require ``value <= high``.
    Booleans are rejected: ``True`` is not an acceptable count.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise exc(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < low or (high is not None and value > high):
        bound = f"[{low}, {high}]" if high is not None else f">= {low}"
        raise exc(f"{name} must be in {bound}, got {value}")
    return value


def check_probability(value: float, name: str, exc: Type[Exception] = ConfigurationError) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0, exc=exc)


def check_choice(
    value: str,
    name: str,
    choices: Iterable[str],
    exc: Type[Exception] = ConfigurationError,
) -> str:
    """Validate that ``value`` is one of ``choices`` (case-sensitive)."""
    choices = tuple(choices)
    if value not in choices:
        raise exc(f"{name} must be one of {choices}, got {value!r}")
    return value


def as_float_array(
    values: Sequence[float],
    name: str,
    ndim: Optional[int] = None,
    exc: Type[Exception] = ConfigurationError,
) -> np.ndarray:
    """Convert ``values`` to a float64 numpy array, validating finiteness."""
    array = np.asarray(values, dtype=np.float64)
    if ndim is not None and array.ndim != ndim:
        raise exc(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if array.size and not np.all(np.isfinite(array)):
        raise exc(f"{name} must contain only finite values")
    return array
