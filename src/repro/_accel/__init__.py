"""Native accelerator for batched grid replay (optional, self-building).

The batch execution tier (:mod:`repro.system.batchsim`,
:mod:`repro.core.batchexec`) replays whole experiment grids through two
C kernels that are bit-exact ports of the Python fast paths. This
module owns their lifecycle:

* the C source lives in :mod:`repro._accel._csource` as a string;
* on first use it is compiled with the system C compiler into a shared
  library cached under a content-addressed name (sha256 of the source),
  so recompilation only happens when the source changes;
* the library is loaded with :mod:`ctypes` — no third-party build
  dependency, nothing to install.

The compile uses ``-O2 -ffp-contract=off`` and **not** ``-ffast-math``
or ``-march=native``: contraction of ``a*b+c`` into an FMA or any
reassociation would change IEEE-754 results and break the bit-exactness
contract the conformance suites enforce.

Everything degrades gracefully: no compiler, a failed compile, or
``REPRO_NO_ACCEL=1`` in the environment simply makes
:func:`available` return ``False`` and the engine stays on its
per-task tiers. The cache directory defaults to a per-user path under
the system temp dir and can be redirected with ``REPRO_ACCEL_CACHE``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Optional

from ._csource import C_SOURCE

__all__ = ["available", "load", "fixed_replay", "exec_replay"]

_LOCK = threading.Lock()
_LIB: Optional[ctypes.CDLL] = None
_FAILED = False


def _cache_dir() -> str:
    override = os.environ.get("REPRO_ACCEL_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-accel-{uid}")


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _compile(lib_path: str) -> None:
    """Compile the kernel source into ``lib_path`` (atomic rename)."""
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    cache = os.path.dirname(lib_path)
    os.makedirs(cache, exist_ok=True)
    src_path = os.path.join(cache, f"build-{os.getpid()}.c")
    tmp_path = os.path.join(cache, f"build-{os.getpid()}.so")
    try:
        with open(src_path, "w", encoding="utf-8") as handle:
            handle.write(C_SOURCE)
        cmd = [
            cc,
            "-O2",
            "-ffp-contract=off",
            "-fPIC",
            "-shared",
            src_path,
            "-o",
            tmp_path,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"accel compile failed ({cc} rc={proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_path, lib_path)
    finally:
        for path in (src_path, tmp_path):
            try:
                os.unlink(path)
            except OSError:
                pass


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    p = ctypes.c_void_p
    lib.repro_fixed_replay.restype = ctypes.c_longlong
    lib.repro_fixed_replay.argtypes = [p] * 13
    lib.repro_exec_replay.restype = ctypes.c_longlong
    lib.repro_exec_replay.argtypes = [p] * 21
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, building it on first use.

    Returns ``None`` (and remembers the failure) when the accelerator
    is disabled or cannot be built on this host.
    """
    global _LIB, _FAILED
    if _LIB is not None:
        return _LIB
    if _FAILED or os.environ.get("REPRO_NO_ACCEL"):
        return None
    with _LOCK:
        if _LIB is not None or _FAILED:
            return _LIB
        digest = hashlib.sha256(C_SOURCE.encode("utf-8")).hexdigest()[:16]
        lib_path = os.path.join(_cache_dir(), f"kern-{digest}.so")
        try:
            if not os.path.exists(lib_path):
                _compile(lib_path)
            _LIB = _bind(ctypes.CDLL(lib_path))
        except Exception as exc:  # pragma: no cover - host-dependent
            _FAILED = True
            print(f"repro accel disabled: {exc}", file=sys.stderr)
            return None
    return _LIB


def available() -> bool:
    """Whether the batch-tier C kernels can run on this host."""
    return load() is not None


def _ptr(array) -> int:
    """Data pointer of a C-contiguous numpy array (0 for ``None``)."""
    return 0 if array is None else array.ctypes.data


def fixed_replay(conv, direct, sticky, nonsticky, income, dp, ip,
                 backup_cost, bit_sched, lane_sched, backup_ticks,
                 iout, dout) -> int:
    """Run the fixed-bit replay kernel; returns its status code."""
    lib = load()
    if lib is None:
        raise RuntimeError("accelerator unavailable")
    return int(
        lib.repro_fixed_replay(
            _ptr(conv), _ptr(direct), _ptr(sticky), _ptr(nonsticky),
            _ptr(income), _ptr(dp), _ptr(ip), _ptr(backup_cost),
            _ptr(bit_sched), _ptr(lane_sched), _ptr(backup_ticks),
            _ptr(iout), _ptr(dout),
        )
    )


def exec_replay(conv, direct, sticky, nonsticky, power_mw, tick_e,
                backup_raw, reserve_tab, dp, ip, bit_sched, lane_sched,
                backup_ticks, element_bits, frame_completed, frame_incid,
                frame_abandoned, exposures, unstarted, iout, dout) -> int:
    """Run the incidental-executive replay kernel; returns its status."""
    lib = load()
    if lib is None:
        raise RuntimeError("accelerator unavailable")
    return int(
        lib.repro_exec_replay(
            _ptr(conv), _ptr(direct), _ptr(sticky), _ptr(nonsticky),
            _ptr(power_mw), _ptr(tick_e), _ptr(backup_raw),
            _ptr(reserve_tab), _ptr(dp), _ptr(ip), _ptr(bit_sched),
            _ptr(lane_sched), _ptr(backup_ticks), _ptr(element_bits),
            _ptr(frame_completed), _ptr(frame_incid),
            _ptr(frame_abandoned), _ptr(exposures), _ptr(unstarted),
            _ptr(iout), _ptr(dout),
        )
    )
