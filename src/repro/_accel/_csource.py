"""C source for the batched replay kernels.

The two functions here are line-for-line ports of the scalar replay
loops of :mod:`repro.system.fastsim` (``fast_fixed_run``) and
:mod:`repro.core.fastexec` (``fast_executive_run``). They are compiled
with ``-ffp-contract=off`` and without ``-ffast-math``, so every
floating-point operation happens in the same order, width and rounding
mode as the Python interpreter performs it (both are IEEE-754 binary64
on every platform we target). The conformance suites
(``tests/test_batch_equivalence.py``) arbitrate: any divergence from
the Python fast paths or the reference simulators is a bug here.

Port rules (the same discipline the fast paths follow against the
reference loop):

* ``a * b * c`` stays ``(a * b) * c`` — C's left-associativity matches
  Python's, and ``-ffp-contract=off`` forbids FMA contraction.
* Python ``int(x)`` on a non-negative float is the C ``(int64_t)`` cast
  (both truncate toward zero).
* ``np.searchsorted(a, v)`` (side='left') is a plain lower bound.
* Python ``min(a, b)`` is ``(a <= b) ? a : b`` — returns the *first*
  operand on ties, which matters when the operands are signed zeros.
* ``int / int`` true division is ``(double)a / (double)b``.

Error handling: the kernels never raise — they return a nonzero status
and the caller re-runs that lane through the Python fast path, which
raises the identical :class:`~repro.errors.SimulationError` the
reference would.
"""

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* np.searchsorted(a, v, side='left'): first index with a[i] >= v. */
static int64_t lower_bound(const int64_t *a, int64_t len, int64_t v)
{
    int64_t lo = 0, hi = len;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (a[mid] < v) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* Status codes shared by both kernels. Codes 2-4 map onto the three
 * SimulationError cases of the replay loops; >= 5 are capacity
 * overflows of the caller-provided output buffers (never expected for
 * real traces -- the caller falls back to the Python path). */
#define ST_OK               0
#define ST_RESTORE_SHORT    2
#define ST_BACKUP_SHORT     3
#define ST_RUN_DRAINED      4
#define ST_BACKUP_OVERFLOW  5
#define ST_EXP_OVERFLOW     6
#define ST_FRAME_OVERFLOW   7
#define ST_LANEDONE_OVERFLOW 8

/* ---------------------------------------------------------------------------
 * Fixed-bit replay (port of fastsim.fast_fixed_run's scalar loop).
 *
 * dp: 0=dt 1=capacity 2=leak_frac 3=floor_e 4=off_e 5=run_e 6=reserve
 *     7=restore_cost 8=start_level 9=instr_per_tick 10=run_energy_per_tick
 * ip: 0=n 1=n_nonsticky 2=n_income 3=bits 4=simd_width 5=has_direct
 *     6=backup_cap
 * iout: 0=committed 1=on_ticks 2=n_backups 3=n_restores
 * dout: 0=run_energy 1=total_backup_energy 2=total_restore_energy
 * ------------------------------------------------------------------------- */
int64_t repro_fixed_replay(
    const double *conv, const double *direct, const uint8_t *sticky,
    const int64_t *nonsticky, const int64_t *income,
    const double *dp, const int64_t *ip, const double *backup_cost,
    int16_t *bit_sched, int16_t *lane_sched, int64_t *backup_ticks,
    int64_t *iout, double *dout)
{
    const int64_t n = ip[0], n_nonsticky = ip[1], n_income = ip[2];
    const int64_t bits = ip[3], simd = ip[4], has_direct = ip[5];
    const int64_t backup_cap = ip[6];
    const double dt = dp[0], capacity = dp[1], leak_frac = dp[2];
    const double floor_e = dp[3], off_e = dp[4], run_e = dp[5];
    const double reserve = dp[6], restore_cost = dp[7], start_level = dp[8];
    const double instr_per_tick = dp[9], run_e_tick = dp[10];

    double e = 0.0, residue = 0.0, run_energy = 0.0;
    double total_backup = 0.0, total_restore = 0.0;
    int64_t t = 0, on_ticks = 0, committed = 0;
    int64_t n_backups = 0, n_restores = 0;
    int running = 0;

    while (t < n) {
        if (!running) {
            /* OFF: charge, leak, off-drain, then restore if possible. */
            if (e == 0.0 && sticky[t]) {
                int64_t j = lower_bound(nonsticky, n_nonsticky, t);
                t = (j < n_nonsticky) ? nonsticky[j] : n;
                continue;
            }
            double c = conv[t];
            if (c == 0.0) {
                /* Zero-income decay span. */
                int64_t j = lower_bound(income, n_income, t);
                int64_t span_end = (j < n_income) ? income[j] : n;
                while (t < span_end) {
                    double loss = e * leak_frac * dt + floor_e;
                    if (loss > e) loss = e;
                    e -= loss;
                    if (e >= off_e) {
                        e -= off_e;
                        t += 1;
                    } else {
                        e = 0.0;
                        t += 1;
                        break;
                    }
                }
                continue;
            }
            double incoming = c * dt;
            double room = capacity - e;
            e += (incoming < room) ? incoming : room;
            if (e > 0.0) {
                double loss = e * leak_frac * dt + floor_e;
                if (loss > e) loss = e;
                e -= loss;
            }
            if (e >= off_e) e -= off_e; else e = 0.0;
            if (e >= start_level) {
                /* RESTORE occupies this tick. */
                if (restore_cost > e + 1e-12) return ST_RESTORE_SHORT;
                e -= restore_cost;
                if (e < 0.0) e = 0.0;
                total_restore += restore_cost;
                n_restores += 1;
                running = 1;
                on_ticks += 1;
            }
            t += 1;
            continue;
        }

        /* RUN: charge (bypass channel when dual), leak, then either a
         * power-emergency backup or one executed tick. */
        double c = has_direct ? direct[t] : conv[t];
        if (c > 0.0) {
            double incoming = c * dt;
            double room = capacity - e;
            e += (incoming < room) ? incoming : room;
        }
        if (e > 0.0) {
            double loss = e * leak_frac * dt + floor_e;
            if (loss > e) loss = e;
            e -= loss;
        }
        if (e - run_e < reserve) {
            int64_t b0 = bits;
            double cost = backup_cost[b0];
            while (b0 > 1 && cost > e) {
                b0 -= 1;
                cost = backup_cost[b0];
            }
            if (cost > e + 1e-12) return ST_BACKUP_SHORT;
            e -= cost;
            if (e < 0.0) e = 0.0;
            total_backup += cost;
            if (n_backups >= backup_cap) return ST_BACKUP_OVERFLOW;
            backup_ticks[n_backups] = t;
            n_backups += 1;
            running = 0;
            on_ticks += 1;
            t += 1;
            continue;
        }
        if (run_e <= e) e -= run_e; else return ST_RUN_DRAINED;
        double exact = instr_per_tick + residue;
        int64_t ipl = (int64_t)exact;
        residue = exact - (double)ipl;
        committed += ipl;
        run_energy += run_e_tick;
        bit_sched[t] = (int16_t)bits;
        lane_sched[t] = (int16_t)simd;
        on_ticks += 1;
        t += 1;
    }

    iout[0] = committed;
    iout[1] = on_ticks;
    iout[2] = n_backups;
    iout[3] = n_restores;
    dout[0] = run_energy;
    dout[1] = total_backup;
    dout[2] = total_restore;
    return ST_OK;
}

/* ---------------------------------------------------------------------------
 * Incidental-executive replay (port of fastexec.fast_executive_run and
 * the IncidentalExecutive bookkeeping it calls back into).
 *
 * Lane-cost tables are indexed by the lane tuple: widths 1-4, bits 1-8
 * per lane, laid out width-major (offsets 0, 8, 72, 584; 4680 entries).
 * power_mw[i]   = run_power_uw(tuple) * mix_weight
 * tick_e[i]     = power_mw[i] * dt       (dt == 1e-4, the run-energy literal)
 * backup_raw[i] = backup_energy_uj(tuple)
 * reserve_tab[i]= backup_raw[i] * (1 + backup_margin)
 *
 * dp: 0=dt 1=capacity 2=leak_frac 3=floor_e 4=off_e 5=start_level
 *     6=restore_cost 7=comfort 8=reserve_level 9=horizon_denom
 *     10=instr_per_tick
 * ip: 0=n 1=n_nonsticky 2=has_direct 3=cur_minb 4=cur_maxb 5=lane_minb
 *     6=lane_maxb 7=max_pending 8=enable_simd 9=ac_enabled 10=period
 *     11=n_elements 12=instr_per_element 13=recover_frame 14=rollforward
 *     15=buf_cap 16=max_frames 17=backup_cap 18=exp_cap
 * element_bits: max_frames * n_elements int8, zeroed by the caller.
 * frame_completed: max_frames int64, -1 = not completed.
 * exposures: exp_cap * 3 int64 rows of (frame_id, outage, elements_done)
 *            in chronological append order.
 * unstarted: max_frames int64 scratch.
 * iout: 0..3=committed[0..3] 4=on_ticks 5=idle_instructions 6=arrived
 *       7=n_backups 8=n_restores 9=n_exposures
 * dout: 0=run_energy 1=total_backup_energy 2=total_restore_energy
 * ------------------------------------------------------------------------- */

static const int64_t TUP_OFF[4] = {0, 8, 72, 584};

static int64_t tup_idx(const int64_t *lanes, int64_t w)
{
    int64_t idx = TUP_OFF[w - 1];
    int64_t mul = 1;
    for (int64_t i = 0; i < w; i++) {
        idx += (lanes[i] - 1) * mul;
        mul *= 8;
    }
    return idx;
}

/* IncidentalExecutive._fill: paint element_bits[start:stop] and return
 * the advanced done mark. ne_f is (double)ne, exact for any real frame. */
static double fill_row(int8_t *row, int64_t ne, double ne_f,
                       double done, double elements, int64_t bits)
{
    int64_t start = (int64_t)done;
    double nd = done + elements;
    double new_done = (ne_f <= nd) ? ne_f : nd; /* min(float(ne), done+elements) */
    int64_t stop = (new_done < ne_f) ? (int64_t)new_done : ne;
    if (stop > start) {
        for (int64_t k = start; k < stop; k++) row[k] = (int8_t)bits;
    }
    return new_done;
}

int64_t repro_exec_replay(
    const double *conv, const double *direct, const uint8_t *sticky,
    const int64_t *nonsticky,
    const double *power_mw, const double *tick_e,
    const double *backup_raw, const double *reserve_tab,
    const double *dp, const int64_t *ip,
    int16_t *bit_sched, int16_t *lane_sched, int64_t *backup_ticks,
    int8_t *element_bits, int64_t *frame_completed,
    uint8_t *frame_incid, uint8_t *frame_abandoned,
    int64_t *exposures, int64_t *unstarted,
    int64_t *iout, double *dout)
{
    const int64_t n = ip[0], n_nonsticky = ip[1], has_direct = ip[2];
    const int64_t cur_minb = ip[3], cur_maxb = ip[4];
    const int64_t lane_minb = ip[5], lane_maxb = ip[6];
    const int64_t max_pending = ip[7], enable_simd = ip[8];
    const int64_t ac_enabled = ip[9], period = ip[10];
    const int64_t ne = ip[11], ipe = ip[12];
    const int64_t recover_frame = ip[13], rollforward = ip[14];
    const int64_t buf_cap = ip[15], max_frames = ip[16];
    const int64_t backup_cap = ip[17], exp_cap = ip[18];
    const double dt = dp[0], capacity = dp[1], leak_frac = dp[2];
    const double floor_e = dp[3], off_e = dp[4], start_level = dp[5];
    const double restore_cost = dp[6], comfort = dp[7];
    const double reserve_level = dp[8], horizon_denom = dp[9];
    const double instr_per_tick = dp[10];
    const double ne_f = (double)ne;

    /* Executive bookkeeping state (all bounded by construction). */
    int64_t buf_fid[4]; int64_t buf_done[4]; int64_t buf_len = 0;
    int64_t ld_fid[8]; double ld_done[8]; int64_t ld_len = 0;
    int64_t lane_frames[3]; int64_t n_lane_frames = 0;
    int64_t unstarted_len = 0, arrived = 0;
    int64_t current = -1; double current_done = 0.0;
    int64_t idle = 0;
    int64_t last_backup_tick = 0; int has_last_backup = 0;
    int64_t idle_instr = 0, n_exp = 0;
    int64_t committed[4] = {0, 0, 0, 0};

    double e = 0.0, residue = 0.0, run_energy = 0.0;
    double total_backup = 0.0, total_restore = 0.0;
    int64_t t = 0, on_ticks = 0, n_backups = 0, n_restores = 0;
    int running = 0;

    while (t < n) {
        if (!running) {
            /* OFF: charge, leak, off-drain, restore when possible. */
            if (e == 0.0 && sticky[t]) {
                int64_t j = lower_bound(nonsticky, n_nonsticky, t);
                t = (j < n_nonsticky) ? nonsticky[j] : n;
                continue;
            }
            double c = conv[t];
            if (c > 0.0) {
                double incoming = c * dt;
                double room = capacity - e;
                e += (incoming < room) ? incoming : room;
            }
            if (e > 0.0) {
                double loss = e * leak_frac * dt + floor_e;
                if (loss > e) loss = e;
                e -= loss;
            }
            if (e >= off_e) e -= off_e; else e = 0.0;
            if (e >= start_level) {
                /* RESTORE occupies this tick. */
                if (restore_cost > e + 1e-12) return ST_RESTORE_SHORT;
                e -= restore_cost;
                if (e < 0.0) e = 0.0;
                total_restore += restore_cost;
                n_restores += 1;
                /* notify_restore: advance arrivals, record exposures. */
                {
                    int64_t due = t / period + 1;
                    while (arrived < due) {
                        if (arrived >= max_frames) return ST_FRAME_OVERFLOW;
                        unstarted[unstarted_len++] = arrived;
                        arrived += 1;
                    }
                }
                if (has_last_backup) {
                    int64_t outage = t - last_backup_tick;
                    for (int64_t q = 0; q < buf_len; q++) {
                        if (n_exp >= exp_cap) return ST_EXP_OVERFLOW;
                        exposures[3 * n_exp] = buf_fid[q];
                        exposures[3 * n_exp + 1] = outage;
                        exposures[3 * n_exp + 2] = buf_done[q];
                        n_exp += 1;
                    }
                    has_last_backup = 0;
                }
                running = 1;
                on_ticks += 1;
            }
            t += 1;
            continue;
        }

        /* RUN: charge (bypass channel when dual), leak, allocate, then
         * either a power-emergency backup or one executed tick. */
        double c = has_direct ? direct[t] : conv[t];
        if (c > 0.0) {
            double incoming = c * dt;
            double room = capacity - e;
            e += (incoming < room) ? incoming : room;
        }
        if (e > 0.0) {
            double loss = e * leak_frac * dt + floor_e;
            if (loss > e) loss = e;
            e -= loss;
        }

        /* -- IncidentalExecutive.allocate, inlined ---------------------- */
        if (arrived * period <= t) {
            int64_t due = t / period + 1;
            while (arrived < due) {
                if (arrived >= max_frames) return ST_FRAME_OVERFLOW;
                unstarted[unstarted_len++] = arrived;
                arrived += 1;
            }
        }
        if (current < 0) {
            /* _pick_current: roll-forward priority, newest first. */
            int64_t candidate = -1;
            if (rollforward && unstarted_len > 0)
                candidate = unstarted[unstarted_len - 1];
            if (candidate < 0 && buf_len > 0) {
                int64_t bi = 0;
                for (int64_t q = 1; q < buf_len; q++)
                    if (buf_fid[q] > buf_fid[bi]) bi = q;
                current = buf_fid[bi];
                current_done = (double)buf_done[bi];
                for (int64_t q = bi; q < buf_len - 1; q++) {
                    buf_fid[q] = buf_fid[q + 1];
                    buf_done[q] = buf_done[q + 1];
                }
                buf_len -= 1;
            } else {
                if (candidate < 0 && !rollforward && unstarted_len > 0)
                    candidate = unstarted[unstarted_len - 1];
                if (candidate >= 0) {
                    unstarted_len -= 1;
                    current = candidate;
                    current_done = 0.0;
                } else {
                    current = -1;
                    current_done = 0.0;
                }
            }
        }
        idle = (current < 0);

        /* ApproximationControlUnit.power_budget_uw */
        double budget = (c > 0.0) ? c : 0.0;
        if (e > comfort) budget = budget + (e - comfort) / horizon_denom;
        else if (e < reserve_level) budget = 0.0;

        /* Current-lane bits (bits_for_budget with no base lanes). */
        int64_t lanes[4];
        int64_t cur;
        if (!ac_enabled) {
            cur = cur_maxb;
        } else {
            cur = cur_minb;
            for (int64_t b = cur_maxb; b >= cur_minb; b--) {
                if (power_mw[b - 1] <= budget) { cur = b; break; }
            }
        }
        lanes[0] = cur;
        int64_t n_lanes = 1;

        /* Incidental SIMD lanes: split the surplus fairly. */
        int64_t pending = enable_simd ? buf_len : 0;
        if (pending > max_pending) pending = max_pending;
        if (e < reserve_level) pending = 0;
        if (pending) {
            double current_power = power_mw[cur - 1];
            double share = budget - current_power;
            if (share < 0.0) share = 0.0;
            share = share / (double)pending;
            if (!ac_enabled) {
                for (int64_t q = 0; q < pending; q++) lanes[n_lanes++] = lane_maxb;
            } else {
                for (int64_t q = 0; q < pending; q++) {
                    double base_power = power_mw[tup_idx(lanes, n_lanes)];
                    int64_t chosen = lane_minb;
                    for (int64_t b = lane_maxb; b >= lane_minb; b--) {
                        lanes[n_lanes] = b;
                        double total = power_mw[tup_idx(lanes, n_lanes + 1)];
                        if (total - base_power <= share) { chosen = b; break; }
                    }
                    lanes[n_lanes++] = chosen;
                }
            }
        }

        /* lane_frames = sorted(buffered, reverse=True)[: len(lanes)-1],
         * set before narrowing exactly as the reference does. */
        {
            int64_t tmp[4];
            for (int64_t q = 0; q < buf_len; q++) tmp[q] = buf_fid[q];
            for (int64_t q = 1; q < buf_len; q++) { /* insertion sort desc */
                int64_t v = tmp[q];
                int64_t w = q - 1;
                while (w >= 0 && tmp[w] < v) { tmp[w + 1] = tmp[w]; w -= 1; }
                tmp[w + 1] = v;
            }
            int64_t k = n_lanes - 1;
            if (k > buf_len) k = buf_len;
            n_lane_frames = k;
            for (int64_t q = 0; q < k; q++) lane_frames[q] = tmp[q];
        }

        /* Reserve-driven lane narrowing. */
        int64_t ti = tup_idx(lanes, n_lanes);
        double tick_energy = tick_e[ti];
        double res = reserve_tab[ti];
        while (n_lanes > 1 && e - tick_energy < res) {
            n_lanes -= 1;
            ti = tup_idx(lanes, n_lanes);
            tick_energy = tick_e[ti];
            res = reserve_tab[ti];
        }

        if (e - tick_energy < res) {
            /* Power emergency: back up, narrowing lane 0 if short. */
            double cost = backup_raw[ti];
            while (lanes[0] > 1 && cost > e) {
                lanes[0] -= 1;
                cost = backup_raw[tup_idx(lanes, n_lanes)];
            }
            if (cost > e + 1e-12) return ST_BACKUP_SHORT;
            e -= cost;
            if (e < 0.0) e = 0.0;
            total_backup += cost;
            if (n_backups >= backup_cap) return ST_BACKUP_OVERFLOW;
            backup_ticks[n_backups] = t;
            n_backups += 1;

            /* notify_backup: fold adopted lanes back into the buffer. */
            for (int64_t k = 0; k < ld_len; k++) {
                int64_t fid = ld_fid[k];
                int64_t bi = -1;
                for (int64_t q = 0; q < buf_len; q++)
                    if (buf_fid[q] == fid) { bi = q; break; }
                if (bi < 0) continue;
                if (recover_frame) {
                    memset(element_bits + fid * ne, 0, (size_t)ne);
                    buf_done[bi] = 0;
                } else if ((int64_t)ld_done[k] > buf_done[bi]) {
                    buf_done[bi] = (int64_t)ld_done[k];
                }
            }
            ld_len = 0;
            n_lane_frames = 0;
            if (current >= 0 && frame_completed[current] < 0) {
                int64_t kept;
                if (recover_frame) {
                    memset(element_bits + current * ne, 0, (size_t)ne);
                    kept = 0;
                } else {
                    kept = (int64_t)current_done;
                }
                if (buf_len == buf_cap) {
                    frame_abandoned[buf_fid[0]] = 1;
                    for (int64_t q = 0; q < buf_len - 1; q++) {
                        buf_fid[q] = buf_fid[q + 1];
                        buf_done[q] = buf_done[q + 1];
                    }
                    buf_len -= 1;
                }
                buf_fid[buf_len] = current;
                buf_done[buf_len] = kept;
                buf_len += 1;
            }
            current = -1;
            current_done = 0.0;
            last_backup_tick = t;
            has_last_backup = 1;

            running = 0;
            on_ticks += 1;
            t += 1;
            continue;
        }

        if (tick_energy <= e) e -= tick_energy; else return ST_RUN_DRAINED;
        double exact = instr_per_tick + residue;
        int64_t ipl = (int64_t)exact;
        residue = exact - (double)ipl;
        for (int64_t q = 0; q < n_lanes; q++) committed[q] += ipl;
        run_energy += tick_e[ti]; /* == run_power * 1.0e-4 (dt is 1e-4) */

        /* notify_executed. */
        {
            double elements = (double)ipl / (double)ipe;
            if (idle || current < 0) {
                idle_instr += ipl * n_lanes;
            } else {
                current_done = fill_row(element_bits + current * ne, ne, ne_f,
                                        current_done, elements, lanes[0]);
                if (current_done >= ne_f) {
                    frame_completed[current] = t;
                    current = -1;
                }
                int64_t nz = n_lanes - 1;
                if (nz > n_lane_frames) nz = n_lane_frames;
                for (int64_t i = 0; i < nz; i++) {
                    int64_t fid = lane_frames[i];
                    int64_t bits = lanes[1 + i];
                    int64_t li = -1;
                    for (int64_t k = 0; k < ld_len; k++)
                        if (ld_fid[k] == fid) { li = k; break; }
                    double done;
                    if (li < 0) {
                        int64_t bi = -1;
                        for (int64_t q = 0; q < buf_len; q++)
                            if (buf_fid[q] == fid) { bi = q; break; }
                        done = (bi >= 0) ? (double)buf_done[bi] : 0.0;
                    } else {
                        done = ld_done[li];
                    }
                    done = fill_row(element_bits + fid * ne, ne, ne_f,
                                    done, elements, bits);
                    if (li < 0) {
                        if (ld_len >= 8) return ST_LANEDONE_OVERFLOW;
                        ld_fid[ld_len] = fid;
                        ld_done[ld_len] = done;
                        li = ld_len;
                        ld_len += 1;
                    } else {
                        ld_done[li] = done;
                    }
                    if (done >= ne_f) {
                        frame_completed[fid] = t;
                        frame_incid[fid] = 1;
                        int64_t bi = -1;
                        for (int64_t q = 0; q < buf_len; q++)
                            if (buf_fid[q] == fid) { bi = q; break; }
                        if (bi >= 0) {
                            for (int64_t q = bi; q < buf_len - 1; q++) {
                                buf_fid[q] = buf_fid[q + 1];
                                buf_done[q] = buf_done[q + 1];
                            }
                            buf_len -= 1;
                        }
                        for (int64_t k = li; k < ld_len - 1; k++) {
                            ld_fid[k] = ld_fid[k + 1];
                            ld_done[k] = ld_done[k + 1];
                        }
                        ld_len -= 1;
                    }
                }
            }
        }

        bit_sched[t] = (int16_t)lanes[0];
        lane_sched[t] = (int16_t)n_lanes;
        on_ticks += 1;
        t += 1;
    }

    iout[0] = committed[0];
    iout[1] = committed[1];
    iout[2] = committed[2];
    iout[3] = committed[3];
    iout[4] = on_ticks;
    iout[5] = idle_instr;
    iout[6] = arrived;
    iout[7] = n_backups;
    iout[8] = n_restores;
    iout[9] = n_exp;
    dout[0] = run_energy;
    dout[1] = total_backup;
    dout[2] = total_restore;
    return ST_OK;
}
"""
