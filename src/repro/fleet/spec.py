"""Fleet specifications and per-device tasks.

A fleet is a weighted mixture of *archetypes* (a harvester mode plus a
device configuration and its manufacturing spread). :meth:`FleetSpec.tasks`
expands the mixture into one :class:`FleetDeviceTask` per device, with
every random draw derived from the fleet seed and the device index via
:func:`repro.analysis.engine.derive_task_seed` — the expansion is a
pure function of the spec, independent of enumeration order, process,
and worker count.

:class:`FleetDeviceTask` is duck-type compatible with
:class:`repro.analysis.engine.FixedBitTask` where the engine cares
(``cache_key``/``build_trace``/``run`` plus the batch-tier attributes
``bits``/``simd_width``/``policy``/``kernel`` and the chunk-planning
hooks ``trace_ticks``/``trace_signature``), and adds
``system_config()`` so per-device capacitor heterogeneity reaches both
the batch kernel and the per-task fallback identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._validation import check_int_in_range, check_positive
from ..analysis.engine import ENGINE_CACHE_VERSION, derive_task_seed
from ..energy.traces import (
    PowerTrace,
    SYNTH_TRACE_MODES,
    synth_trace_ticks,
    synthesize_trace,
)
from ..errors import ConfigurationError
from ..kernels.registry import kernel_mix
from ..nvm.retention import STANDARD_POLICY_NAMES, policy_by_name
from ..system.config import SystemConfig
from ..system.metrics import SimulationResult
from ..system.simulator import simulate_fixed_bits

__all__ = [
    "DEFAULT_ARCHETYPES",
    "FleetArchetype",
    "FleetDeviceTask",
    "FleetSpec",
    "clear_fleet_trace_memo",
]

_POLICY_CHOICES = ("precise",) + tuple(STANDARD_POLICY_NAMES)

# Per-process memo of synthesised device traces. Identity matters
# beyond speed: the batch plan dedups slots by trace *object*, so two
# lanes of the same device must see the same PowerTrace instance.
# Bounded FIFO — eviction only costs a re-synthesis (and a lost dedup),
# never correctness.
_TRACE_MEMO: Dict[Tuple, PowerTrace] = {}
_TRACE_MEMO_MAX = 4096


def _fleet_trace(
    mode: str, seed: int, duration_s: float, scale: float
) -> PowerTrace:
    key = (mode, seed, duration_s, scale)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = synthesize_trace(mode, seed, duration_s=duration_s, scale=scale)
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


def clear_fleet_trace_memo() -> None:
    """Drop the per-process synthesised-trace memo."""
    _TRACE_MEMO.clear()


@dataclass(frozen=True)
class FleetDeviceTask:
    """One simulated fleet device, as a hashable value object.

    Fully describes the device: its seeded harvester trace (mode, seed,
    duration, efficiency ``scale``) and its hardware configuration
    (bitwidth, SIMD width, retention policy, kernel mix, capacitor
    size). The cache key prepends
    :data:`repro.analysis.engine.ResultCache.FLEET_PREFIX`, so fleet
    entries are counted separately by ``repro cache info`` while using
    the ordinary fixed-bit read/write paths.
    """

    device_id: int
    archetype: str
    mode: str
    trace_seed: int
    duration_s: float = 1.0
    scale: float = 1.0
    bits: int = 8
    simd_width: int = 1
    policy: str = "precise"
    kernel: Optional[str] = None
    capacitor_uj: float = 4.5

    def __post_init__(self) -> None:
        if self.mode not in SYNTH_TRACE_MODES:
            raise ConfigurationError(
                f"mode must be one of {SYNTH_TRACE_MODES}, got {self.mode!r}"
            )
        if self.policy not in _POLICY_CHOICES:
            raise ConfigurationError(
                f"policy must be one of {_POLICY_CHOICES}, got {self.policy!r}"
            )
        check_int_in_range(self.bits, "bits", 1, 8)
        check_int_in_range(self.simd_width, "simd_width", 1, 4)
        check_positive(self.duration_s, "duration_s")
        check_positive(self.scale, "scale")
        check_positive(self.capacitor_uj, "capacitor_uj")

    def cache_key(self) -> str:
        """Prefixed content hash of the device config and code version."""
        payload = dataclasses.asdict(self)
        payload["__engine__"] = ENGINE_CACHE_VERSION
        payload["__task__"] = "fleet"
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        return f"fleet-{digest}"

    def system_config(self) -> SystemConfig:
        """The device's system configuration (capacitor heterogeneity)."""
        return SystemConfig(capacitor_uj=self.capacitor_uj)

    def build_trace(self) -> PowerTrace:
        """The device's seeded harvester trace (memoised, deterministic)."""
        return _fleet_trace(self.mode, self.trace_seed, self.duration_s, self.scale)

    def trace_ticks(self) -> int:
        """Tick count of :meth:`build_trace`, without synthesising it."""
        return synth_trace_ticks(self.duration_s)

    def trace_signature(self) -> Tuple:
        """Hashable (trace, config) identity for chunk dedup planning."""
        return (
            "fleet",
            self.mode,
            self.trace_seed,
            self.duration_s,
            self.scale,
            self.capacitor_uj,
        )

    def run(self, engine: str = "auto", tracer=None) -> SimulationResult:
        """Execute the device simulation (no caching at this level)."""
        policy = None if self.policy == "precise" else policy_by_name(self.policy)
        kwargs = {}
        if self.kernel is not None:
            kwargs["mix"] = kernel_mix(self.kernel)
        return simulate_fixed_bits(
            self.build_trace(),
            self.bits,
            simd_width=self.simd_width,
            policy=policy,
            config=self.system_config(),
            engine=engine,
            tracer=tracer,
            **kwargs,
        )


@dataclass(frozen=True)
class FleetArchetype:
    """One weighted device class within a fleet.

    ``capacitor_spread`` is the ± fractional uniform manufacturing
    spread around ``capacitor_uj``; ``scale_sigma`` the lognormal sigma
    of the device's harvester efficiency (median 1.0). ``duration_s``
    overrides the fleet-wide window for this archetype (e.g. a few
    long-horizon gateway devices among many short-window sensors).
    """

    name: str
    mode: str = "solar"
    weight: float = 1.0
    bits: int = 8
    simd_width: int = 1
    policy: str = "precise"
    kernel: Optional[str] = None
    capacitor_uj: float = 4.5
    capacitor_spread: float = 0.25
    scale_sigma: float = 0.35
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in SYNTH_TRACE_MODES:
            raise ConfigurationError(
                f"mode must be one of {SYNTH_TRACE_MODES}, got {self.mode!r}"
            )
        check_positive(self.weight, "weight")
        check_positive(self.capacitor_uj, "capacitor_uj")
        if not 0.0 <= self.capacitor_spread < 1.0:
            raise ConfigurationError(
                "capacitor_spread must be in [0, 1), got "
                f"{self.capacitor_spread!r}"
            )
        if self.scale_sigma < 0.0:
            raise ConfigurationError(
                f"scale_sigma must be >= 0, got {self.scale_sigma!r}"
            )
        if self.duration_s is not None:
            check_positive(self.duration_s, "duration_s")


#: A representative heterogeneous mixture: mostly solar window sensors,
#: a band of RF scavengers, and a thermal wearable tail.
DEFAULT_ARCHETYPES: Tuple[FleetArchetype, ...] = (
    FleetArchetype(name="solar-sensor", mode="solar", weight=0.5),
    FleetArchetype(
        name="rf-scavenger", mode="rf", weight=0.3, capacitor_uj=6.0, bits=6
    ),
    FleetArchetype(
        name="thermal-wearable",
        mode="thermal",
        weight=0.2,
        capacitor_uj=3.0,
        policy="log",
    ),
)


@dataclass(frozen=True)
class FleetSpec:
    """A fleet: N devices drawn from a weighted archetype mixture."""

    n_devices: int = 1000
    seed: int = 0
    duration_s: float = 1.0
    archetypes: Tuple[FleetArchetype, ...] = DEFAULT_ARCHETYPES

    def __post_init__(self) -> None:
        check_int_in_range(self.n_devices, "n_devices", 1)
        check_positive(self.duration_s, "duration_s")
        if not self.archetypes:
            raise ConfigurationError("a fleet needs at least one archetype")

    def tasks(self) -> Tuple[FleetDeviceTask, ...]:
        """Expand the fleet into per-device tasks, deterministically.

        Each device's archetype pick, efficiency scale, capacitor draw
        and trace seed derive from ``(seed, device_id)`` alone —
        reordering, filtering or resizing the fleet never changes any
        surviving device's task.
        """
        weights = np.array([a.weight for a in self.archetypes], dtype=np.float64)
        cumulative = np.cumsum(weights / weights.sum())
        tasks: List[FleetDeviceTask] = []
        for device_id in range(self.n_devices):
            rng = np.random.default_rng(
                derive_task_seed(self.seed, "fleet-device", device_id)
            )
            arch = self.archetypes[
                int(np.searchsorted(cumulative, rng.random(), side="right").clip(
                    0, len(self.archetypes) - 1
                ))
            ]
            scale = 1.0
            if arch.scale_sigma:
                scale = float(np.exp(rng.normal(0.0, arch.scale_sigma)))
            capacitor = arch.capacitor_uj
            if arch.capacitor_spread:
                capacitor *= 1.0 + arch.capacitor_spread * float(
                    rng.uniform(-1.0, 1.0)
                )
            tasks.append(
                FleetDeviceTask(
                    device_id=device_id,
                    archetype=arch.name,
                    mode=arch.mode,
                    trace_seed=derive_task_seed(
                        self.seed, "fleet-trace", device_id
                    ),
                    duration_s=(
                        arch.duration_s
                        if arch.duration_s is not None
                        else self.duration_s
                    ),
                    scale=round(scale, 9),
                    bits=arch.bits,
                    simd_width=arch.simd_width,
                    policy=arch.policy,
                    kernel=arch.kernel,
                    capacitor_uj=round(capacitor, 9),
                )
            )
        return tuple(tasks)
