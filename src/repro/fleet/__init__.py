"""Fleet-scale scenario simulation: thousands of heterogeneous devices.

The paper evaluates one wristwatch NVP on five measured power
profiles. This package opens the workload up to population scale — the
"millions of users" story told honestly, where the users are devices:

* :class:`FleetSpec` describes a fleet as weighted device archetypes
  (harvester mode, bitwidth, retention policy, capacitor size and
  device-to-device spread) and expands it deterministically into one
  :class:`FleetDeviceTask` per device, each with its own seeded
  vectorised harvester trace
  (:func:`repro.energy.traces.synthesize_trace`);
* the tasks ride the ordinary engine pipeline — content-addressed
  caching (``fleet-`` prefixed entries), the chunk-sharded batch tier,
  robust retries/telemetry — via :func:`repro.analysis.engine.run_grid`;
* :func:`run_fleet` aggregates the per-device results into fleet
  distributions: forward-progress and availability percentiles, an
  availability CDF, energy per unit of progress, and per-archetype
  summaries, exported as mergeable
  :class:`repro.obs.metrics.MetricsRegistry` histograms.
"""

from .spec import (
    DEFAULT_ARCHETYPES,
    FleetArchetype,
    FleetDeviceTask,
    FleetSpec,
    clear_fleet_trace_memo,
)
from .runner import FleetResult, run_fleet

__all__ = [
    "DEFAULT_ARCHETYPES",
    "FleetArchetype",
    "FleetDeviceTask",
    "FleetSpec",
    "FleetResult",
    "run_fleet",
    "clear_fleet_trace_memo",
]
