"""Fleet campaign execution and distribution summaries.

:func:`run_fleet` pushes a :class:`~repro.fleet.spec.FleetSpec`'s
device tasks through the ordinary engine pipeline — cache, the
chunk-sharded batch tier, robust retries — and folds the per-device
results into population distributions. All aggregates are also
exported as :class:`repro.obs.metrics.MetricsRegistry` histograms and
counters, so fleet runs merge exactly like any other obs payload
(e.g. summing shard registries across campaign services).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis import engine as engine_mod
from ..obs.metrics import MetricsRegistry
from ..system.metrics import SimulationResult
from .spec import FleetDeviceTask, FleetSpec

__all__ = [
    "AVAILABILITY_BUCKETS",
    "FleetResult",
    "PERCENTILES",
    "run_fleet",
]

#: Reported percentile levels for all fleet distributions.
PERCENTILES: Tuple[int, ...] = (5, 25, 50, 75, 95, 99)

#: Availability (on-fraction) histogram bounds / CDF thresholds.
AVAILABILITY_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Forward progress per second of trace (committed instructions/s).
_PROGRESS_RATE_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 3e5, 1e6, 3e6, 1e7,
)

#: Energy per committed instruction (µJ); right-open overflow bucket
#: catches devices that never commit.
_ENERGY_PER_PROGRESS_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 1e-1,
)


def _percentile_dict(values: np.ndarray) -> Dict[str, float]:
    return {
        f"p{level}": float(np.percentile(values, level))
        for level in PERCENTILES
    }


@dataclass(frozen=True)
class FleetResult:
    """Population distributions of one fleet campaign.

    ``availability_cdf`` maps each threshold ``t`` of
    :data:`AVAILABILITY_BUCKETS` to the fraction of devices whose
    availability (on-tick fraction) is ``<= t`` — a true CDF, so
    "fraction of fleet at least 90 % available" is
    ``1 - cdf[0.9 - step]``. ``metrics`` is a mergeable
    :class:`~repro.obs.metrics.MetricsRegistry` export.
    """

    spec: FleetSpec
    tasks: Tuple[FleetDeviceTask, ...]
    results: Tuple[SimulationResult, ...]
    progress_percentiles: Dict[str, float]
    progress_rate_percentiles: Dict[str, float]
    availability_percentiles: Dict[str, float]
    availability_cdf: Dict[float, float]
    energy_per_progress_percentiles: Dict[str, float]
    per_archetype: Dict[str, Dict[str, float]]
    metrics: Dict[str, object]

    def __len__(self) -> int:
        return len(self.tasks)


def run_fleet(
    spec: FleetSpec,
    workers: Optional[int] = None,
    engine: str = "auto",
    cache: Optional["engine_mod.ResultCache"] = None,
    batch: Optional[bool] = None,
) -> FleetResult:
    """Simulate every device of ``spec`` and summarise the population.

    Execution is delegated to :func:`repro.analysis.engine.run_grid`
    (same tiers, cache and telemetry as any experiment grid), so a
    fleet is deterministic for any worker count and chunking, and
    warm-cache reruns skip simulation entirely.
    """
    tasks = spec.tasks()
    grid = engine_mod.run_grid(
        tasks, workers=workers, cache=cache, engine=engine, batch=batch
    )
    results = grid.results

    progress = np.array(
        [r.forward_progress for r in results], dtype=np.float64
    )
    total_ticks = np.array([r.total_ticks for r in results], dtype=np.float64)
    on_ticks = np.array([r.on_ticks for r in results], dtype=np.float64)
    availability = on_ticks / np.maximum(total_ticks, 1.0)
    duration_s = np.array(
        [task.duration_s for task in tasks], dtype=np.float64
    )
    progress_rate = progress / duration_s
    spent_uj = np.array(
        [
            r.run_energy_uj + r.backup_energy_uj + r.restore_energy_uj
            for r in results
        ],
        dtype=np.float64,
    )
    energy_per_progress = np.where(
        progress > 0, spent_uj / np.maximum(progress, 1.0), np.inf
    )

    registry = MetricsRegistry()
    registry.inc("fleet.devices", float(len(tasks)))
    registry.inc("fleet.devices_stalled", float(int(np.sum(progress == 0))))
    for i, task in enumerate(tasks):
        registry.inc(f"fleet.archetype.{task.archetype}")
        registry.observe(
            "fleet.progress_rate_per_s",
            float(progress_rate[i]),
            _PROGRESS_RATE_BUCKETS,
        )
        registry.observe(
            "fleet.availability", float(availability[i]), AVAILABILITY_BUCKETS
        )
        if np.isfinite(energy_per_progress[i]):
            registry.observe(
                "fleet.energy_per_progress_uj",
                float(energy_per_progress[i]),
                _ENERGY_PER_PROGRESS_BUCKETS,
            )

    availability_cdf = {
        float(t): float(np.mean(availability <= t))
        for t in AVAILABILITY_BUCKETS
    }
    finite_epp = energy_per_progress[np.isfinite(energy_per_progress)]
    if finite_epp.size == 0:
        finite_epp = np.zeros(1)

    per_archetype: Dict[str, Dict[str, float]] = {}
    names = [task.archetype for task in tasks]
    for name in sorted(set(names)):
        mask = np.array([n == name for n in names])
        per_archetype[name] = {
            "devices": float(np.sum(mask)),
            "median_progress": float(np.median(progress[mask])),
            "median_progress_per_s": float(np.median(progress_rate[mask])),
            "mean_availability": float(np.mean(availability[mask])),
            "stalled_fraction": float(np.mean(progress[mask] == 0)),
        }

    return FleetResult(
        spec=spec,
        tasks=tasks,
        results=results,
        progress_percentiles=_percentile_dict(progress),
        progress_rate_percentiles=_percentile_dict(progress_rate),
        availability_percentiles=_percentile_dict(availability),
        availability_cdf=availability_cdf,
        energy_per_progress_percentiles=_percentile_dict(finite_epp),
        per_archetype=per_archetype,
        metrics=registry.to_dict(),
    )
