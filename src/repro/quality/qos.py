"""QoS targets and the fine-tuned incidental policies of Table 2.

The paper's Table 2 records, per testbench, the QoS target the
programmer tuned for, the chosen ``minbits``, the number of
recomputation passes, and the incidental-backup retention policy:

=========  ==================  =======  =========  ========
Testbench  Target QoS          MinBits  Recompute  Backup
=========  ==================  =======  =========  ========
integral   PSNR 20 dB          2        no         parabola
median     PSNR 50 dB          4        2 times    linear
sobel      PSNR 8 dB           4        2 times    linear
jpeg       size <= 150 %       3        no         log
=========  ==================  =======  =========  ========

The JPEG target was the one the paper itself could not always meet
(97 % of frames passed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .._validation import check_int_in_range, check_non_negative
from ..errors import QualityError

__all__ = ["QoSTarget", "TunedPolicy", "TABLE2_POLICIES", "evaluate_qos"]


@dataclass(frozen=True)
class QoSTarget:
    """A quality floor/ceiling for one kernel.

    Exactly one of ``min_psnr_db`` (floor) or ``max_size_ratio``
    (ceiling) is set.
    """

    min_psnr_db: Optional[float] = None
    max_size_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.min_psnr_db is None) == (self.max_size_ratio is None):
            raise QualityError(
                "exactly one of min_psnr_db / max_size_ratio must be set"
            )
        if self.min_psnr_db is not None:
            check_non_negative(self.min_psnr_db, "min_psnr_db", exc=QualityError)
        if self.max_size_ratio is not None and self.max_size_ratio < 1.0:
            raise QualityError("max_size_ratio below 1 would reject the baseline")

    def met_by_psnr(self, psnr_db: float) -> bool:
        """Whether a PSNR measurement satisfies the target."""
        if self.min_psnr_db is None:
            raise QualityError("this target is a size target, not a PSNR target")
        return psnr_db >= self.min_psnr_db

    def met_by_size_ratio(self, ratio: float) -> bool:
        """Whether a compressed-size ratio satisfies the target."""
        if self.max_size_ratio is None:
            raise QualityError("this target is a PSNR target, not a size target")
        return ratio <= self.max_size_ratio

    def describe(self) -> str:
        """Human-readable form, Table 2 style."""
        if self.min_psnr_db is not None:
            return f"PSNR {self.min_psnr_db:g}dB"
        return f"{100 * self.max_size_ratio:.0f}% Size"


@dataclass(frozen=True)
class TunedPolicy:
    """One Table 2 row: the programmer's tuned incidental policy."""

    kernel: str
    target: QoSTarget
    minbits: int
    recompute_passes: int
    backup_policy: str

    def __post_init__(self) -> None:
        check_int_in_range(self.minbits, "minbits", 1, 8, exc=QualityError)
        check_int_in_range(self.recompute_passes, "recompute_passes", 0, 16, exc=QualityError)
        if self.backup_policy not in ("linear", "log", "parabola"):
            raise QualityError(f"unknown backup policy {self.backup_policy!r}")


#: The fine-tuned policies of Table 2, keyed by kernel name.
TABLE2_POLICIES: Dict[str, TunedPolicy] = {
    "integral": TunedPolicy(
        kernel="integral",
        target=QoSTarget(min_psnr_db=20.0),
        minbits=2,
        recompute_passes=0,
        backup_policy="parabola",
    ),
    "median": TunedPolicy(
        kernel="median",
        target=QoSTarget(min_psnr_db=50.0),
        minbits=4,
        recompute_passes=2,
        backup_policy="linear",
    ),
    "sobel": TunedPolicy(
        kernel="sobel",
        target=QoSTarget(min_psnr_db=8.0),
        minbits=4,
        recompute_passes=2,
        backup_policy="linear",
    ),
    "jpeg_encode": TunedPolicy(
        kernel="jpeg_encode",
        target=QoSTarget(max_size_ratio=1.5),
        minbits=3,
        recompute_passes=0,
        backup_policy="log",
    ),
}


def evaluate_qos(
    policy: TunedPolicy,
    psnr_db: Optional[float] = None,
    size_ratio_value: Optional[float] = None,
) -> bool:
    """Check a measurement against a tuned policy's target.

    Pass ``psnr_db`` for image kernels and ``size_ratio_value`` for
    JPEG; supplying the wrong kind raises, so experiments cannot
    silently score the wrong metric.
    """
    if policy.target.min_psnr_db is not None:
        if psnr_db is None:
            raise QualityError(f"{policy.kernel} QoS needs a PSNR measurement")
        return policy.target.met_by_psnr(psnr_db)
    if size_ratio_value is None:
        raise QualityError(f"{policy.kernel} QoS needs a size-ratio measurement")
    return policy.target.met_by_size_ratio(size_ratio_value)
