"""Quality metrics: MSE, PSNR, and compressed-size ratio.

The paper's quality analysis (Section 8.1) uses mean squared error and
peak signal-to-noise ratio against the kernel's own 8-bit full-
precision output; "above 20-40 dB is considered a good PSNR response".
It also notes the metric asymmetry we reproduce: MSE punishes the
*loss* of detail (memory truncation) harder than added noise (ALU),
while PSNR reacts similarly to both.
"""

from __future__ import annotations

import numpy as np

from ..errors import QualityError

__all__ = ["mse", "psnr", "size_ratio", "PSNR_CAP_DB"]

#: PSNR reported for identical images (the metric diverges at zero MSE).
PSNR_CAP_DB: float = 99.0


def _check_pair(reference: np.ndarray, candidate: np.ndarray):
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise QualityError(
            f"shape mismatch: reference {reference.shape} vs candidate {candidate.shape}"
        )
    if reference.size == 0:
        raise QualityError("cannot score empty images")
    return reference, candidate


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two images of equal shape."""
    reference, candidate = _check_pair(reference, candidate)
    return float(np.mean((reference - candidate) ** 2))


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (capped at :data:`PSNR_CAP_DB`)."""
    if peak <= 0:
        raise QualityError("peak must be positive")
    error = mse(reference, candidate)
    if error <= 0.0:
        return PSNR_CAP_DB
    return float(min(PSNR_CAP_DB, 10.0 * np.log10(peak * peak / error)))


def size_ratio(baseline_bits: int, candidate_bits: int) -> float:
    """Compressed-size ratio (candidate / baseline), the JPEG QoS metric."""
    if baseline_bits <= 0 or candidate_bits <= 0:
        raise QualityError("sizes must be positive bit counts")
    return candidate_bits / baseline_bits
