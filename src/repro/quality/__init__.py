"""Output-quality metrics and QoS targets.

MSE and PSNR against the 8-bit non-approximate baseline (Section 8.1),
plus the Table 2 QoS-target machinery (PSNR floors for the image
kernels, compressed-size ceiling for JPEG).
"""

from .metrics import mse, psnr, size_ratio
from .qos import QoSTarget, TABLE2_POLICIES, TunedPolicy, evaluate_qos

__all__ = [
    "mse",
    "psnr",
    "size_ratio",
    "QoSTarget",
    "TunedPolicy",
    "TABLE2_POLICIES",
    "evaluate_qos",
]
