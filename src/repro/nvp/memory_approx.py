"""Approximate-memory semantics (Section 8.1, Figures 13-14).

"The non-preserved bits in the reduced quality memory are truncated,
and the operations using their values are treated as shifted N-bit
operations."

Truncation *loses information* (a systematic, signal-dependent error)
whereas the approximate ALU *adds noise*; the paper observes that this
makes the memory path's MSE degrade faster while PSNR behaves
similarly. Keeping plain floor-truncation (no midpoint reconstruction)
preserves exactly that asymmetry.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError

__all__ = ["memory_truncate_bits", "memory_quantize", "ApproximateMemory"]


def memory_truncate_bits(
    values: np.ndarray,
    bits: Union[int, np.ndarray],
    word_bits: int = 8,
) -> np.ndarray:
    """Truncate ``values`` to their top ``bits`` bits (low bits zeroed).

    The returned values remain in the full ``word_bits`` range: the low
    bits read back as zero, which is how downstream shifted-N-bit
    operations observe them.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise ProcessorError("memory_truncate_bits expects integer values")
    word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
    bits_arr = np.asarray(bits, dtype=np.int64)
    if np.any(bits_arr < 1) or np.any(bits_arr > word_bits):
        raise ProcessorError(f"bits must lie in [1, {word_bits}]")
    bits_arr = np.broadcast_to(bits_arr, values.shape)
    shift = (word_bits - bits_arr).astype(np.int64)
    clipped = np.clip(values.astype(np.int64), 0, (1 << word_bits) - 1)
    return (clipped >> shift) << shift


def memory_quantize(
    values: np.ndarray,
    bits: Union[int, np.ndarray],
    word_bits: int = 8,
) -> np.ndarray:
    """Return the *shifted* N-bit representation (values in [0, 2^bits)).

    This is the operand form used when an operation runs directly in
    the reduced-width domain.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise ProcessorError("memory_quantize expects integer values")
    word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
    bits_arr = np.asarray(bits, dtype=np.int64)
    if np.any(bits_arr < 1) or np.any(bits_arr > word_bits):
        raise ProcessorError(f"bits must lie in [1, {word_bits}]")
    bits_arr = np.broadcast_to(bits_arr, values.shape)
    shift = (word_bits - bits_arr).astype(np.int64)
    clipped = np.clip(values.astype(np.int64), 0, (1 << word_bits) - 1)
    return clipped >> shift


class ApproximateMemory:
    """A word array whose reads/writes honour a reliable-bit budget.

    Stores full-width words but truncates on *write* when the active
    bit budget is below the word width, modelling low-order cells whose
    contents are not reliably persisted. Access counting lets the
    executive charge load/store energy.
    """

    def __init__(self, n_words: int, word_bits: int = 8) -> None:
        self.n_words = check_int_in_range(n_words, "n_words", 1, exc=ProcessorError)
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
        self._data = np.zeros(n_words, dtype=np.int64)
        self.read_count = 0
        self.write_count = 0

    def write(self, index, values, bits: Union[int, np.ndarray]) -> None:
        """Store ``values`` truncated to ``bits`` reliable bits."""
        truncated = memory_truncate_bits(
            np.asarray(values, dtype=np.int64), bits, word_bits=self.word_bits
        )
        self._data[index] = truncated
        self.write_count += int(np.asarray(truncated).size)

    def read(self, index, bits: Union[int, np.ndarray]) -> np.ndarray:
        """Load values, truncated to the *current* reliable-bit budget.

        Reading with fewer bits than were written models a datapath
        that only senses the upper bit lines this cycle.
        """
        raw = self._data[index]
        self.read_count += int(np.asarray(raw).size)
        return memory_truncate_bits(raw, bits, word_bits=self.word_bits)

    def read_exact(self, index) -> np.ndarray:
        """Full-width read (used by quality scoring, not by the NVP)."""
        return np.array(self._data[index], copy=True)
