"""Multi-version nonvolatile register file (Section 4).

Each architectural register is widened from 8 to 32 bits — four 8-bit
*versions*, one per incidental SIMD lane — built from nonvolatile
logic, with an AC (approximable) bit per register and comparison
circuits that report which registers of a stored version match the
current values. The extensions are power-gated off when incidental
computing is disabled.

The version-comparison bit-vector, combined with a compiler-generated
mask of key loop variables, is what the controller uses to decide that
an old resume point has been "caught up to" and SIMD width can grow
(see :mod:`repro.core.simd`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError

__all__ = ["MultiVersionRegisterFile"]


class MultiVersionRegisterFile:
    """Register file with ``versions`` banks of ``n_regs`` words.

    Version 0 is the *current* (architectural) bank; versions 1-3 hold
    the register state of suspended incidental computations.
    """

    def __init__(self, n_regs: int = 16, word_bits: int = 8, versions: int = 4) -> None:
        self.n_regs = check_int_in_range(n_regs, "n_regs", 1, 64, exc=ProcessorError)
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
        self.versions = check_int_in_range(versions, "versions", 1, 4, exc=ProcessorError)
        self._values = np.zeros((self.versions, self.n_regs), dtype=np.int64)
        self._ac_bits = np.zeros(self.n_regs, dtype=bool)
        # Version banks 1..3 are power-gated off until incidental
        # computing claims them.
        self._gated = np.ones(self.versions, dtype=bool)
        self._gated[0] = False

    # -- power gating ------------------------------------------------------

    def power_on_version(self, version: int) -> None:
        """Ungate a version bank for incidental use."""
        v = check_int_in_range(version, "version", 1, self.versions - 1, exc=ProcessorError)
        self._gated[v] = False

    def power_off_version(self, version: int) -> None:
        """Gate a version bank off again (its contents persist — NV logic)."""
        v = check_int_in_range(version, "version", 1, self.versions - 1, exc=ProcessorError)
        self._gated[v] = True

    def is_gated(self, version: int) -> bool:
        """Whether a version bank is currently power-gated."""
        v = check_int_in_range(version, "version", 0, self.versions - 1, exc=ProcessorError)
        return bool(self._gated[v])

    @property
    def active_version_count(self) -> int:
        """Number of ungated banks (drives register-file power)."""
        return int(np.count_nonzero(~self._gated))

    # -- values and AC bits --------------------------------------------------

    def write(self, version: int, reg: int, value: int) -> None:
        """Write one register of one version (must be ungated)."""
        v = check_int_in_range(version, "version", 0, self.versions - 1, exc=ProcessorError)
        r = check_int_in_range(reg, "reg", 0, self.n_regs - 1, exc=ProcessorError)
        if self._gated[v]:
            raise ProcessorError(f"version {v} is power-gated; enable it before writing")
        self._values[v, r] = int(value) & ((1 << self.word_bits) - 1)

    def read(self, version: int, reg: int) -> int:
        """Read one register of one version."""
        v = check_int_in_range(version, "version", 0, self.versions - 1, exc=ProcessorError)
        r = check_int_in_range(reg, "reg", 0, self.n_regs - 1, exc=ProcessorError)
        return int(self._values[v, r])

    def write_bank(self, version: int, values: np.ndarray) -> None:
        """Replace a whole version bank (restore / lane capture)."""
        v = check_int_in_range(version, "version", 0, self.versions - 1, exc=ProcessorError)
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.n_regs,):
            raise ProcessorError(f"bank shape must be ({self.n_regs},), got {values.shape}")
        if self._gated[v]:
            raise ProcessorError(f"version {v} is power-gated; enable it before writing")
        self._values[v] = values & ((1 << self.word_bits) - 1)

    def read_bank(self, version: int) -> np.ndarray:
        """Copy out a whole version bank."""
        v = check_int_in_range(version, "version", 0, self.versions - 1, exc=ProcessorError)
        return self._values[v].copy()

    def set_ac_bit(self, reg: int, approximable: bool) -> None:
        """Mark a register approximable (set by the compiler from pragmas)."""
        r = check_int_in_range(reg, "reg", 0, self.n_regs - 1, exc=ProcessorError)
        self._ac_bits[r] = bool(approximable)

    def ac_bit(self, reg: int) -> bool:
        """Read a register's AC (approximable) bit."""
        r = check_int_in_range(reg, "reg", 0, self.n_regs - 1, exc=ProcessorError)
        return bool(self._ac_bits[r])

    # -- comparison circuits ---------------------------------------------------

    def compare_with_current(self, version: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Bit-vector of registers where ``version`` equals the current bank.

        ``mask`` restricts the comparison to compiler-selected key loop
        variables; masked-out registers report ``True`` (don't-care),
        so an all-true result means "match" exactly as the controller
        expects.
        """
        v = check_int_in_range(version, "version", 1, self.versions - 1, exc=ProcessorError)
        equal = self._values[v] == self._values[0]
        if mask is None:
            return equal
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_regs,):
            raise ProcessorError(f"mask shape must be ({self.n_regs},), got {mask.shape}")
        return np.logical_or(equal, np.logical_not(mask))

    def matches_current(self, version: int, mask: Optional[np.ndarray] = None) -> bool:
        """True when every (masked) register of ``version`` matches."""
        return bool(self.compare_with_current(version, mask=mask).all())

    # -- backup support -----------------------------------------------------------

    def state_bits(self) -> int:
        """Nonvolatile bits needed to back up the ungated banks."""
        return int(self.active_version_count * self.n_regs * self.word_bits + self.n_regs)

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy out (values, ac_bits, gated) for backup."""
        return self._values.copy(), self._ac_bits.copy(), self._gated.copy()

    def restore(self, values: np.ndarray, ac_bits: np.ndarray, gated: np.ndarray) -> None:
        """Load a snapshot produced by :meth:`snapshot`."""
        values = np.asarray(values, dtype=np.int64)
        ac_bits = np.asarray(ac_bits, dtype=bool)
        gated = np.asarray(gated, dtype=bool)
        if values.shape != self._values.shape:
            raise ProcessorError("register snapshot shape mismatch")
        if ac_bits.shape != self._ac_bits.shape or gated.shape != self._gated.shape:
            raise ProcessorError("register metadata shape mismatch")
        self._values[...] = values
        self._ac_bits[...] = ac_bits
        self._gated[...] = gated
