"""Reference assembly programs for the functional simulator.

Small, testbench-style kernels written in the :mod:`repro.nvp.asm`
subset and validated against numpy golden models. These play the role
of the paper's compiled C testbenches at the instruction level: they
exercise loads/stores, the accumulator ALU, loop control, and — under
reduced ``ac_bits`` — the approximate datapath.

Data convention: inputs are preloaded into XRAM and outputs written
back to XRAM, like the paper's framework ("the inputs are generated as
ROM arrays, and the outputs are generated through GPIO").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError
from .asm import Program, assemble

__all__ = [
    "vector_add_program",
    "saturating_sum_program",
    "threshold_count_program",
    "scale_q8_program",
    "sad_program",
    "golden_vector_add",
    "golden_saturating_sum",
    "golden_threshold_count",
    "golden_sad",
]

#: XRAM layout used by every program here.
INPUT_A = 0
INPUT_B = 256
OUTPUT = 512


def vector_add_program(length: int) -> Program:
    """``out[i] = (a[i] + b[i]) & 0xFF`` for ``i`` in ``[0, length)``.

    R0 holds the loop counter; the three DPTR reloads per element keep
    the program single-pointer like real 8051 code.
    """
    check_int_in_range(length, "length", 1, 255, exc=ProcessorError)
    return assemble(
        f"""
        MOV  R0, #{length}      ; loop counter
        MOV  R1, #0             ; element index
    loop:
        ; A <- a[index]
        MOV  DPTR, #{INPUT_A}
        MOV  A, R1
        ADD  A, #0              ; (through the datapath)
        CLR  C
        MOV  R2, A              ; save index copy
        MOV  DPTR, #{INPUT_A}
        MOV  A, R2
        JZ   load_a             ; dptr += index
    bump_a:
        INC  DPTR
        DEC  A
        JNZ  bump_a
    load_a:
        MOVX A, @DPTR
        MOV  R3, A              ; R3 = a[index]
        ; A <- b[index]
        MOV  DPTR, #{INPUT_B}
        MOV  A, R2
        JZ   load_b
    bump_b:
        INC  DPTR
        DEC  A
        JNZ  bump_b
    load_b:
        MOVX A, @DPTR
        ADD  A, R3              ; the kernel's add
        MOV  R4, A
        ; out[index] <- A
        MOV  DPTR, #{OUTPUT}
        MOV  A, R2
        JZ   store
    bump_o:
        INC  DPTR
        DEC  A
        JNZ  bump_o
    store:
        MOV  A, R4
        MOVX @DPTR, A
        INC  R1
        DJNZ R0, loop
        HALT
        """
    )


def saturating_sum_program(length: int) -> Program:
    """``out[0] = min(255, sum(a[0:length]))`` — carry-based saturation."""
    check_int_in_range(length, "length", 1, 255, exc=ProcessorError)
    return assemble(
        f"""
        MOV  R0, #{length}
        MOV  DPTR, #{INPUT_A}
        MOV  R2, #0             ; running sum
    loop:
        MOVX A, @DPTR
        ADD  A, R2
        JNC  keep               ; no overflow
        MOV  A, #255            ; saturate
        MOV  R2, A
        SJMP finish
    keep:
        MOV  R2, A
        INC  DPTR
        DJNZ R0, loop
    finish:
        MOV  DPTR, #{OUTPUT}
        MOV  A, R2
        MOVX @DPTR, A
        HALT
        """
    )


def threshold_count_program(length: int, threshold: int) -> Program:
    """``out[0] = count(a[i] >= threshold)`` — a USAN-style counter."""
    check_int_in_range(length, "length", 1, 255, exc=ProcessorError)
    check_int_in_range(threshold, "threshold", 0, 255, exc=ProcessorError)
    return assemble(
        f"""
        MOV  R0, #{length}
        MOV  R2, #0             ; count
        MOV  DPTR, #{INPUT_A}
    loop:
        MOVX A, @DPTR
        CLR  C
        CJNE A, #{threshold}, check
        SJMP hit                ; equal counts as >=
    check:
        JC   miss               ; A < threshold
    hit:
        INC  R2
    miss:
        INC  DPTR
        DJNZ R0, loop
        MOV  DPTR, #{OUTPUT}
        MOV  A, R2
        MOVX @DPTR, A
        HALT
        """
    )


def scale_q8_program(length: int, gain_q8: int) -> Program:
    """``out[i] = (a[i] * gain_q8) >> 8`` — a tiff2bw-style fixed-point MAC."""
    check_int_in_range(length, "length", 1, 255, exc=ProcessorError)
    check_int_in_range(gain_q8, "gain_q8", 0, 255, exc=ProcessorError)
    return assemble(
        f"""
        MOV  R0, #{length}
        MOV  R1, #0             ; index
    loop:
        MOV  DPTR, #{INPUT_A}
        MOV  A, R1
        JZ   load
    bump_i:
        INC  DPTR
        DEC  A
        JNZ  bump_i
    load:
        MOVX A, @DPTR
        MOV  B, #{gain_q8}
        MUL  AB                 ; B:A = a[i] * gain
        MOV  A, B               ; keep the high byte (>> 8)
        MOV  R4, A
        MOV  DPTR, #{OUTPUT}
        MOV  A, R1
        JZ   store
    bump_o:
        INC  DPTR
        DEC  A
        JNZ  bump_o
    store:
        MOV  A, R4
        MOVX @DPTR, A
        INC  R1
        DJNZ R0, loop
        HALT
        """
    )


def golden_vector_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numpy golden model of :func:`vector_add_program`."""
    return (np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)) & 0xFF


def golden_saturating_sum(a: np.ndarray) -> int:
    """Numpy golden model of :func:`saturating_sum_program`.

    Mirrors the program's early-exit: it saturates the moment a
    running-sum add overflows.
    """
    total = 0
    for value in np.asarray(a, dtype=np.int64):
        total += int(value)
        if total > 255:
            return 255
    return total


def golden_threshold_count(a: np.ndarray, threshold: int) -> int:
    """Numpy golden model of :func:`threshold_count_program`."""
    return int(np.count_nonzero(np.asarray(a) >= threshold))


def sad_program(length: int) -> Program:
    """``out[0:2] = sum(|a[i] - b[i]|)`` (16-bit, little endian).

    The sum-of-absolute-differences at the heart of JPEG motion
    estimation, written with an ``ACALL``/``RET`` subroutine computing
    each absolute difference — exercising the internal-RAM stack.
    """
    check_int_in_range(length, "length", 1, 255, exc=ProcessorError)
    return assemble(
        f"""
        MOV  R0, #{length}
        MOV  R1, #0             ; element index
        MOV  R5, #0             ; sum low byte
        MOV  R6, #0             ; sum high byte
    loop:
        MOV  DPTR, #{INPUT_A}
        MOV  A, R1
        JZ   load_a
    bump_a:
        INC  DPTR
        DEC  A
        JNZ  bump_a
    load_a:
        MOVX A, @DPTR
        MOV  R3, A
        MOV  DPTR, #{INPUT_B}
        MOV  A, R1
        JZ   load_b
    bump_b:
        INC  DPTR
        DEC  A
        JNZ  bump_b
    load_b:
        MOVX A, @DPTR
        MOV  R4, A
        ACALL absdiff           ; A <- |R3 - R4|
        ADD  A, R5              ; 16-bit accumulate
        MOV  R5, A
        JNC  no_carry
        INC  R6
    no_carry:
        INC  R1
        DJNZ R0, loop
        MOV  DPTR, #{OUTPUT}
        MOV  A, R5
        MOVX @DPTR, A
        INC  DPTR
        MOV  A, R6
        MOVX @DPTR, A
        HALT
    absdiff:                    ; |R3 - R4| -> A
        MOV  A, R3
        CLR  C
        SUBB A, R4
        JNC  abs_done
        MOV  A, R4
        CLR  C
        SUBB A, R3
    abs_done:
        RET
        """
    )


def golden_sad(a, b) -> int:
    """Numpy golden model of :func:`sad_program` (16-bit wrap)."""
    import numpy as _np

    a = _np.asarray(a, dtype=_np.int64)
    b = _np.asarray(b, dtype=_np.int64)
    return int(_np.abs(a - b).sum()) & 0xFFFF
