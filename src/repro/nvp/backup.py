"""Backup/restore engine: pricing and recording persistence operations.

Combines the pipeline's state sizing, the active retention policy's
relative write energy, and the calibrated system-level backup cost into
the per-event energies the system simulator charges. Every backup and
restore is recorded so experiments can report counts (Figure 16) and
energy shares (Section 3.2's 20-33 % of income energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .._validation import check_int_in_range
from ..errors import ProcessorError
from ..nvm.retention import RetentionPolicy
from ..obs.metrics import BACKUP_ENERGY_BUCKETS
from ..obs.tracer import NULL_TRACER
from .energy_model import EnergyModel
from .pipeline import PipelineModel

__all__ = ["BackupRecord", "BackupEngine"]


@dataclass(frozen=True)
class BackupRecord:
    """One backup event.

    ``aborted`` marks a backup the device fault model interrupted
    mid-write (a torn checkpoint): its energy was spent and it occupies
    a backup slot in Figure-16-style counts, but the image it left in
    NVM is not restorable.
    """

    tick: int
    energy_uj: float
    state_bits: int
    policy_name: str
    aborted: bool = False


class BackupEngine:
    """Prices and logs backup/restore events for one simulation run.

    Parameters
    ----------
    energy_model:
        The calibrated NVP energy model.
    pipeline:
        The pipeline state-sizing model.
    policy:
        Retention policy used for the *approximable* share of the
        backed-up state; ``None`` means fully precise backups.
    approximable_fraction:
        Fraction of backed-up state covered by ``incidental`` pragmas
        and therefore eligible for shaped (cheap) writes. The PC,
        control state and non-marked data always persist precisely.
    guard_bits:
        CRC guard-word bits appended to every backup image by the
        resilience subsystem; 0 (the default) prices no guards and
        leaves every energy identical to the unguarded engine.
    tracer:
        Observability tracer; ``None`` uses the free NULL_TRACER.
        Instrumenting here, at the ledger, means backup/restore events
        are identical whichever simulation engine drove the run.
    """

    def __init__(
        self,
        energy_model: EnergyModel,
        pipeline: PipelineModel,
        policy: Optional[RetentionPolicy] = None,
        approximable_fraction: float = 0.9,
        guard_bits: int = 0,
        tracer=None,
    ) -> None:
        if not 0.0 <= approximable_fraction <= 1.0:
            raise ProcessorError("approximable_fraction must be in [0, 1]")
        self.energy_model = energy_model
        self.pipeline = pipeline
        self.policy = policy
        self.approximable_fraction = float(approximable_fraction)
        self.guard_bits = check_int_in_range(
            guard_bits, "guard_bits", 0, exc=ProcessorError
        )
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.backups: List[BackupRecord] = []
        self.restore_count = 0
        self.total_backup_energy_uj = 0.0
        self.total_restore_energy_uj = 0.0

    @property
    def policy_name(self) -> str:
        """Name of the active retention policy ('precise' when none)."""
        return self.policy.name if self.policy is not None else "precise"

    def _blended_policy_scale(self) -> float:
        """Per-word energy scale blending precise and shaped writes."""
        if self.policy is None:
            return 1.0
        shaped = self.energy_model.policy_relative_energy(self.policy)
        return (
            (1.0 - self.approximable_fraction)
            + self.approximable_fraction * shaped
        )

    def backup_energy_uj(self, lane_bits: Sequence[int]) -> float:
        """Energy one backup will cost with the given live lane budgets.

        When ``guard_bits`` is nonzero the CRC guard words are priced
        in, scaled by their share of the persisted image.
        """
        fraction = self.pipeline.state_fraction(lane_bits)
        energy = (
            self.energy_model.backup_base_uj
            * self._blended_policy_scale()
            * fraction
        )
        if self.guard_bits:
            energy *= 1.0 + self.energy_model.guard_overhead_fraction(
                self.pipeline.state_bits(lane_bits), self.guard_bits
            )
        return energy

    def restore_energy_uj(self, lane_bits: Sequence[int]) -> float:
        """Energy one restore will cost."""
        fraction = self.pipeline.state_fraction(lane_bits)
        return self.energy_model.restore_energy_uj(state_fraction=fraction)

    def record_backup(
        self, tick: int, lane_bits: Sequence[int], aborted: bool = False
    ) -> BackupRecord:
        """Log a backup at ``tick``; returns its record.

        Aborted (torn) backups spend their full energy — the interrupt
        lands mid-write, after the charge is committed — so only the
        ``aborted`` flag distinguishes them.
        """
        tick = check_int_in_range(tick, "tick", 0, exc=ProcessorError)
        record = BackupRecord(
            tick=tick,
            energy_uj=self.backup_energy_uj(lane_bits),
            state_bits=self.pipeline.state_bits(lane_bits),
            policy_name=self.policy_name,
            aborted=bool(aborted),
        )
        self.backups.append(record)
        self.total_backup_energy_uj += record.energy_uj
        tracer = self.tracer
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.inc("backup.count")
            metrics.inc("backup.energy_uj", record.energy_uj)
            metrics.observe("backup.energy_uj", record.energy_uj, BACKUP_ENERGY_BUCKETS)
            if record.aborted:
                metrics.inc("backup.aborted")
            if tracer.events:
                tracer.instant(
                    "backup",
                    tick=tick,
                    cat="nvp",
                    args={
                        "energy_uj": record.energy_uj,
                        "state_bits": record.state_bits,
                        "policy": record.policy_name,
                        "aborted": record.aborted,
                        "guard_bits": self.guard_bits,
                        "lanes": list(lane_bits),
                    },
                )
        return record

    def record_restore(self, lane_bits: Sequence[int]) -> float:
        """Log a completed restore; returns its energy (µJ)."""
        energy = self.restore_energy_uj(lane_bits)
        self.restore_count += 1
        self.total_restore_energy_uj += energy
        tracer = self.tracer
        if tracer.enabled:
            tracer.metrics.inc("restore.count")
            tracer.metrics.inc("restore.energy_uj", energy)
            if tracer.events:
                tracer.instant(
                    "restore",
                    cat="nvp",
                    args={"energy_uj": energy, "lanes": list(lane_bits)},
                )
        return energy

    @property
    def backup_count(self) -> int:
        """Number of backups taken so far (aborted ones included)."""
        return len(self.backups)

    @property
    def aborted_backup_count(self) -> int:
        """Number of backups interrupted mid-write (torn checkpoints)."""
        return sum(1 for record in self.backups if record.aborted)

    @property
    def completed_backup_count(self) -> int:
        """Number of backups that finished writing their image."""
        return len(self.backups) - self.aborted_backup_count
