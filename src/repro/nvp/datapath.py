"""Approximate ALU semantics (Section 8.1, Figures 11-12).

"The N-bit reduced-quality ALU preserves the upper N bits and produces
random outputs for the lower 8-N bits" — the behavioral consequence of
running the low-order bit slices of a gradient-VDD adder [8, 75] below
their reliable operating voltage.

:func:`alu_reduce_bits` is the vectorised primitive used by every
kernel; :class:`ApproximateALU` wraps it with operation counting so the
executive can charge energy per operation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError

__all__ = ["alu_reduce_bits", "ApproximateALU"]


def alu_reduce_bits(
    values: np.ndarray,
    bits: Union[int, np.ndarray],
    rng: np.random.Generator,
    word_bits: int = 8,
) -> np.ndarray:
    """Apply N-bit ALU approximation to ``values``.

    The top ``bits`` bits of each ``word_bits``-wide value are
    preserved; the remaining low-order bits are replaced with uniform
    random bits (noise, not truncation — this is what distinguishes the
    approximate ALU from the approximate memory in the paper's quality
    study).

    ``bits`` may be a scalar or an array broadcastable to
    ``values.shape`` (per-element bit budgets arise under dynamic
    bitwidth, Figure 18).
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise ProcessorError("alu_reduce_bits expects integer values")
    word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
    bits_arr = np.asarray(bits, dtype=np.int64)
    if np.any(bits_arr < 1) or np.any(bits_arr > word_bits):
        raise ProcessorError(f"bits must lie in [1, {word_bits}]")
    if np.all(bits_arr >= word_bits):
        return values.astype(np.int64)

    bits_arr = np.broadcast_to(bits_arr, values.shape)
    noise_width = (word_bits - bits_arr).astype(np.int64)
    keep_mask = (~((np.int64(1) << noise_width) - np.int64(1))) & (
        (np.int64(1) << word_bits) - np.int64(1)
    )
    noise = rng.integers(0, 1 << word_bits, size=values.shape, dtype=np.int64)
    clipped = np.clip(values.astype(np.int64), 0, (1 << word_bits) - 1)
    return (clipped & keep_mask) | (noise & ~keep_mask)


class ApproximateALU:
    """A bit-budgeted ALU with operation accounting.

    Parameters
    ----------
    word_bits:
        Native datapath width (8 for the 8051-class NVP).
    seed:
        Seed for the low-bit noise source. Experiments fix this so the
        injected approximation error is reproducible.
    """

    def __init__(self, word_bits: int = 8, seed: int = 0) -> None:
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
        self._rng = np.random.default_rng(seed)
        self.op_count = 0

    def _approx(self, result: np.ndarray, bits: Union[int, np.ndarray]) -> np.ndarray:
        self.op_count += int(np.asarray(result).size)
        return alu_reduce_bits(result, bits, self._rng, word_bits=self.word_bits)

    # Arithmetic results saturate to the word range before noise
    # injection, matching an 8-bit datapath with a carry-out drop.

    def add(self, a: np.ndarray, b: np.ndarray, bits: Union[int, np.ndarray]) -> np.ndarray:
        """Approximate saturating add."""
        exact = np.clip(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64), 0, (1 << self.word_bits) - 1)
        return self._approx(exact, bits)

    def sub(self, a: np.ndarray, b: np.ndarray, bits: Union[int, np.ndarray]) -> np.ndarray:
        """Approximate saturating subtract (clamped at zero)."""
        exact = np.clip(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64), 0, (1 << self.word_bits) - 1)
        return self._approx(exact, bits)

    def mul_shift(self, a: np.ndarray, b: np.ndarray, shift: int, bits: Union[int, np.ndarray]) -> np.ndarray:
        """Approximate fixed-point multiply: ``(a * b) >> shift``."""
        shift = check_int_in_range(shift, "shift", 0, 31, exc=ProcessorError)
        exact = (np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)) >> shift
        exact = np.clip(exact, 0, (1 << self.word_bits) - 1)
        return self._approx(exact, bits)

    def compare_values(
        self, a: np.ndarray, b: np.ndarray, bits: Union[int, np.ndarray]
    ) -> np.ndarray:
        """Approximate comparison: ``approx(a) > approx(b)``.

        Rank-based kernels (median, SUSAN thresholding) route their
        comparisons through here; the *selected element* stays an exact
        stored value even when the comparison itself is noisy — which
        is why median tolerates tiny bit budgets (Figure 12).
        """
        a_noisy = self._approx(np.asarray(a, dtype=np.int64), bits)
        b_noisy = self._approx(np.asarray(b, dtype=np.int64), bits)
        return a_noisy > b_noisy

    def passthrough(self, values: np.ndarray, bits: Union[int, np.ndarray]) -> np.ndarray:
        """Route stored values through the approximate datapath once."""
        exact = np.clip(np.asarray(values, dtype=np.int64), 0, (1 << self.word_bits) - 1)
        return self._approx(exact, bits)

    def add_signed_noise(
        self, values: np.ndarray, bits: Union[int, np.ndarray]
    ) -> np.ndarray:
        """Inject b-bit datapath noise into *signed* intermediates.

        Fixed-point kernels (FFT butterflies) carry signed values wider
        than the 8-bit storage word; their low-order datapath slices
        misbehave identically, which at the value level is additive
        noise of one quantum ``2**(word_bits - bits)`` centred on zero.
        Full-precision budgets inject nothing.
        """
        values = np.asarray(values, dtype=np.int64)
        bits_arr = np.asarray(bits, dtype=np.int64)
        if np.any(bits_arr < 1) or np.any(bits_arr > self.word_bits):
            raise ProcessorError(f"bits must lie in [1, {self.word_bits}]")
        self.op_count += int(values.size)
        if np.all(bits_arr >= self.word_bits):
            return values.copy()
        quantum = np.int64(1) << (self.word_bits - np.broadcast_to(bits_arr, values.shape))
        span = self._rng.random(values.shape) - 0.5
        noise = np.round(span * (quantum - 1)).astype(np.int64)
        return values + noise
