"""A small 8051-class assembly language and assembler.

The paper's functional simulator runs compiled C on a modified 8051
RTL. This module provides the instruction-level half of that story in
Python: a compact, faithful-in-spirit subset of the 8051 ISA with an
assembler from mnemonic text to :class:`Program` objects that
:class:`repro.nvp.mcu.MCU8051` interprets with cycle, energy, and
approximate-datapath accounting.

Supported forms (case-insensitive, ``;`` comments, ``label:`` targets)::

    MOV  A, #12      MOV  A, R3      MOV  R3, A      MOV R2, #7
    MOV  DPTR, #512  INC  DPTR
    MOVX A, @DPTR    MOVX @DPTR, A
    ADD  A, R1       ADD  A, #3      ADDC A, R1      SUBB A, #1
    MUL  AB
    ANL/ORL/XRL A, Rn|#imm
    INC/DEC A|Rn     CLR A           RL/RR A         SWAP A
    CLR  C           SETB C
    SJMP lbl   JZ lbl   JNZ lbl   JC lbl   JNC lbl
    CJNE A, #imm, lbl      DJNZ Rn, lbl
    NOP              HALT
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ProcessorError
from .isa import InstructionClass

__all__ = ["Operand", "Instruction", "Program", "assemble"]

# Operand kinds.
_REG = "reg"        # R0-R7
_ACC = "acc"        # A
_B = "breg"         # B (the MUL partner register)
_IMM = "imm"        # #n (8-bit)
_IMM16 = "imm16"    # #n (16-bit, DPTR loads)
_DPTR = "dptr"      # DPTR
_AT_DPTR = "@dptr"  # @DPTR
_LABEL = "label"
_CARRY = "carry"    # C
_AB = "ab"          # the MUL AB register pair
_DIR = "dir"        # direct internal-RAM address (bare number)


@dataclass(frozen=True)
class Operand:
    """One decoded operand."""

    kind: str
    value: int = 0
    label: str = ""

    def __repr__(self) -> str:
        if self.kind == _REG:
            return f"R{self.value}"
        if self.kind in (_IMM, _IMM16):
            return f"#{self.value}"
        if self.kind == _DIR:
            return f"{self.value:#04x}"
        if self.kind == _LABEL:
            return self.label
        return self.kind.upper()


#: mnemonic -> (InstructionClass, allowed operand-kind signatures)
_SPEC: Dict[str, Tuple[InstructionClass, Tuple[Tuple[str, ...], ...]]] = {
    "MOV": (
        InstructionClass.MOVE,
        (
            (_ACC, _IMM), (_ACC, _REG), (_REG, _ACC), (_REG, _IMM),
            (_REG, _REG), (_DPTR, _IMM16),
            (_B, _ACC), (_ACC, _B), (_B, _IMM),
            (_ACC, _DIR), (_DIR, _ACC), (_DIR, _IMM),
        ),
    ),
    "MOVX": (InstructionClass.LOAD, ((_ACC, _AT_DPTR), (_AT_DPTR, _ACC))),
    "ADD": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "ADDC": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "SUBB": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "MUL": (InstructionClass.MUL, ((_AB,),)),
    "ANL": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "ORL": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "XRL": (InstructionClass.ALU, ((_ACC, _REG), (_ACC, _IMM))),
    "INC": (InstructionClass.ALU, ((_ACC,), (_REG,), (_DPTR,))),
    "DEC": (InstructionClass.ALU, ((_ACC,), (_REG,))),
    "CLR": (InstructionClass.ALU, ((_ACC,), (_CARRY,))),
    "SETB": (InstructionClass.ALU, ((_CARRY,),)),
    "RL": (InstructionClass.ALU, ((_ACC,),)),
    "RR": (InstructionClass.ALU, ((_ACC,),)),
    "SWAP": (InstructionClass.ALU, ((_ACC,),)),
    "SJMP": (InstructionClass.BRANCH, ((_LABEL,),)),
    "JZ": (InstructionClass.BRANCH, ((_LABEL,),)),
    "JNZ": (InstructionClass.BRANCH, ((_LABEL,),)),
    "JC": (InstructionClass.BRANCH, ((_LABEL,),)),
    "JNC": (InstructionClass.BRANCH, ((_LABEL,),)),
    "CJNE": (InstructionClass.BRANCH, ((_ACC, _IMM, _LABEL), (_REG, _IMM, _LABEL))),
    "DJNZ": (InstructionClass.BRANCH, ((_REG, _LABEL),)),
    "ACALL": (InstructionClass.BRANCH, ((_LABEL,),)),
    "RET": (InstructionClass.BRANCH, ((),)),
    "PUSH": (InstructionClass.STORE, ((_ACC,), (_REG,), (_DIR,))),
    "POP": (InstructionClass.LOAD, ((_ACC,), (_REG,), (_DIR,))),
    "NOP": (InstructionClass.NOP, ((),)),
    "HALT": (InstructionClass.NOP, ((),)),
}


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction."""

    mnemonic: str
    operands: Tuple[Operand, ...]
    klass: InstructionClass
    #: Resolved branch target (instruction index), for branch forms.
    target: Optional[int] = None
    #: Source line number (1-based), for error reporting.
    line: int = 0

    @property
    def cycles(self) -> int:
        """Clock cycles this instruction takes (classic 8051 timing)."""
        return self.klass.cycles

    def __repr__(self) -> str:
        ops = ", ".join(repr(op) for op in self.operands)
        return f"{self.mnemonic} {ops}".strip()


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions plus the label map."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def label_address(self, name: str) -> int:
        """Instruction index of a label."""
        try:
            return self.labels[name]
        except KeyError:
            raise ProcessorError(f"unknown label {name!r}") from None


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$")
_REG_RE = re.compile(r"^R([0-7])$", re.IGNORECASE)


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip()
    upper = token.upper()
    if upper == "A":
        return Operand(_ACC)
    if upper == "B":
        return Operand(_B)
    if upper == "AB":
        return Operand(_AB)
    if upper == "C":
        return Operand(_CARRY)
    if upper == "DPTR":
        return Operand(_DPTR)
    if upper == "@DPTR":
        return Operand(_AT_DPTR)
    reg = _REG_RE.match(token)
    if reg:
        return Operand(_REG, value=int(reg.group(1)))
    if token.startswith("#"):
        body = token[1:].strip()
        try:
            value = int(body, 0)
        except ValueError:
            raise ProcessorError(
                f"line {line_no}: bad immediate {token!r}"
            ) from None
        if not 0 <= value <= 0xFFFF:
            raise ProcessorError(f"line {line_no}: immediate {value} out of range")
        return Operand(_IMM16 if value > 0xFF else _IMM, value=value)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return Operand(_LABEL, label=token)
    # Bare numbers are direct internal-RAM addresses (8051 "direct").
    try:
        address = int(token, 0)
    except ValueError:
        raise ProcessorError(f"line {line_no}: cannot parse operand {token!r}") from None
    if not 0 <= address <= 0xFF:
        raise ProcessorError(f"line {line_no}: direct address {address} out of range")
    return Operand(_DIR, value=address)


def _signature_matches(expected: Tuple[str, ...], operands: Sequence[Operand]) -> bool:
    if len(expected) != len(operands):
        return False
    for kind, operand in zip(expected, operands):
        if kind == _IMM16 and operand.kind in (_IMM, _IMM16):
            continue
        if kind == _IMM and operand.kind != _IMM:
            return False
        if kind not in (_IMM, _IMM16) and operand.kind != kind:
            return False
    return True


def assemble(source: Union[str, Sequence[str]]) -> Program:
    """Assemble mnemonic text into a :class:`Program`.

    Two-pass: collect labels, then parse and resolve branch targets.
    Raises :class:`~repro.errors.ProcessorError` with the offending
    line number on any syntax or signature error.
    """
    lines = source.splitlines() if isinstance(source, str) else list(source)

    # Pass 1: strip comments, peel labels, collect statements.
    statements: List[Tuple[int, str]] = []
    labels: Dict[str, int] = {}
    for line_no, raw in enumerate(lines, start=1):
        text = raw.split(";", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match:
                name = match.group(1)
                if name in labels:
                    raise ProcessorError(f"line {line_no}: duplicate label {name!r}")
                if name.upper() in _SPEC:
                    raise ProcessorError(
                        f"line {line_no}: label {name!r} shadows a mnemonic"
                    )
                labels[name] = len(statements)
                text = match.group(2).strip()
                continue
            statements.append((line_no, text))
            break

    # Labels at end-of-program point one past the last instruction
    # (useful as a HALT target); normalise them.
    program_length = len(statements)
    for name, address in labels.items():
        if address > program_length:
            labels[name] = program_length

    # Pass 2: parse statements.
    instructions: List[Instruction] = []
    for index, (line_no, text) in enumerate(statements):
        parts = text.split(None, 1)
        mnemonic = parts[0].upper()
        if mnemonic not in _SPEC:
            raise ProcessorError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        klass, signatures = _SPEC[mnemonic]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            _parse_operand(tok, line_no)
            for tok in operand_text.split(",")
            if tok.strip()
        )
        if not any(_signature_matches(sig, operands) for sig in signatures):
            raise ProcessorError(
                f"line {line_no}: bad operands for {mnemonic}: {text!r}"
            )
        target: Optional[int] = None
        for operand in operands:
            if operand.kind == _LABEL:
                if operand.label not in labels:
                    raise ProcessorError(
                        f"line {line_no}: undefined label {operand.label!r}"
                    )
                target = labels[operand.label]
        instructions.append(
            Instruction(
                mnemonic=mnemonic,
                operands=operands,
                klass=klass,
                target=target,
                line=line_no,
            )
        )
    return Program(instructions=tuple(instructions), labels=labels)
