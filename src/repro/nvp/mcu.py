"""Behavioral 8051-class interpreter with nonvolatile checkpointing.

Executes :class:`repro.nvp.asm.Program` objects instruction by
instruction with classic 8051 timing, tracks energy through the
calibrated power model, supports the NVP's defining operation —
snapshot the *complete* machine state at any instruction boundary and
resume later, bit-exactly — and routes arithmetic through the
approximate datapath when a reduced bit budget is active.

The key correctness property of the paper's base platform ("systems can
make persistent progress even if only one instruction successfully
completes between power interruptions") is directly testable here: a
run chopped by arbitrarily many snapshot/restore cycles produces the
same final state as an uninterrupted run. The test suite checks exactly
that, with hypothesis generating the interruption schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError
from .asm import Instruction, Program
from .datapath import ApproximateALU
from .energy_model import CLOCK_HZ, EnergyModel

__all__ = ["MCUState", "MCU8051", "RunOutcome"]

#: External data memory (XRAM) size in bytes.
XRAM_SIZE = 4096


@dataclass(frozen=True)
class MCUState:
    """A complete nonvolatile checkpoint of the machine."""

    pc: int
    acc: int
    b: int
    carry: int
    registers: Tuple[int, ...]
    dptr: int
    xram: bytes
    cycles: int
    halted: bool
    iram: bytes = bytes(256)
    sp: int = 7


@dataclass(frozen=True)
class RunOutcome:
    """Result of one :meth:`MCU8051.run` call."""

    instructions: int
    cycles: int
    energy_uj: float
    halted: bool

    @property
    def seconds(self) -> float:
        """Wall-clock time at the 1 MHz core clock."""
        return self.cycles / CLOCK_HZ


class MCU8051:
    """The interpreter. One instance = one powered-or-not core.

    Parameters
    ----------
    program:
        The assembled program to execute.
    ac_bits:
        Reliable-bit budget of the datapath (8 = precise). Arithmetic
        results pass through the approximate ALU below 8 bits; compares
        use noisy keys, exactly the Section 8.1 semantics.
    energy_model:
        Power model used to price executed cycles.
    seed:
        Noise seed for the approximate datapath.
    """

    def __init__(
        self,
        program: Program,
        ac_bits: int = 8,
        energy_model: Optional[EnergyModel] = None,
        seed: int = 0,
    ) -> None:
        if len(program) == 0:
            raise ProcessorError("cannot run an empty program")
        self.program = program
        self.ac_bits = check_int_in_range(ac_bits, "ac_bits", 1, 8)
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self._alu = ApproximateALU(seed=seed)
        self.pc = 0
        self.acc = 0
        self.b = 0
        self.carry = 0
        self.registers = [0] * 8
        self.dptr = 0
        self.xram = bytearray(XRAM_SIZE)
        # Internal RAM with the classic post-bank stack pointer reset.
        self.iram = bytearray(256)
        self.sp = 7
        self.cycles = 0
        self.instructions_executed = 0
        self.halted = False

    # -- memory helpers ---------------------------------------------------

    def load_xram(self, address: int, data) -> None:
        """Preload external data memory (the testbench ROM arrays)."""
        data = np.asarray(data, dtype=np.int64).ravel()
        if address < 0 or address + data.size > XRAM_SIZE:
            raise ProcessorError("XRAM preload out of range")
        for offset, value in enumerate(data):
            self.xram[address + offset] = int(value) & 0xFF

    def read_xram(self, address: int, length: int) -> np.ndarray:
        """Read back a region of external data memory."""
        if address < 0 or address + length > XRAM_SIZE:
            raise ProcessorError("XRAM read out of range")
        return np.frombuffer(
            bytes(self.xram[address : address + length]), dtype=np.uint8
        ).astype(np.int64)

    # -- approximate datapath ------------------------------------------------

    def _approx(self, value: int) -> int:
        if self.ac_bits >= 8:
            return value & 0xFF
        return int(
            self._alu.passthrough(np.array([value & 0xFF]), self.ac_bits)[0]
        )

    # -- execution -------------------------------------------------------------

    def step(self) -> int:
        """Execute one instruction; returns its cycle count."""
        if self.halted:
            return 0
        if not 0 <= self.pc < len(self.program):
            self.halted = True
            return 0
        instruction = self.program[self.pc]
        next_pc = self.pc + 1
        handler = getattr(self, f"_op_{instruction.mnemonic.lower()}", None)
        if handler is None:
            raise ProcessorError(f"unimplemented mnemonic {instruction.mnemonic}")
        jump = handler(instruction)
        self.pc = jump if jump is not None else next_pc
        self.cycles += instruction.cycles
        self.instructions_executed += 1
        return instruction.cycles

    def run(self, max_cycles: Optional[int] = None) -> RunOutcome:
        """Run until HALT, program end, or the cycle budget expires."""
        start_cycles = self.cycles
        start_instructions = self.instructions_executed
        budget = max_cycles if max_cycles is not None else float("inf")
        while not self.halted and (self.cycles - start_cycles) < budget:
            if self.step() == 0:
                break
        executed_cycles = self.cycles - start_cycles
        power_uw = self.energy_model.uniform_run_power_uw(self.ac_bits)
        energy_uj = power_uw * executed_cycles / CLOCK_HZ
        return RunOutcome(
            instructions=self.instructions_executed - start_instructions,
            cycles=executed_cycles,
            energy_uj=energy_uj,
            halted=self.halted,
        )

    # -- nonvolatile checkpointing -----------------------------------------------

    def snapshot(self) -> MCUState:
        """Capture the complete machine state (an NVP backup image)."""
        return MCUState(
            pc=self.pc,
            acc=self.acc,
            b=self.b,
            carry=self.carry,
            registers=tuple(self.registers),
            dptr=self.dptr,
            xram=bytes(self.xram),
            cycles=self.cycles,
            halted=self.halted,
            iram=bytes(self.iram),
            sp=self.sp,
        )

    def restore(self, state: MCUState) -> None:
        """Resume from a backup image, bit-exactly."""
        self.pc = state.pc
        self.acc = state.acc
        self.b = state.b
        self.carry = state.carry
        self.registers = list(state.registers)
        self.dptr = state.dptr
        self.xram = bytearray(state.xram)
        self.iram = bytearray(state.iram)
        self.sp = state.sp
        self.cycles = state.cycles
        self.halted = state.halted

    # -- operand access ------------------------------------------------------------

    def _read(self, operand) -> int:
        if operand.kind == "acc":
            return self.acc
        if operand.kind == "breg":
            return self.b
        if operand.kind == "reg":
            return self.registers[operand.value]
        if operand.kind == "dir":
            return self.iram[operand.value]
        if operand.kind in ("imm", "imm16"):
            return operand.value
        raise ProcessorError(f"cannot read operand {operand!r}")

    def _write(self, operand, value: int) -> None:
        if operand.kind == "acc":
            self.acc = value & 0xFF
        elif operand.kind == "breg":
            self.b = value & 0xFF
        elif operand.kind == "reg":
            self.registers[operand.value] = value & 0xFF
        elif operand.kind == "dir":
            self.iram[operand.value] = value & 0xFF
        elif operand.kind == "dptr":
            self.dptr = value & 0xFFFF
        else:
            raise ProcessorError(f"cannot write operand {operand!r}")

    # -- instruction handlers (return next PC to jump, else None) --------------------

    def _op_mov(self, ins: Instruction) -> Optional[int]:
        dst, src = ins.operands
        if dst.kind == "dptr":
            self.dptr = src.value & 0xFFFF
        else:
            self._write(dst, self._read(src))
        return None

    def _op_movx(self, ins: Instruction) -> Optional[int]:
        dst, src = ins.operands
        address = self.dptr % XRAM_SIZE
        if dst.kind == "acc":  # MOVX A, @DPTR
            self.acc = self.xram[address]
        else:  # MOVX @DPTR, A
            self.xram[address] = self.acc & 0xFF
        return None

    def _op_add(self, ins: Instruction) -> Optional[int]:
        total = self.acc + self._read(ins.operands[1])
        self.carry = 1 if total > 0xFF else 0
        self.acc = self._approx(total & 0xFF)
        return None

    def _op_addc(self, ins: Instruction) -> Optional[int]:
        total = self.acc + self._read(ins.operands[1]) + self.carry
        self.carry = 1 if total > 0xFF else 0
        self.acc = self._approx(total & 0xFF)
        return None

    def _op_subb(self, ins: Instruction) -> Optional[int]:
        total = self.acc - self._read(ins.operands[1]) - self.carry
        self.carry = 1 if total < 0 else 0
        self.acc = self._approx(total & 0xFF)
        return None

    def _op_mul(self, ins: Instruction) -> Optional[int]:
        product = self.acc * self.b
        self.acc = self._approx(product & 0xFF)
        self.b = (product >> 8) & 0xFF
        self.carry = 0
        return None

    def _op_anl(self, ins: Instruction) -> Optional[int]:
        self.acc = (self.acc & self._read(ins.operands[1])) & 0xFF
        return None

    def _op_orl(self, ins: Instruction) -> Optional[int]:
        self.acc = (self.acc | self._read(ins.operands[1])) & 0xFF
        return None

    def _op_xrl(self, ins: Instruction) -> Optional[int]:
        self.acc = (self.acc ^ self._read(ins.operands[1])) & 0xFF
        return None

    def _op_inc(self, ins: Instruction) -> Optional[int]:
        operand = ins.operands[0]
        if operand.kind == "dptr":
            self.dptr = (self.dptr + 1) & 0xFFFF
        else:
            self._write(operand, self._read(operand) + 1)
        return None

    def _op_dec(self, ins: Instruction) -> Optional[int]:
        operand = ins.operands[0]
        self._write(operand, self._read(operand) - 1)
        return None

    def _op_clr(self, ins: Instruction) -> Optional[int]:
        if ins.operands[0].kind == "carry":
            self.carry = 0
        else:
            self.acc = 0
        return None

    def _op_setb(self, ins: Instruction) -> Optional[int]:
        self.carry = 1
        return None

    def _op_rl(self, ins: Instruction) -> Optional[int]:
        self.acc = ((self.acc << 1) | (self.acc >> 7)) & 0xFF
        return None

    def _op_rr(self, ins: Instruction) -> Optional[int]:
        self.acc = ((self.acc >> 1) | ((self.acc & 1) << 7)) & 0xFF
        return None

    def _op_swap(self, ins: Instruction) -> Optional[int]:
        self.acc = ((self.acc << 4) | (self.acc >> 4)) & 0xFF
        return None

    def _op_sjmp(self, ins: Instruction) -> Optional[int]:
        return ins.target

    def _op_jz(self, ins: Instruction) -> Optional[int]:
        return ins.target if self.acc == 0 else None

    def _op_jnz(self, ins: Instruction) -> Optional[int]:
        return ins.target if self.acc != 0 else None

    def _op_jc(self, ins: Instruction) -> Optional[int]:
        return ins.target if self.carry else None

    def _op_jnc(self, ins: Instruction) -> Optional[int]:
        return ins.target if not self.carry else None

    def _op_cjne(self, ins: Instruction) -> Optional[int]:
        left = self._read(ins.operands[0])
        right = self._read(ins.operands[1])
        if self.ac_bits < 8:
            # Noisy comparison: both keys pass the reduced datapath.
            left, right = self._approx(left), self._approx(right)
        self.carry = 1 if left < right else 0
        return ins.target if left != right else None

    def _op_djnz(self, ins: Instruction) -> Optional[int]:
        register = ins.operands[0]
        value = (self._read(register) - 1) & 0xFF
        self._write(register, value)
        return ins.target if value != 0 else None

    def _op_acall(self, ins: Instruction) -> Optional[int]:
        # Classic 8051 call: push the return address onto the internal
        # stack, low byte first.
        return_pc = self.pc + 1
        self.sp = (self.sp + 1) & 0xFF
        self.iram[self.sp] = return_pc & 0xFF
        self.sp = (self.sp + 1) & 0xFF
        self.iram[self.sp] = (return_pc >> 8) & 0xFF
        return ins.target

    def _op_ret(self, ins: Instruction) -> Optional[int]:
        high = self.iram[self.sp]
        self.sp = (self.sp - 1) & 0xFF
        low = self.iram[self.sp]
        self.sp = (self.sp - 1) & 0xFF
        return (high << 8) | low

    def _op_push(self, ins: Instruction) -> Optional[int]:
        self.sp = (self.sp + 1) & 0xFF
        self.iram[self.sp] = self._read(ins.operands[0]) & 0xFF
        return None

    def _op_pop(self, ins: Instruction) -> Optional[int]:
        self._write(ins.operands[0], self.iram[self.sp])
        self.sp = (self.sp - 1) & 0xFF
        return None

    def _op_nop(self, ins: Instruction) -> Optional[int]:
        return None

    def _op_halt(self, ins: Instruction) -> Optional[int]:
        self.halted = True
        return self.pc  # stay put

    # -- introspection ---------------------------------------------------------------

    def register_dump(self) -> Dict[str, int]:
        """The architectural registers, for debugging and tests."""
        dump = {f"R{i}": v for i, v in enumerate(self.registers)}
        dump.update(A=self.acc, B=self.b, C=self.carry, DPTR=self.dptr, PC=self.pc)
        return dump
