"""Instruction classes and kernel instruction mixes for the 8051-class NVP.

The functional simulator of the paper runs compiled MiBench kernels on
a modified 8051 RTL. At the behavioral level what the system simulator
needs from the ISA is (a) how many instructions a unit of kernel work
costs and (b) how the energy of an instruction depends on its class
(memory operations cost more than register ALU operations, multiplies
more than adds). This module captures both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping

from .._validation import check_non_negative
from ..errors import ProcessorError

__all__ = ["InstructionClass", "InstructionMix", "DEFAULT_MIX", "KERNEL_MIXES"]


class InstructionClass(Enum):
    """Instruction classes of the 8051-class datapath.

    The ``weight`` of each class is its relative per-instruction energy
    against a register-to-register ALU operation; ``cycles`` is the
    class's base cycle count on the five-stage pipeline (the classic
    8051 multi-cycle MUL is retained).
    """

    # Cycle counts follow the classic 8051 timing: one machine cycle is
    # 12 clocks; MOVX-style memory accesses and branches take two
    # machine cycles, MUL takes four.
    ALU = ("alu", 1.00, 12)
    MOVE = ("move", 0.85, 12)
    LOAD = ("load", 1.60, 24)
    STORE = ("store", 1.75, 24)
    BRANCH = ("branch", 1.10, 24)
    MUL = ("mul", 2.80, 48)
    NOP = ("nop", 0.40, 12)
    #: Incidental-computing control: marks a resume point in the
    #: nonvolatile PC buffer (Section 4).
    MARK_RESUME = ("mark_resume", 1.20, 12)
    #: Incidental-computing control: requests a multi-version merge.
    MERGE_REQUEST = ("merge_request", 1.20, 12)

    def __init__(self, label: str, weight: float, cycles: int) -> None:
        self.label = label
        self.weight = weight
        self.cycles = cycles


@dataclass(frozen=True)
class InstructionMix:
    """A normalised distribution over instruction classes.

    Used to derive the average energy-per-instruction of a kernel from
    the per-class weights, mirroring the paper's note that "the energy
    per instruction within these testbenches" varies slightly and
    drives profile-to-profile variation in Figure 28.
    """

    fractions: Mapping[InstructionClass, float] = field(
        default_factory=lambda: dict(_DEFAULT_FRACTIONS)
    )

    def __post_init__(self) -> None:
        total = 0.0
        for cls, frac in self.fractions.items():
            if not isinstance(cls, InstructionClass):
                raise ProcessorError(f"mix keys must be InstructionClass, got {cls!r}")
            check_non_negative(frac, f"fraction[{cls.label}]", exc=ProcessorError)
            total += frac
        if abs(total - 1.0) > 1e-6:
            raise ProcessorError(f"instruction-mix fractions must sum to 1, got {total}")

    @property
    def mean_energy_weight(self) -> float:
        """Average relative energy per instruction under this mix."""
        return float(
            sum(cls.weight * frac for cls, frac in self.fractions.items())
        )

    @property
    def mean_cycles(self) -> float:
        """Average cycles per instruction under this mix."""
        return float(
            sum(cls.cycles * frac for cls, frac in self.fractions.items())
        )

    def scaled_by(self, **overrides: float) -> "InstructionMix":
        """Return a re-normalised mix with some class fractions replaced.

        ``overrides`` maps class *labels* to new (unnormalised) masses.
        """
        masses: Dict[InstructionClass, float] = dict(self.fractions)
        by_label = {cls.label: cls for cls in InstructionClass}
        for label, mass in overrides.items():
            if label not in by_label:
                raise ProcessorError(f"unknown instruction class label {label!r}")
            masses[by_label[label]] = check_non_negative(mass, label, exc=ProcessorError)
        total = sum(masses.values())
        if total <= 0.0:
            raise ProcessorError("instruction mix cannot be all-zero")
        return InstructionMix({cls: mass / total for cls, mass in masses.items()})


_DEFAULT_FRACTIONS: Dict[InstructionClass, float] = {
    InstructionClass.ALU: 0.36,
    InstructionClass.MOVE: 0.14,
    InstructionClass.LOAD: 0.22,
    InstructionClass.STORE: 0.10,
    InstructionClass.BRANCH: 0.13,
    InstructionClass.MUL: 0.03,
    InstructionClass.NOP: 0.02,
}

#: Generic embedded-kernel mix used when a workload has no bespoke mix.
DEFAULT_MIX = InstructionMix()

#: Per-kernel instruction mixes (the slight energy-per-instruction
#: variation the paper attributes Figure 28's profile variation to).
KERNEL_MIXES: Dict[str, InstructionMix] = {
    "sobel": DEFAULT_MIX.scaled_by(mul=0.06, alu=0.40),
    "median": DEFAULT_MIX.scaled_by(branch=0.22, load=0.26),
    "integral": DEFAULT_MIX.scaled_by(alu=0.44, load=0.24),
    "susan_smoothing": DEFAULT_MIX.scaled_by(mul=0.08, load=0.26),
    "susan_edges": DEFAULT_MIX.scaled_by(mul=0.07, branch=0.16),
    "susan_corners": DEFAULT_MIX.scaled_by(mul=0.07, branch=0.18),
    "jpeg_encode": DEFAULT_MIX.scaled_by(mul=0.12, alu=0.40),
    "tiff2bw": DEFAULT_MIX.scaled_by(mul=0.05, move=0.18),
    "tiff2rgba": DEFAULT_MIX.scaled_by(move=0.24, store=0.16),
    "fft": DEFAULT_MIX.scaled_by(mul=0.14, alu=0.40),
}
