"""Five-stage pipeline model with nonvolatile flip-flops (Figure 6).

The paper's NVP is a simple 5-stage pipeline (IF/ID, ID/EX, EX/MEM,
MEM/WB latches plus PC) where every pipeline flip-flop is nonvolatile,
enabling in-situ distributed backup. This module sizes that state —
which is what the backup engine prices — and provides snapshot and
restore of the architectural+microarchitectural state the simulator
tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError

__all__ = ["PipelineModel", "StateSnapshot", "STAGE_NAMES"]

#: Latch boundaries of the five-stage pipeline, in order.
STAGE_NAMES: Tuple[str, ...] = ("IF/ID", "ID/EX", "EX/MEM", "MEM/WB")


@dataclass(frozen=True)
class StateSnapshot:
    """A backup image of the processor's volatile-equivalent state."""

    pc: int
    stage_words: Dict[str, int]
    register_banks: np.ndarray
    tick: int

    @property
    def total_words(self) -> int:
        """Number of words captured in the snapshot."""
        return 1 + len(self.stage_words) + int(self.register_banks.size)


class PipelineModel:
    """Sizes and snapshots the NVP's distributed nonvolatile state.

    Parameters
    ----------
    word_bits:
        Datapath width (8).
    n_regs:
        Architectural registers per lane bank.
    latch_words_per_stage:
        Pipeline-latch payload per stage boundary, in words (operands,
        control, destination tags).
    control_state_bits:
        Lane-independent control state: PC (16 bits), the 2-byte x 4
        nonvolatile resume-point PC buffer (Section 4), approximation
        control registers, state-machine bits.
    """

    def __init__(
        self,
        word_bits: int = 8,
        n_regs: int = 16,
        latch_words_per_stage: int = 5,
        control_state_bits: int = 128,
    ) -> None:
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ProcessorError)
        self.n_regs = check_int_in_range(n_regs, "n_regs", 1, 64, exc=ProcessorError)
        self.latch_words_per_stage = check_int_in_range(
            latch_words_per_stage, "latch_words_per_stage", 1, 64, exc=ProcessorError
        )
        self.control_state_bits = check_int_in_range(
            control_state_bits, "control_state_bits", 0, 4096, exc=ProcessorError
        )

    # -- state sizing (what backup must persist) ---------------------------

    @property
    def base_state_bits(self) -> int:
        """Lane-independent state: PC, resume buffer, control."""
        # 16-bit PC + 4 x 16-bit resume-point buffer + control.
        return 16 + 4 * 16 + self.control_state_bits

    @property
    def lane_state_bits(self) -> int:
        """Per-lane full-precision state: registers + pipeline latches."""
        latch_bits = len(STAGE_NAMES) * self.latch_words_per_stage * self.word_bits
        reg_bits = self.n_regs * self.word_bits
        return latch_bits + reg_bits

    def state_bits(self, lane_bits: Sequence[int]) -> int:
        """Total nonvolatile bits to persist for the given lane budgets.

        A lane running with ``b`` reliable bits only persists the top
        ``b`` bit-slices of its registers and latches reliably.
        """
        lanes = list(lane_bits)
        if not 1 <= len(lanes) <= 4:
            raise ProcessorError(f"1-4 lanes supported, got {len(lanes)}")
        total = float(self.base_state_bits)
        for b in lanes:
            b = check_int_in_range(b, "lane bits", 1, self.word_bits, exc=ProcessorError)
            total += self.lane_state_bits * (b / self.word_bits)
        return int(round(total))

    def state_fraction(self, lane_bits: Sequence[int]) -> float:
        """State size relative to a single full-precision lane."""
        full = self.base_state_bits + self.lane_state_bits
        return self.state_bits(lane_bits) / full

    # -- snapshotting ---------------------------------------------------------

    def snapshot(
        self,
        pc: int,
        register_banks: np.ndarray,
        tick: int,
        stage_words: Dict[str, int] = None,
    ) -> StateSnapshot:
        """Capture a :class:`StateSnapshot` of the live state."""
        pc = check_int_in_range(pc, "pc", 0, (1 << 16) - 1, exc=ProcessorError)
        tick = check_int_in_range(tick, "tick", 0, exc=ProcessorError)
        if stage_words is None:
            stage_words = {name: 0 for name in STAGE_NAMES}
        unknown = set(stage_words) - set(STAGE_NAMES)
        if unknown:
            raise ProcessorError(f"unknown pipeline stages: {sorted(unknown)}")
        return StateSnapshot(
            pc=pc,
            stage_words=dict(stage_words),
            register_banks=np.array(register_banks, copy=True),
            tick=tick,
        )
