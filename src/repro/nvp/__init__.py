"""Nonvolatile-processor substrate.

A behavioral model of the paper's modified 8051-class NVP: a simple
five-stage pipeline with nonvolatile flip-flops, a bit-selectable
approximate ALU and approximate data memory, a multi-version
(power-gated) register file for incidental SIMD, and a backup/restore
engine whose energy follows the STT-RAM retention model.

The RTL of the original evaluation is replaced by instruction- and
energy-level accounting (see DESIGN.md for the substitution argument);
the numerical *semantics* of bit-reduced execution are reproduced
exactly as Section 8.1 describes them.
"""

from .isa import InstructionClass, InstructionMix, DEFAULT_MIX
from .energy_model import EnergyModel
from .datapath import ApproximateALU, alu_reduce_bits
from .memory_approx import ApproximateMemory, memory_truncate_bits, memory_quantize
from .registers import MultiVersionRegisterFile
from .pipeline import PipelineModel, StateSnapshot
from .backup import BackupEngine, BackupRecord
from .processor import NonvolatileProcessor
from .asm import Instruction, Operand, Program, assemble
from .mcu import MCU8051, MCUState, RunOutcome

__all__ = [
    "InstructionClass",
    "InstructionMix",
    "DEFAULT_MIX",
    "EnergyModel",
    "ApproximateALU",
    "alu_reduce_bits",
    "ApproximateMemory",
    "memory_truncate_bits",
    "memory_quantize",
    "MultiVersionRegisterFile",
    "PipelineModel",
    "StateSnapshot",
    "BackupEngine",
    "BackupRecord",
    "NonvolatileProcessor",
    "Instruction",
    "Operand",
    "Program",
    "assemble",
    "MCU8051",
    "MCUState",
    "RunOutcome",
]
