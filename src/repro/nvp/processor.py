"""The behavioral nonvolatile processor (Figure 6).

``NonvolatileProcessor`` composes the energy model, pipeline sizing,
multi-version register file and backup engine into the object the
system-level simulator drives: "run this many cycles with these lane
bit-budgets", "back up now", "restore now". It tracks committed
instructions per lane — lane 0 is the current (newest-data) computation
and lanes 1-3 are incidental SIMD lanes — which is exactly the forward
progress accounting the paper's metrics need.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_int_in_range
from ..errors import ProcessorError
from ..nvm.retention import RetentionPolicy
from ..obs.tracer import NULL_TRACER
from ..resilience import DeviceResilience, ResilienceConfig
from .backup import BackupEngine
from .energy_model import CYCLES_PER_TICK, EnergyModel
from .isa import DEFAULT_MIX, InstructionMix
from .pipeline import PipelineModel
from .registers import MultiVersionRegisterFile

__all__ = ["NonvolatileProcessor"]


class NonvolatileProcessor:
    """Energy- and progress-accounting model of the incidental NVP.

    Parameters
    ----------
    energy_model:
        Calibrated power/energy model (defaults provided).
    policy:
        Retention policy for approximate backups; ``None`` = precise.
    mix:
        Instruction mix of the running kernel (affects energy/instr).
    max_simd_width:
        Hardware lane limit (4 in the paper).
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`; when
        given, the processor owns a :class:`DeviceResilience` instance
        that injects device faults into backups/restores and runs the
        hardened fallback chain. ``None`` (the default) keeps the
        idealized atomic-persistence behavior bit-identical.
    tracer:
        Optional observability :class:`~repro.obs.Tracer`; threaded into
        the backup engine and the resilience model. ``None`` (the
        default) binds the free NULL_TRACER everywhere.
    """

    def __init__(
        self,
        energy_model: Optional[EnergyModel] = None,
        policy: Optional[RetentionPolicy] = None,
        mix: InstructionMix = DEFAULT_MIX,
        max_simd_width: int = 4,
        resilience: Optional[ResilienceConfig] = None,
        tracer=None,
    ) -> None:
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.pipeline = PipelineModel(word_bits=self.energy_model.word_bits)
        self.registers = MultiVersionRegisterFile(
            word_bits=self.energy_model.word_bits, versions=4
        )
        self.resilience: Optional[DeviceResilience] = (
            DeviceResilience(resilience) if resilience is not None else None
        )
        if self.resilience is not None:
            self.resilience.tracer = self.tracer
        guard_bits = (
            self.resilience.priced_guard_bits if self.resilience is not None else 0
        )
        self.backup_engine = BackupEngine(
            self.energy_model,
            self.pipeline,
            policy=policy,
            guard_bits=guard_bits,
            tracer=self.tracer,
        )
        self.mix = mix
        self.max_simd_width = check_int_in_range(max_simd_width, "max_simd_width", 1, 4)
        # Committed instructions per lane slot.
        self.committed_per_lane: List[int] = [0, 0, 0, 0]
        self.pc = 0
        self.run_energy_uj = 0.0
        self.run_ticks = 0
        # Fractional-instruction carry so multi-cycle instructions that
        # straddle tick boundaries are not lost to truncation.
        self._instruction_residue = 0.0

    # -- power queries (used by the system layer for thresholds) ----------

    def run_power_uw(self, lane_bits: Sequence[int]) -> float:
        """Chip power (µW) while executing with the given lane budgets."""
        self._check_lanes(lane_bits)
        return self.energy_model.run_power_uw(lane_bits)

    def backup_energy_uj(self, lane_bits: Sequence[int]) -> float:
        """Cost of a backup under the current policy and lane budgets."""
        self._check_lanes(lane_bits)
        return self.backup_engine.backup_energy_uj(lane_bits)

    def restore_energy_uj(self, lane_bits: Sequence[int]) -> float:
        """Cost of a restore for the given lane budgets."""
        self._check_lanes(lane_bits)
        return self.backup_engine.restore_energy_uj(lane_bits)

    def _check_lanes(self, lane_bits: Sequence[int]) -> None:
        lanes = list(lane_bits)
        if not 1 <= len(lanes) <= self.max_simd_width:
            raise ProcessorError(
                f"lane count must be 1-{self.max_simd_width}, got {len(lanes)}"
            )
        for b in lanes:
            check_int_in_range(
                b, "lane bits", 1, self.energy_model.word_bits, exc=ProcessorError
            )

    # -- execution ----------------------------------------------------------

    def execute_tick(self, lane_bits: Sequence[int]) -> int:
        """Run one 0.1 ms tick (100 cycles at 1 MHz) on the given lanes.

        Returns the number of lane-instructions committed this tick and
        accumulates run energy and per-lane progress. Lane order is
        [current, incidental_1, incidental_2, incidental_3].
        """
        self._check_lanes(lane_bits)
        lanes = list(lane_bits)
        exact = CYCLES_PER_TICK / self.mix.mean_cycles + self._instruction_residue
        instructions_per_lane = int(exact)
        self._instruction_residue = exact - instructions_per_lane
        for lane, _bits in enumerate(lanes):
            self.committed_per_lane[lane] += instructions_per_lane
        power = self.energy_model.run_power_uw(lanes) * self.mix.mean_energy_weight
        self.run_energy_uj += power * 1.0e-4  # one tick = 1e-4 s
        self.run_ticks += 1
        self.pc = (self.pc + instructions_per_lane) & 0xFFFF
        committed = instructions_per_lane * len(lanes)
        if self.resilience is not None:
            self.resilience.note_executed(committed)
        return committed

    # -- persistence ----------------------------------------------------------

    def backup(self, tick: int, lane_bits: Sequence[int]) -> float:
        """Take a backup; returns its energy (µJ).

        With a resilience model attached, the fault model decides
        whether this backup tears mid-write; the record carries the
        outcome and the checkpoint store receives the (possibly torn,
        CRC-guarded) image the restore path will later validate.
        """
        self._check_lanes(lane_bits)
        aborted = False
        if self.resilience is not None:
            aborted = self.resilience.on_backup(
                tick, self.pipeline.state_bits(lane_bits)
            )
        record = self.backup_engine.record_backup(tick, lane_bits, aborted=aborted)
        if self.resilience is not None:
            self.resilience.note_guard_energy(record.energy_uj, record.state_bits)
        return record.energy_uj

    def restore(self, lane_bits: Sequence[int]) -> float:
        """Restore after an outage; returns its energy (µJ)."""
        self._check_lanes(lane_bits)
        return self.backup_engine.record_restore(lane_bits)

    # -- progress metrics --------------------------------------------------------

    @property
    def forward_progress(self) -> int:
        """Committed instructions on the current-data lane (lane 0)."""
        return self.committed_per_lane[0]

    @property
    def incidental_progress(self) -> int:
        """Committed instructions on incidental lanes (lanes 1-3)."""
        return int(sum(self.committed_per_lane[1:]))

    @property
    def total_progress(self) -> int:
        """All committed lane-instructions (the paper's incidental FP)."""
        return self.forward_progress + self.incidental_progress

    @property
    def backup_count(self) -> int:
        """Backups taken so far."""
        return self.backup_engine.backup_count

    @property
    def aborted_backup_count(self) -> int:
        """Backups interrupted mid-write so far."""
        return self.backup_engine.aborted_backup_count

    def reset_counters(self) -> None:
        """Zero progress/energy counters (state sizing is untouched)."""
        self.committed_per_lane = [0, 0, 0, 0]
        self.run_energy_uj = 0.0
        self.run_ticks = 0
        self.pc = 0
        self._instruction_residue = 0.0
        self.backup_engine.backups.clear()
        self.backup_engine.restore_count = 0
        self.backup_engine.total_backup_energy_uj = 0.0
        self.backup_engine.total_restore_energy_uj = 0.0
        if self.resilience is not None:
            self.resilience.reset()
