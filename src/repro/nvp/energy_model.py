"""Calibrated NVP power/energy model.

The measured platform of Section 2.1 runs the NVP at 1 MHz for
0.209 mW. We decompose that 209 µW into:

* ``P_leak``   — always-on leakage while the chip is powered;
* ``P_fetch``  — fetch/decode/control power, *shared* across SIMD
  lanes (this sharing is gain source (3) in Section 8.6: "incidental
  computing provides the SIMD benefits of reduced instruction fetch
  energy");
* ``P_dp(b)``  — per-lane datapath power, scaling with the lane's
  reliable bit budget ``b`` as ``alpha + (1-alpha) * (b/8)**2``
  (gradient VDD over bit slices, after [8, 75]: each dropped bit slice
  also drops its supply voltage, so power falls superlinearly in the
  reliable width).

Backups are priced from the measured system balance rather than from
raw cell energetics: Section 3.2 reports that precise backups consume
20.1-33 % of total income energy at 1400-1700 backups per minute, which
fixes the full-retention backup cost at a fraction of a microjoule.
Retention-shaped backups scale that cost by the policy's relative write
energy from the STT-RAM model, preserving the *ratio* the device model
predicts while keeping the system-level absolute calibrated. Restores
read NVM (cheap) but pay a wake-up cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .._validation import check_in_range, check_int_in_range, check_non_negative, check_positive
from ..errors import ConfigurationError
from ..nvm.retention import RetentionPolicy, UniformRetention
from ..nvm.sttram import RETENTION_ONE_DAY_S, STTRAMModel

__all__ = ["EnergyModel"]

#: NVP clock frequency (Hz) — 1 MHz in the measured platform.
CLOCK_HZ: float = 1.0e6

#: Cycles per 0.1 ms tick at 1 MHz.
CYCLES_PER_TICK: int = 100


@dataclass(frozen=True)
class EnergyModel:
    """Power and energy accounting for the behavioral NVP.

    All defaults are calibrated jointly (see DESIGN.md §5.3) so that:

    * full-precision single-lane power is 209 µW at 1 MHz;
    * Figure 15's shape holds (1-bit execution roughly doubles forward
      progress once backup savings and duty-cycle effects compound);
    * precise backups consume a 20-33 % share of income energy on the
      standard profiles.
    """

    leakage_uw: float = 10.0
    fetch_uw: float = 100.0
    datapath_uw: float = 99.0
    datapath_floor: float = 0.05
    datapath_bit_exponent: float = 2.0
    word_bits: int = 8
    #: Full-retention, full-state backup energy for one 8-bit lane (µJ).
    #: Calibrated so precise backups consume a 20-33 % share of income
    #: energy on the standard profiles (Section 3.2).
    backup_base_uj: float = 0.70
    #: Restore (wake-up + NVM read) energy (µJ).
    restore_base_uj: float = 0.08
    #: STT-RAM model used for *relative* retention-policy scaling.
    cell: STTRAMModel = STTRAMModel()

    def __post_init__(self) -> None:
        check_non_negative(self.leakage_uw, "leakage_uw")
        check_non_negative(self.fetch_uw, "fetch_uw")
        check_positive(self.datapath_uw, "datapath_uw")
        check_in_range(self.datapath_floor, "datapath_floor", 0.0, 1.0)
        check_positive(self.datapath_bit_exponent, "datapath_bit_exponent")
        check_int_in_range(self.word_bits, "word_bits", 1, 32)
        check_positive(self.backup_base_uj, "backup_base_uj")
        check_positive(self.restore_base_uj, "restore_base_uj")

    # -- run power -----------------------------------------------------

    def lane_datapath_uw(self, bits: int) -> float:
        """Datapath power of one lane running with ``bits`` reliable bits."""
        b = check_int_in_range(bits, "bits", 1, self.word_bits)
        scale = self.datapath_floor + (1.0 - self.datapath_floor) * (
            b / self.word_bits
        ) ** self.datapath_bit_exponent
        return self.datapath_uw * scale

    def run_power_uw(self, lane_bits: Sequence[int]) -> float:
        """Total chip power (µW) with the given per-lane bit budgets.

        ``lane_bits`` holds one entry per active SIMD lane (1-4 lanes);
        fetch and leakage are paid once regardless of width.
        """
        lanes = list(lane_bits)
        if not 1 <= len(lanes) <= 4:
            raise ConfigurationError(
                f"the NVP supports 1-4 SIMD lanes, got {len(lanes)}"
            )
        return (
            self.leakage_uw
            + self.fetch_uw
            + sum(self.lane_datapath_uw(b) for b in lanes)
        )

    def uniform_run_power_uw(self, bits: int, simd_width: int = 1) -> float:
        """Chip power with ``simd_width`` lanes all at ``bits`` bits."""
        width = check_int_in_range(simd_width, "simd_width", 1, 4)
        return self.run_power_uw([bits] * width)

    def energy_per_instruction_nj(
        self, bits: int, simd_width: int = 1, mix_weight: float = 1.0
    ) -> float:
        """Energy per *lane-instruction* (nJ) at 1 MHz, 1 IPC per lane.

        ``mix_weight`` scales for a kernel's instruction mix (relative
        to the pure-ALU baseline).
        """
        weight = check_positive(mix_weight, "mix_weight")
        power = self.uniform_run_power_uw(bits, simd_width)
        per_cycle_nj = power / CLOCK_HZ * 1.0e3  # uW / Hz -> uJ -> nJ
        return per_cycle_nj * weight / simd_width

    # -- backup / restore ------------------------------------------------

    def state_fraction(self, lane_bits: Sequence[int], base_state_bits: int, lane_state_bits: int) -> float:
        """Backed-up state size relative to one full-precision lane.

        ``base_state_bits`` covers PC/control state shared by all lanes;
        ``lane_state_bits`` is the per-lane register/pipeline state at
        full precision. A lane running with ``b`` reliable bits only
        needs ``b/word_bits`` of its state persisted reliably (the
        paper's "reduced local state to back up").
        """
        lanes = list(lane_bits)
        if not lanes:
            raise ConfigurationError("at least one lane must be active")
        full = base_state_bits + lane_state_bits
        shaped = base_state_bits + lane_state_bits * sum(
            b / self.word_bits for b in lanes
        )
        return shaped / full

    def policy_relative_energy(self, policy: Optional[RetentionPolicy]) -> float:
        """Per-word backup-energy ratio of ``policy`` vs full retention."""
        if policy is None:
            policy = UniformRetention(RETENTION_ONE_DAY_S, word_bits=self.word_bits)
        return policy.relative_write_energy(self.cell)

    def backup_energy_uj(
        self,
        policy: Optional[RetentionPolicy] = None,
        state_fraction: float = 1.0,
    ) -> float:
        """Energy of one backup (µJ).

        ``policy=None`` means the precise (1-day uniform) backup; a
        shaped policy scales cost by its relative STT-RAM write energy.
        ``state_fraction`` scales for the amount of live state (smaller
        bit budgets and inactive lanes back up less).
        """
        fraction = check_positive(state_fraction, "state_fraction")
        return self.backup_base_uj * self.policy_relative_energy(policy) * fraction

    def restore_energy_uj(self, state_fraction: float = 1.0) -> float:
        """Energy of one restore (µJ)."""
        fraction = check_positive(state_fraction, "state_fraction")
        # Wake-up cost dominates; the read scales weakly with state.
        return self.restore_base_uj * (0.6 + 0.4 * fraction)

    def guard_overhead_fraction(self, state_bits: int, guard_bits: int) -> float:
        """Relative backup-energy increase from CRC guard words.

        Guard words ride the same distributed write as the state they
        protect, so their cost scales with their share of the persisted
        image: ``guard_bits / state_bits``.
        """
        state = check_int_in_range(state_bits, "state_bits", 1)
        guard = check_int_in_range(guard_bits, "guard_bits", 0)
        return guard / state
