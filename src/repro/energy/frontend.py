"""AC-DC rectifier / front-end conversion models.

The harvester's raw AC output passes through a rectifier and power
conditioning before it can charge the capacitor or power the NVP
(Figure 1). Conversion efficiency is strongly input-dependent: tiny
inputs are swallowed by diode drops and quiescent current, while the
efficiency saturates for healthy inputs. The paper's Section 2.2 cites
"energy conversion efficiency overheads" as a core cost of the
wait-compute approach and "front-end conversion efficiencies" as a
benefit of the small-capacitor NVP approach.

:class:`DualChannelFrontend` models the Sheng et al. [57] dual-channel
solution: while the load is running, income bypasses the storage
element and flows to the load at higher efficiency.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_non_negative, check_positive
from ..errors import EnergyError

__all__ = ["RectifierFrontend", "DualChannelFrontend"]


class RectifierFrontend:
    """Input-dependent conversion efficiency of an AC-DC front end.

    The efficiency curve is a saturating function of input power:

    ``eta(p) = eta_max * p / (p + p_half)``  for ``p >= p_min``, else 0.

    Parameters
    ----------
    eta_max:
        Asymptotic conversion efficiency for strong inputs.
    half_power_uw:
        Input power at which efficiency reaches half of ``eta_max``.
    min_input_uw:
        Inputs below this level produce no usable output (diode drop /
        cold-start threshold).
    """

    __slots__ = ("eta_max", "half_power_uw", "min_input_uw")

    def __init__(
        self,
        eta_max: float = 0.82,
        half_power_uw: float = 12.0,
        min_input_uw: float = 2.0,
    ) -> None:
        self.eta_max = check_in_range(eta_max, "eta_max", 0.0, 1.0, exc=EnergyError)
        self.half_power_uw = check_positive(half_power_uw, "half_power_uw", exc=EnergyError)
        self.min_input_uw = check_non_negative(min_input_uw, "min_input_uw", exc=EnergyError)

    def efficiency(self, power_uw: float) -> float:
        """Conversion efficiency at the given input power."""
        power = check_non_negative(power_uw, "power_uw", exc=EnergyError)
        if power < self.min_input_uw:
            return 0.0
        return self.eta_max * power / (power + self.half_power_uw)

    def convert(self, power_uw: float) -> float:
        """Usable DC output power (µW) for a raw input of ``power_uw``."""
        return float(power_uw) * self.efficiency(power_uw)

    def convert_trace(self, samples_uw: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`convert` over an array of samples."""
        samples = np.asarray(samples_uw, dtype=np.float64)
        out = self.eta_max * samples * samples / (samples + self.half_power_uw)
        out[samples < self.min_input_uw] = 0.0
        return out


class DualChannelFrontend(RectifierFrontend):
    """Dual-channel front end (Sheng et al. [57]).

    Adds a direct load channel with a flat ``bypass_efficiency`` that is
    used *while the load is on*, bypassing the storage round-trip. The
    storage channel behaves like the base class.
    """

    __slots__ = ("bypass_efficiency",)

    def __init__(
        self,
        eta_max: float = 0.82,
        half_power_uw: float = 12.0,
        min_input_uw: float = 2.0,
        bypass_efficiency: float = 0.92,
    ) -> None:
        super().__init__(eta_max=eta_max, half_power_uw=half_power_uw, min_input_uw=min_input_uw)
        self.bypass_efficiency = check_in_range(
            bypass_efficiency, "bypass_efficiency", 0.0, 1.0, exc=EnergyError
        )

    def convert_direct(self, power_uw: float) -> float:
        """Power delivered straight to a running load (µW)."""
        power = check_non_negative(power_uw, "power_uw", exc=EnergyError)
        if power < self.min_input_uw:
            return 0.0
        return power * self.bypass_efficiency
