"""Energy-management thresholds for the NVP state machine.

The system-level simulator (Section 7 of the paper, derived from Ma et
al. [30]) is configured with three thresholds over the stored capacitor
energy:

* **start threshold** — the NVP leaves the OFF state and restores only
  when the capacitor holds enough energy to pay for the restore, to
  reserve a guaranteed backup, and to run for at least a minimum burst
  of cycles. A configuration that executes at higher power (wider SIMD,
  more bits) therefore has a *higher* start threshold — this is exactly
  the mechanism behind Figure 9's system-on-time ordering.

* **backup threshold** — while running, if the stored energy falls to
  the reserved backup energy (plus margin), a power emergency is
  declared and the state is backed up with the remaining charge.

* **restore energy** — the fixed cost of waking up and restoring
  distributed state from NVM.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_int_in_range, check_non_negative, check_positive
from ..errors import ConfigurationError
from .traces import TICK_S

__all__ = ["ThresholdSet", "derive_thresholds"]


@dataclass(frozen=True)
class ThresholdSet:
    """Capacitor-energy thresholds driving the OFF/RUN/BACKUP machine."""

    start_energy_uj: float
    backup_threshold_uj: float
    backup_energy_uj: float
    restore_energy_uj: float

    def __post_init__(self) -> None:
        check_non_negative(self.backup_energy_uj, "backup_energy_uj")
        check_non_negative(self.restore_energy_uj, "restore_energy_uj")
        check_non_negative(self.backup_threshold_uj, "backup_threshold_uj")
        check_non_negative(self.start_energy_uj, "start_energy_uj")
        if self.backup_threshold_uj < self.backup_energy_uj:
            raise ConfigurationError(
                "backup_threshold_uj must reserve at least backup_energy_uj "
                f"({self.backup_threshold_uj} < {self.backup_energy_uj})"
            )
        if self.start_energy_uj < self.backup_threshold_uj + self.restore_energy_uj:
            raise ConfigurationError(
                "start_energy_uj must cover restore cost plus backup reserve"
            )

    @property
    def run_headroom_uj(self) -> float:
        """Energy available for execution immediately after a start."""
        return self.start_energy_uj - self.restore_energy_uj - self.backup_threshold_uj


def derive_thresholds(
    backup_energy_uj: float,
    restore_energy_uj: float,
    run_power_uw: float,
    min_run_ticks: int = 20,
    backup_margin: float = 0.25,
) -> ThresholdSet:
    """Derive a consistent :class:`ThresholdSet` for one configuration.

    Parameters
    ----------
    backup_energy_uj:
        Energy of one backup under the active retention policy. Cheaper
        (approximate) backups directly lower both thresholds — the
        paper's "if the energy reserves needed for backup are reduced,
        fewer power emergencies may occur".
    restore_energy_uj:
        Energy of one restore operation.
    run_power_uw:
        Steady-state power draw of the configuration that will run
        (bit-budget- and SIMD-width-dependent).
    min_run_ticks:
        Minimum guaranteed execution burst (in 0.1 ms ticks) after a
        start, so the system does not thrash between restore and backup.
    backup_margin:
        Fractional safety margin added to the backup reserve.
    """
    backup = check_non_negative(backup_energy_uj, "backup_energy_uj")
    restore = check_non_negative(restore_energy_uj, "restore_energy_uj")
    power = check_positive(run_power_uw, "run_power_uw")
    ticks = check_int_in_range(min_run_ticks, "min_run_ticks", 1)
    margin = check_non_negative(backup_margin, "backup_margin")

    backup_threshold = backup * (1.0 + margin)
    run_budget = power * TICK_S * ticks
    start = restore + backup_threshold + run_budget
    return ThresholdSet(
        start_energy_uj=start,
        backup_threshold_uj=backup_threshold,
        backup_energy_uj=backup,
        restore_energy_uj=restore,
    )
