"""Power-outage extraction and statistics (Figure 3).

A *power outage* (equivalently, *power emergency*) begins when the
income power falls below the processor operating threshold and ends
when it recovers. Figure 3 of the paper plots, for power profile 1,
the duration of each outage (left) and the frequency of outages by
duration (right). Those statistics drive two parts of the system:

* the system simulator's backup/restore cadence, and
* the retention-failure model (an approximately-backed-up bit flips
  when the outage outlives its shaped retention time, Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range, check_positive
from ..errors import TraceError
from .traces import OPERATING_THRESHOLD_UW, TICK_S, PowerTrace

__all__ = ["Outage", "OutageStatistics", "find_outages", "outage_statistics"]


@dataclass(frozen=True)
class Outage:
    """One contiguous below-threshold interval of a power trace."""

    start_tick: int
    duration_ticks: int

    @property
    def end_tick(self) -> int:
        """First tick after the outage (exclusive end)."""
        return self.start_tick + self.duration_ticks

    @property
    def duration_s(self) -> float:
        """Outage duration in seconds."""
        return self.duration_ticks * TICK_S


def find_outages(
    trace: PowerTrace, threshold_uw: float = OPERATING_THRESHOLD_UW
) -> List[Outage]:
    """Extract every below-threshold interval from ``trace``.

    Intervals that are still open at the end of the trace are included
    with their truncated duration, since the simulator treats the end
    of a trace as the end of the observation window.
    """
    threshold = check_positive(threshold_uw, "threshold_uw", exc=TraceError)
    below = trace.samples_uw < threshold
    if not below.any():
        return []
    # Locate edges of the below-threshold mask.
    padded = np.concatenate(([False], below, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    starts, ends = edges[0::2], edges[1::2]
    return [
        Outage(start_tick=int(start), duration_ticks=int(end - start))
        for start, end in zip(starts, ends)
    ]


@dataclass(frozen=True)
class OutageStatistics:
    """Summary statistics for a set of outages (Figure 3, right)."""

    count: int
    durations_ticks: Tuple[int, ...]
    threshold_uw: float
    trace_ticks: int

    @property
    def mean_duration_ticks(self) -> float:
        """Mean outage duration in ticks (0 when there are no outages)."""
        if not self.count:
            return 0.0
        return float(np.mean(self.durations_ticks))

    @property
    def median_duration_ticks(self) -> float:
        """Median outage duration in ticks."""
        if not self.count:
            return 0.0
        return float(np.median(self.durations_ticks))

    @property
    def max_duration_ticks(self) -> int:
        """Longest outage observed, in ticks."""
        if not self.count:
            return 0
        return int(max(self.durations_ticks))

    @property
    def outage_fraction(self) -> float:
        """Fraction of the trace spent below threshold."""
        if not self.trace_ticks:
            return 0.0
        return float(sum(self.durations_ticks)) / float(self.trace_ticks)

    def emergencies_per_window(self, window_s: float = 10.0) -> float:
        """Outage (emergency) rate normalised to a ``window_s`` window.

        Section 2.2 reports 1000-2000 emergencies in a 10 s window for
        the wristwatch harvester at a 33 µW threshold.
        """
        window_s = check_positive(window_s, "window_s", exc=TraceError)
        trace_s = self.trace_ticks * TICK_S
        if trace_s <= 0.0:
            return 0.0
        return self.count * (window_s / trace_s)

    def histogram(self, bin_edges_ticks: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram outage durations over ``bin_edges_ticks``.

        Returns ``(counts, edges)`` in the ``numpy.histogram`` style;
        this is the data series behind Figure 3 (right).
        """
        edges = np.asarray(sorted(bin_edges_ticks), dtype=np.float64)
        if edges.size < 2:
            raise TraceError("histogram requires at least two bin edges")
        counts, edges = np.histogram(np.asarray(self.durations_ticks), bins=edges)
        return counts, edges

    def longer_than(self, duration_ticks: int) -> int:
        """Number of outages strictly longer than ``duration_ticks``.

        The retention-failure model uses this to count how many backup
        intervals outlive a given shaped retention time.
        """
        duration = check_int_in_range(duration_ticks, "duration_ticks", 0, exc=TraceError)
        return int(sum(1 for d in self.durations_ticks if d > duration))


def outage_statistics(
    trace: PowerTrace, threshold_uw: float = OPERATING_THRESHOLD_UW
) -> OutageStatistics:
    """Compute :class:`OutageStatistics` for ``trace`` at ``threshold_uw``."""
    outages = find_outages(trace, threshold_uw=threshold_uw)
    return OutageStatistics(
        count=len(outages),
        durations_ticks=tuple(outage.duration_ticks for outage in outages),
        threshold_uw=float(threshold_uw),
        trace_ticks=len(trace),
    )
