"""Power traces and the five calibrated "watch" profiles of Figure 2.

The paper evaluates on five power profiles measured from a wristwatch
rotational harvester, sampled every 0.1 ms over a 10 s window (100 000
samples, Figure 2). Those measurements are not public, so this module
provides a seeded synthetic generator calibrated to the published
statistics:

* mean power in the 10-40 µW band (Section 2.2),
* instantaneous peaks up to ~2000 µW (Figure 2),
* 1000-2000 power emergencies per 10 s window at the 33 µW processor
  operating threshold (Section 2.2),
* an outage-duration distribution dominated by few-ms outages with a
  tail out to a few hundred ms (Figure 3).

Each profile uses a distinct harvester parameterisation and a distinct
seed, giving the five profiles the same qualitative diversity the
paper's five traces show (denser vs. sparser bursts, stronger vs.
weaker spikes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_float_array, check_int_in_range, check_positive
from ..errors import TraceError
from .harvester import HarvesterModel, WristwatchRingHarvester

__all__ = [
    "TICK_S",
    "PowerTrace",
    "ProfileSpec",
    "STANDARD_PROFILE_IDS",
    "standard_profile",
    "standard_profiles",
    "SYNTH_TRACE_MODES",
    "synthesize_trace",
    "synth_trace_ticks",
]

#: Sampling period of all power traces: 0.1 ms, as in the paper.
TICK_S: float = 1.0e-4

#: Processor operating threshold used for emergency statistics (µW).
OPERATING_THRESHOLD_UW: float = 33.0


class PowerTrace:
    """An immutable power trace sampled at :data:`TICK_S` intervals.

    Parameters
    ----------
    samples_uw:
        Power samples in microwatts; must be non-negative and finite.
    name:
        Human-readable label used in reports.
    """

    __slots__ = ("_samples", "name")

    def __init__(self, samples_uw: Sequence[float], name: str = "trace") -> None:
        samples = as_float_array(samples_uw, "samples_uw", ndim=1, exc=TraceError)
        if samples.size == 0:
            raise TraceError("a power trace must contain at least one sample")
        if np.any(samples < 0.0):
            raise TraceError("power samples must be non-negative")
        samples.setflags(write=False)
        self._samples = samples
        self.name = str(name)

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return int(self._samples.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def __getitem__(self, index):
        return self._samples[index]

    def __repr__(self) -> str:
        return (
            f"PowerTrace(name={self.name!r}, ticks={len(self)}, "
            f"mean={self.mean_power_uw:.1f}uW, peak={self.peak_power_uw:.0f}uW)"
        )

    # -- derived quantities -------------------------------------------

    @property
    def samples_uw(self) -> np.ndarray:
        """The underlying (read-only) sample array in µW."""
        return self._samples

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return len(self) * TICK_S

    @property
    def mean_power_uw(self) -> float:
        """Mean power over the whole trace (µW)."""
        return float(self._samples.mean())

    @property
    def peak_power_uw(self) -> float:
        """Maximum instantaneous power (µW)."""
        return float(self._samples.max())

    @property
    def total_energy_uj(self) -> float:
        """Total harvested energy over the trace (µJ)."""
        return float(self._samples.sum() * TICK_S)

    def fraction_above(self, threshold_uw: float) -> float:
        """Fraction of samples at or above ``threshold_uw``."""
        threshold = float(threshold_uw)
        return float(np.mean(self._samples >= threshold))

    def emergency_count(self, threshold_uw: float = OPERATING_THRESHOLD_UW) -> int:
        """Number of falling edges through ``threshold_uw``.

        Each falling edge is a *power emergency*: the instant at which
        an NVP running directly off the income would have to back up.
        """
        above = self._samples >= float(threshold_uw)
        falling = np.logical_and(above[:-1], np.logical_not(above[1:]))
        return int(np.count_nonzero(falling))

    # -- transformation -----------------------------------------------

    def segment(self, start_tick: int, stop_tick: int, name: Optional[str] = None) -> "PowerTrace":
        """Return the half-open sub-trace ``[start_tick, stop_tick)``."""
        start = check_int_in_range(start_tick, "start_tick", 0, len(self) - 1, exc=TraceError)
        stop = check_int_in_range(stop_tick, "stop_tick", start + 1, len(self), exc=TraceError)
        return PowerTrace(
            self._samples[start:stop],
            name=name if name is not None else f"{self.name}[{start}:{stop}]",
        )

    def scaled(self, factor: float, name: Optional[str] = None) -> "PowerTrace":
        """Return a copy with every sample multiplied by ``factor``."""
        factor = check_positive(factor, "factor", exc=TraceError)
        return PowerTrace(
            self._samples * factor,
            name=name if name is not None else f"{self.name}*{factor:g}",
        )

    def repeated(self, times: int, name: Optional[str] = None) -> "PowerTrace":
        """Return the trace tiled ``times`` times end-to-end."""
        times = check_int_in_range(times, "times", 1, exc=TraceError)
        return PowerTrace(
            np.tile(self._samples, times),
            name=name if name is not None else f"{self.name}x{times}",
        )

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Persist the trace to an ``.npz`` file.

        Lets users capture their own measured harvester traces once and
        replay them across experiments.
        """
        np.savez_compressed(path, samples_uw=self._samples, name=np.array(self.name))

    @classmethod
    def load(cls, path) -> "PowerTrace":
        """Load a trace previously stored with :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            if "samples_uw" not in data:
                raise TraceError(f"{path!r} is not a saved PowerTrace")
            samples = data["samples_uw"]
            name = str(data["name"]) if "name" in data else "trace"
        return cls(samples, name=name)

    @classmethod
    def from_csv(cls, path, name: str = "trace") -> "PowerTrace":
        """Load a one-column CSV of µW samples at 0.1 ms spacing.

        The interchange format for measured traces (the paper's own
        profiles were sampled this way).
        """
        samples = np.loadtxt(path, delimiter=",", dtype=np.float64, ndmin=1)
        if samples.ndim != 1:
            raise TraceError("CSV must contain a single column of power samples")
        return cls(samples, name=name)

    def to_csv(self, path) -> None:
        """Write the µW samples as a one-column CSV."""
        np.savetxt(path, self._samples, fmt="%.6g")

    def high_activity_window(self, window_ticks: int) -> Tuple[int, "PowerTrace"]:
        """Locate the densest-energy window of length ``window_ticks``.

        Returns ``(start_tick, sub_trace)``. Used to reproduce the
        Figure 9 timing analysis, which zooms into an active portion of
        power profile 2.
        """
        window = check_int_in_range(window_ticks, "window_ticks", 1, len(self), exc=TraceError)
        cumulative = np.concatenate(([0.0], np.cumsum(self._samples)))
        window_energy = cumulative[window:] - cumulative[:-window]
        start = int(np.argmax(window_energy))
        return start, self.segment(start, start + window, name=f"{self.name}:active")


@dataclass(frozen=True)
class ProfileSpec:
    """Generator specification for one standard power profile."""

    profile_id: int
    seed: int
    harvester: HarvesterModel
    description: str

    def generate(self, duration_s: float = 10.0) -> PowerTrace:
        """Materialise the profile as a :class:`PowerTrace`."""
        duration_s = check_positive(duration_s, "duration_s", exc=TraceError)
        n_samples = int(round(duration_s / TICK_S))
        rng = np.random.default_rng(self.seed)
        samples = self.harvester.generate(n_samples, rng)
        return PowerTrace(samples, name=f"profile-{self.profile_id}")


def _build_profile_specs() -> Dict[int, ProfileSpec]:
    """The five calibrated profile specifications.

    Profiles 1 and 4 model relatively energetic days (higher average
    power); profiles 2, 3 and 5 model low-average-power days — matching
    the paper's guidance in Section 8.6 that linear retention shaping
    suits profiles 1/4 and parabola suits profiles 2/3/5.
    """
    return {
        1: ProfileSpec(
            profile_id=1,
            seed=20170114,
            harvester=WristwatchRingHarvester(
                burst_median_uw=230.0,
                mean_burst_ticks=14.0,
                mean_quiet_ticks=24.0,
                dead_probability=0.045,
            ),
            description="active wear: dense medium bursts",
        ),
        2: ProfileSpec(
            profile_id=2,
            seed=20170228,
            harvester=WristwatchRingHarvester(
                burst_median_uw=280.0,
                burst_sigma=1.1,
                mean_burst_ticks=11.0,
                mean_quiet_ticks=30.0,
                dead_probability=0.07,
                mean_dead_ticks=1300.0,
            ),
            description="sporadic strong spikes, longer outages",
        ),
        3: ProfileSpec(
            profile_id=3,
            seed=20170321,
            harvester=WristwatchRingHarvester(
                burst_median_uw=170.0,
                mean_burst_ticks=12.0,
                mean_quiet_ticks=26.0,
                dead_probability=0.06,
                mean_dead_ticks=1300.0,
            ),
            description="weak bursts, long dead tail",
        ),
        4: ProfileSpec(
            profile_id=4,
            seed=20170402,
            harvester=WristwatchRingHarvester(
                burst_median_uw=170.0,
                burst_sigma=0.8,
                mean_burst_ticks=18.0,
                mean_quiet_ticks=24.0,
                dead_probability=0.035,
            ),
            description="sustained activity: longer, steadier bursts",
        ),
        5: ProfileSpec(
            profile_id=5,
            seed=20170530,
            harvester=WristwatchRingHarvester(
                burst_median_uw=140.0,
                burst_sigma=1.0,
                mean_burst_ticks=10.0,
                mean_quiet_ticks=28.0,
                dead_probability=0.065,
                mean_dead_ticks=1200.0,
            ),
            description="low-energy day: sparse weak spikes",
        ),
    }


_PROFILE_SPECS: Dict[int, ProfileSpec] = _build_profile_specs()

#: Identifiers of the five standard profiles (Figure 2).
STANDARD_PROFILE_IDS: Tuple[int, ...] = tuple(sorted(_PROFILE_SPECS))


def standard_profile(profile_id: int, duration_s: float = 10.0) -> PowerTrace:
    """Return standard power profile ``profile_id`` (1-5) as a trace.

    Profiles are deterministic: the same id and duration always produce
    the identical trace, which keeps every experiment reproducible.
    """
    if profile_id not in _PROFILE_SPECS:
        raise TraceError(
            f"unknown profile id {profile_id!r}; valid ids are {STANDARD_PROFILE_IDS}"
        )
    return _PROFILE_SPECS[profile_id].generate(duration_s=duration_s)


def standard_profiles(duration_s: float = 10.0) -> List[PowerTrace]:
    """Return all five standard profiles (Figure 2)."""
    return [standard_profile(pid, duration_s=duration_s) for pid in STANDARD_PROFILE_IDS]


# -- vectorized synthetic harvester traces (fleet-scale generation) -----------
#
# The regime-switching :class:`~repro.energy.harvester.HarvesterModel`
# simulates one regime at a time in a Python loop, which is fine for
# five calibrated profiles but dominates runtime when a fleet campaign
# instantiates thousands of distinct device traces. The generators
# below are the fleet-scale counterparts: each mode is a closed-form
# numpy pipeline (a handful of O(n) array operations, no per-regime
# loop), seeded per device, producing traces with the qualitative
# signatures of the corresponding ambient source:
#
# * ``solar``   — a diurnal envelope with slow cloud attenuation and
#                 occasional hard shadow outages (indoor light / time-
#                 lapse day compressed into ``diurnal_period_s``);
# * ``rf``      — sparse lognormal impulses with exponential ring-down
#                 over a weak quiet floor (WiFi/TV scavenging);
# * ``thermal`` — low-amplitude body-heat income with slow drift and
#                 rare contact-loss dropouts.
#
# Determinism contract (pinned by ``tests/test_energy_traces.py``):
# the same ``(mode, seed, duration_s, scale)`` always produces the
# identical sample array, across calls and across processes.


def synth_trace_ticks(duration_s: float) -> int:
    """Tick count of a synthetic trace of ``duration_s`` seconds.

    Exposed so batch planners can size chunk budgets without paying
    for the synthesis itself.
    """
    duration_s = check_positive(duration_s, "duration_s", exc=TraceError)
    return max(1, int(round(duration_s / TICK_S)))


def _box_smooth(x: np.ndarray, window: int) -> np.ndarray:
    """O(n) centred moving average via a cumulative sum."""
    if window <= 1 or x.size <= 1:
        return x
    n = x.size
    cs = np.concatenate(([0.0], np.cumsum(x)))
    pos = np.arange(n)
    hi = np.minimum(pos + window // 2 + 1, n)
    lo = np.maximum(pos - (window - window // 2 - 1), 0)
    return (cs[hi] - cs[lo]) / (hi - lo)


def _coarse_noise(
    rng: np.random.Generator, n: int, stride: int, smooth: int
) -> np.ndarray:
    """Slowly varying unit-normal noise: coarse draws, repeat, smooth.

    Drawing one value per ``stride`` ticks keeps fleet-scale synthesis
    cheap (the slow processes only need bandwidth well below the tick
    rate) while the box smoothing removes the repeat staircase.
    """
    coarse = rng.standard_normal(n // stride + 2)
    fine = np.repeat(coarse, stride)[:n]
    # Cap the window well below the trace length: a window >= n would
    # average the whole trace into a near-constant, and the quantile
    # dropout cuts in the generators would then zero every sample.
    return _box_smooth(fine, min(smooth, max(1, n // 4)))


def _solar_samples(
    rng: np.random.Generator,
    n: int,
    *,
    peak_uw: float = 140.0,
    floor_uw: float = 2.0,
    diurnal_period_s: float = 60.0,
    cloud_depth: float = 1.1,
    shadow_quantile: float = 0.06,
) -> np.ndarray:
    """Diurnal envelope x cloud attenuation, with hard shadow outages."""
    phase = rng.uniform(0.0, 2.0 * np.pi)
    t = np.arange(n, dtype=np.float64) * (TICK_S / diurnal_period_s)
    envelope = np.clip(np.sin(phase + 2.0 * np.pi * t), 0.0, 1.0) ** 1.5
    clouds = np.exp(-cloud_depth * np.maximum(_coarse_noise(rng, n, 64, 4096), 0.0))
    shade = _coarse_noise(rng, n, 64, 8192)
    jitter = 1.0 + 0.05 * _coarse_noise(rng, n, 16, 32)
    samples = (floor_uw + peak_uw * envelope * clouds) * jitter
    # Shadow outages: the deepest `shadow_quantile` of the slow shade
    # process cuts income to zero (somebody walked past the window).
    if n > 1:
        cut = np.quantile(shade, shadow_quantile)
        samples[shade <= cut] = 0.0
    return samples


def _rf_samples(
    rng: np.random.Generator,
    n: int,
    *,
    burst_median_uw: float = 420.0,
    burst_sigma: float = 0.8,
    mean_gap_ticks: float = 90.0,
    ringdown_ticks: float = 7.0,
    floor_uw: float = 1.5,
) -> np.ndarray:
    """Sparse lognormal impulses with exponential ring-down."""
    hits = rng.random(n) < (1.0 / mean_gap_ticks)
    impulses = np.zeros(n, dtype=np.float64)
    k = int(np.count_nonzero(hits))
    if k:
        impulses[hits] = burst_median_uw * rng.lognormal(0.0, burst_sigma, size=k)
    decay = np.exp(-np.arange(int(6 * ringdown_ticks) + 1) / ringdown_ticks)
    ringing = np.convolve(impulses, decay)[:n]
    floor = floor_uw * (1.0 + 0.2 * _coarse_noise(rng, n, 32, 512))
    return ringing + np.maximum(floor, 0.0)


def _thermal_samples(
    rng: np.random.Generator,
    n: int,
    *,
    base_uw: float = 24.0,
    drift_fraction: float = 0.45,
    jitter_fraction: float = 0.04,
    dropout_quantile: float = 0.02,
) -> np.ndarray:
    """Low-amplitude slow drift with rare contact-loss dropouts."""
    drift = _coarse_noise(rng, n, 128, 16384)
    jitter = jitter_fraction * _coarse_noise(rng, n, 8, 16)
    contact = _coarse_noise(rng, n, 128, 32768)
    samples = base_uw * np.maximum(1.0 + drift_fraction * drift + jitter, 0.0)
    if n > 1:
        cut = np.quantile(contact, dropout_quantile)
        samples[contact <= cut] = 0.0
    return samples


#: Generator-mode registry: mode name -> vectorized sample synthesiser.
_SYNTH_GENERATORS = {
    "solar": _solar_samples,
    "rf": _rf_samples,
    "thermal": _thermal_samples,
}

#: Names of the vectorized fleet-scale generator modes.
SYNTH_TRACE_MODES: Tuple[str, ...] = tuple(sorted(_SYNTH_GENERATORS))


def synthesize_trace(
    mode: str,
    seed: int,
    duration_s: float = 10.0,
    scale: float = 1.0,
    **params: float,
) -> PowerTrace:
    """Synthesise one seeded harvester trace via a vectorized generator.

    ``mode`` selects one of :data:`SYNTH_TRACE_MODES`; ``seed`` makes
    the trace deterministic (same arguments, identical samples);
    ``scale`` multiplies the whole trace, modelling device-to-device
    harvester efficiency spread. Extra keyword ``params`` pass through
    to the mode's generator (see the ``_*_samples`` signatures).
    """
    generator = _SYNTH_GENERATORS.get(mode)
    if generator is None:
        raise TraceError(
            f"unknown synthetic trace mode {mode!r}; "
            f"valid modes are {SYNTH_TRACE_MODES}"
        )
    scale = check_positive(scale, "scale", exc=TraceError)
    n = synth_trace_ticks(duration_s)
    rng = np.random.default_rng(seed)
    samples = generator(rng, n, **params)
    if scale != 1.0:
        samples = samples * scale
    np.clip(samples, 0.0, None, out=samples)
    return PowerTrace(samples, name=f"{mode}-{seed}")
