"""Capacitor / energy-storage-device models.

Two storage models appear in the paper's Section 2.2 comparison:

* :class:`Capacitor` — the small on-chip capacitor of an NVP system,
  sized just large enough to guarantee a backup operation plus a little
  cycle-level smoothing. Modelled in the energy domain with a
  proportional leakage term.

* :class:`StorageCapacitor` — the large energy-storage device (ESD) of
  a conventional *wait-compute* platform (e.g. the CAP-XX GZ115 class
  supercapacitor the paper cites), which additionally suffers a
  minimum charging current, a charging-efficiency penalty, and a
  slow charging curve as it approaches capacity.

Both expose the same tick-level interface (``charge`` / ``draw`` /
``leak``) so the two system simulators can share code.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_non_negative, check_positive
from ..errors import EnergyError
from ..obs.tracer import NULL_TRACER
from .traces import TICK_S

__all__ = ["Capacitor", "StorageCapacitor"]


class Capacitor:
    """A small on-chip capacitor modelled in the energy domain.

    Parameters
    ----------
    capacity_uj:
        Maximum stored energy (µJ).
    leakage_fraction_per_s:
        Proportional self-discharge per second (dimensionless).
    leakage_floor_uw:
        Constant parasitic draw (µW) applied whenever any charge is
        stored (models always-on detection circuitry fed by the cap).
    initial_energy_uj:
        Energy stored at construction time (defaults to empty).
    """

    __slots__ = (
        "capacity_uj",
        "leakage_fraction_per_s",
        "leakage_floor_uw",
        "_energy",
        "_tracer",
    )

    def __init__(
        self,
        capacity_uj: float,
        leakage_fraction_per_s: float = 0.01,
        leakage_floor_uw: float = 0.0,
        initial_energy_uj: float = 0.0,
    ) -> None:
        self.capacity_uj = check_positive(capacity_uj, "capacity_uj", exc=EnergyError)
        self.leakage_fraction_per_s = check_non_negative(
            leakage_fraction_per_s, "leakage_fraction_per_s", exc=EnergyError
        )
        self.leakage_floor_uw = check_non_negative(
            leakage_floor_uw, "leakage_floor_uw", exc=EnergyError
        )
        initial = check_in_range(
            initial_energy_uj, "initial_energy_uj", 0.0, self.capacity_uj, exc=EnergyError
        )
        self._energy = float(initial)
        self._tracer = NULL_TRACER

    def attach_tracer(self, tracer) -> None:
        """Attach an observability tracer (the simulator does this once
        per run); the default :data:`NULL_TRACER` makes every hook free."""
        self._tracer = NULL_TRACER if tracer is None else tracer

    @property
    def energy_uj(self) -> float:
        """Currently stored energy (µJ)."""
        return self._energy

    @property
    def fill_fraction(self) -> float:
        """Stored energy as a fraction of capacity, in [0, 1]."""
        return self._energy / self.capacity_uj

    def charge(self, power_uw: float, dt_s: float = TICK_S) -> float:
        """Add ``power_uw`` for ``dt_s`` seconds; returns energy accepted (µJ).

        Energy beyond capacity is discarded (the harvester front end
        clamps the cap voltage), mirroring the charge the paper says is
        "wasted" when storage is already full.
        """
        power = check_non_negative(power_uw, "power_uw", exc=EnergyError)
        dt = check_positive(dt_s, "dt_s", exc=EnergyError)
        incoming = power * dt
        accepted = min(incoming, self.capacity_uj - self._energy)
        self._energy += accepted
        if self._tracer.enabled and incoming > accepted:
            self._tracer.metrics.inc("cap.wasted_uj", incoming - accepted)
        return accepted

    def draw(self, energy_uj: float) -> bool:
        """Atomically withdraw ``energy_uj``; returns ``False`` if short.

        The withdrawal is all-or-nothing: a backup operation either has
        its full energy reserve or must not start.
        """
        amount = check_non_negative(energy_uj, "energy_uj", exc=EnergyError)
        if amount > self._energy + 1e-12:
            return False
        self._energy = max(0.0, self._energy - amount)
        return True

    def drain_power(self, power_uw: float, dt_s: float = TICK_S) -> float:
        """Continuously drain ``power_uw`` for ``dt_s``; returns shortfall (µJ).

        Unlike :meth:`draw`, a continuous drain consumes whatever is
        available; the unmet remainder is returned so the caller can
        detect brown-out.
        """
        power = check_non_negative(power_uw, "power_uw", exc=EnergyError)
        dt = check_positive(dt_s, "dt_s", exc=EnergyError)
        demand = power * dt
        met = min(demand, self._energy)
        self._energy -= met
        shortfall = demand - met
        if self._tracer.enabled and shortfall > 0.0:
            self._tracer.metrics.inc("cap.shortfall_uj", shortfall)
            # Per-tick instants only at debug level: a fully drained cap
            # emits one shortfall every tick of a long outage.
            if self._tracer.debug:
                self._tracer.instant(
                    "cap.brownout",
                    cat="energy",
                    args={"shortfall_uj": shortfall, "demand_uj": demand},
                )
        return shortfall

    def leak(self, dt_s: float = TICK_S) -> float:
        """Apply self-discharge for ``dt_s``; returns energy lost (µJ)."""
        dt = check_positive(dt_s, "dt_s", exc=EnergyError)
        proportional = self._energy * self.leakage_fraction_per_s * dt
        floor = self.leakage_floor_uw * dt if self._energy > 0.0 else 0.0
        loss = min(self._energy, proportional + floor)
        self._energy -= loss
        if self._tracer.enabled and loss > 0.0:
            self._tracer.metrics.inc("cap.leak_uj", loss)
        return loss

    def reset(self, energy_uj: float = 0.0) -> None:
        """Set the stored energy (used when starting a new simulation)."""
        self._energy = check_in_range(
            energy_uj, "energy_uj", 0.0, self.capacity_uj, exc=EnergyError
        )


class StorageCapacitor(Capacitor):
    """A large ESD with the pathologies of Section 2.2.

    On top of the base capacitor model this adds:

    * ``min_charging_power_uw`` — income below this level cannot charge
      the device at all (the GZ115's 20 µA minimum charging current at
      ~1 V translates to roughly this order);
    * ``charging_efficiency`` — a flat conversion penalty for moving
      charge *into* the ESD;
    * a *slow charging curve*: acceptance degrades linearly to
      ``topoff_efficiency`` as the device approaches capacity.
    """

    __slots__ = ("min_charging_power_uw", "charging_efficiency", "topoff_efficiency")

    def __init__(
        self,
        capacity_uj: float,
        leakage_fraction_per_s: float = 0.002,
        leakage_floor_uw: float = 1.0,
        min_charging_power_uw: float = 25.0,
        charging_efficiency: float = 0.60,
        topoff_efficiency: float = 0.25,
        initial_energy_uj: float = 0.0,
    ) -> None:
        super().__init__(
            capacity_uj,
            leakage_fraction_per_s=leakage_fraction_per_s,
            leakage_floor_uw=leakage_floor_uw,
            initial_energy_uj=initial_energy_uj,
        )
        self.min_charging_power_uw = check_non_negative(
            min_charging_power_uw, "min_charging_power_uw", exc=EnergyError
        )
        self.charging_efficiency = check_in_range(
            charging_efficiency, "charging_efficiency", 0.0, 1.0, exc=EnergyError
        )
        self.topoff_efficiency = check_in_range(
            topoff_efficiency, "topoff_efficiency", 0.0, self.charging_efficiency, exc=EnergyError
        )

    def charge(self, power_uw: float, dt_s: float = TICK_S) -> float:
        """Charge through the ESD's lossy path; returns energy accepted (µJ)."""
        power = check_non_negative(power_uw, "power_uw", exc=EnergyError)
        if power < self.min_charging_power_uw:
            return 0.0
        # Efficiency degrades from charging_efficiency (empty) down to
        # topoff_efficiency (full): the slow charging curve.
        efficiency = self.charging_efficiency - (
            (self.charging_efficiency - self.topoff_efficiency) * self.fill_fraction
        )
        return super().charge(power * efficiency, dt_s=dt_s)

    def ticks_to_charge(self, target_uj: float, income_uw: float) -> int:
        """Estimate ticks needed to reach ``target_uj`` at constant income.

        Returns ``-1`` when the target is unreachable (income below the
        minimum charging current, or leakage exceeds net charging) —
        the "may take arbitrarily long" failure mode of wait-compute.
        """
        target = check_in_range(target_uj, "target_uj", 0.0, self.capacity_uj, exc=EnergyError)
        income = check_non_negative(income_uw, "income_uw", exc=EnergyError)
        probe = StorageCapacitor(
            self.capacity_uj,
            leakage_fraction_per_s=self.leakage_fraction_per_s,
            leakage_floor_uw=self.leakage_floor_uw,
            min_charging_power_uw=self.min_charging_power_uw,
            charging_efficiency=self.charging_efficiency,
            topoff_efficiency=self.topoff_efficiency,
            initial_energy_uj=self._energy,
        )
        # A generous horizon: if it has not charged in 10 minutes of
        # model time, treat the target as unreachable.
        horizon = int(600.0 / TICK_S)
        for tick in range(horizon):
            if probe.energy_uj >= target:
                return tick
            before = probe.energy_uj
            probe.charge(income)
            probe.leak()
            if probe.energy_uj <= before + 1e-15 and probe.energy_uj < target:
                return -1
        return -1
