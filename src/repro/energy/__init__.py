"""Energy-harvesting substrate.

This subpackage models the power-provisioning front end of the paper's
Figure 1 system diagram: ambient-energy harvesters, the AC-DC rectifier
front end, storage capacitors, synthetic wristwatch power traces sampled
at 0.1 ms (Figure 2), and power-outage statistics (Figure 3).

Units used throughout the package:

* power  — microwatts (µW)
* energy — microjoules (µJ)
* time   — seconds, or *ticks* of ``TICK_S`` = 0.1 ms (the paper's
  power-profile sampling period)
"""

from .traces import (
    TICK_S,
    PowerTrace,
    ProfileSpec,
    STANDARD_PROFILE_IDS,
    standard_profile,
    standard_profiles,
)
from .harvester import (
    HarvesterModel,
    WristwatchRingHarvester,
    SolarHarvester,
    RFHarvester,
    ThermalHarvester,
)
from .outages import Outage, OutageStatistics, find_outages, outage_statistics
from .capacitor import Capacitor, StorageCapacitor
from .frontend import RectifierFrontend, DualChannelFrontend
from .management import ThresholdSet, derive_thresholds

__all__ = [
    "TICK_S",
    "PowerTrace",
    "ProfileSpec",
    "STANDARD_PROFILE_IDS",
    "standard_profile",
    "standard_profiles",
    "HarvesterModel",
    "WristwatchRingHarvester",
    "SolarHarvester",
    "RFHarvester",
    "ThermalHarvester",
    "Outage",
    "OutageStatistics",
    "find_outages",
    "outage_statistics",
    "Capacitor",
    "StorageCapacitor",
    "RectifierFrontend",
    "DualChannelFrontend",
    "ThresholdSet",
    "derive_thresholds",
]
