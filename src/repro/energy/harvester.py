"""Ambient-energy harvester source models.

The paper's running example is a "wristwatch form factor" platform with
an unbalanced-ring rotational harvester [73, 74] whose output averages
10-40 µW in daily activities but spikes to 2000 µW at fine temporal
granularity (Figure 2). We model each harvester as a regime-switching
stochastic process: the source alternates between a *quiet* regime
(trickle power) and a *burst* regime (log-normally distributed spikes),
with occasional *dead* periods of zero income that produce the long
outage tail of Figure 3.

All harvesters share the same generator machinery and differ only in
their regime parameters, which is exactly how the paper treats the
different ambient sources (solar, RF, piezo/motion, thermal): the same
NVP platform behind front ends with different statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_non_negative, check_positive, check_probability

__all__ = [
    "HarvesterModel",
    "WristwatchRingHarvester",
    "SolarHarvester",
    "RFHarvester",
    "ThermalHarvester",
]

# Regime identifiers used internally by the generator.
_QUIET, _BURST, _DEAD = 0, 1, 2


@dataclass(frozen=True)
class HarvesterModel:
    """A regime-switching ambient power source.

    Parameters
    ----------
    quiet_power_uw:
        Mean trickle power while in the quiet regime (µW).
    burst_median_uw:
        Median spike power while bursting (µW); spike amplitudes are
        log-normal around this median.
    burst_sigma:
        Log-normal shape parameter for burst amplitudes.
    peak_power_uw:
        Hard clip applied to the output (the paper's traces saturate
        near 2000 µW).
    mean_burst_ticks / mean_quiet_ticks / mean_dead_ticks:
        Sojourn-time scales per regime, in 0.1 ms ticks. Burst and dead
        durations are geometric; quiet-gap durations are *log-normal*
        around ``mean_quiet_ticks`` (their median) so the gap
        distribution has the heavy tail that Figure 3 shows — the tail
        is what differentiates configurations that can and cannot
        bridge a gap on stored charge.
    quiet_sigma:
        Log-normal shape parameter of the quiet-gap durations.
    dead_probability:
        Probability that a completed burst is followed by a *dead*
        period instead of a quiet one. Dead periods model the long
        power-outage tail in Figure 3.
    jitter_sigma:
        Multiplicative log-normal jitter applied per-sample inside a
        regime, producing the fine-grained "glitches" the paper notes
        in Figure 9 (bottom right).
    """

    name: str = "generic"
    quiet_power_uw: float = 6.0
    burst_median_uw: float = 220.0
    burst_sigma: float = 0.9
    peak_power_uw: float = 2000.0
    mean_burst_ticks: float = 14.0
    mean_quiet_ticks: float = 25.0
    mean_dead_ticks: float = 1100.0
    quiet_sigma: float = 1.0
    dead_probability: float = 0.055
    jitter_sigma: float = 0.28

    def __post_init__(self) -> None:
        check_non_negative(self.quiet_power_uw, "quiet_power_uw")
        check_positive(self.burst_median_uw, "burst_median_uw")
        check_positive(self.burst_sigma, "burst_sigma")
        check_positive(self.peak_power_uw, "peak_power_uw")
        check_positive(self.mean_burst_ticks, "mean_burst_ticks")
        check_positive(self.mean_quiet_ticks, "mean_quiet_ticks")
        check_positive(self.mean_dead_ticks, "mean_dead_ticks")
        check_positive(self.quiet_sigma, "quiet_sigma")
        check_probability(self.dead_probability, "dead_probability")
        check_non_negative(self.jitter_sigma, "jitter_sigma")

    def generate(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n_samples`` power samples (µW) at 0.1 ms spacing.

        The process is simulated regime-by-regime rather than
        tick-by-tick, which keeps generation fast for the 100 000-sample
        traces used throughout the evaluation.
        """
        if n_samples <= 0:
            return np.zeros(0, dtype=np.float64)
        out = np.empty(n_samples, dtype=np.float64)
        pos = 0
        regime = _QUIET
        while pos < n_samples:
            if regime == _QUIET:
                # Heavy-tailed gap lengths: log-normal around the median.
                length = 1 + int(
                    self.mean_quiet_ticks * rng.lognormal(0.0, self.quiet_sigma)
                )
                length = min(length, n_samples - pos)
                base = self.quiet_power_uw
                samples = base * rng.lognormal(0.0, self.jitter_sigma, size=length)
                next_regime = _BURST
            elif regime == _BURST:
                length = 1 + rng.geometric(1.0 / self.mean_burst_ticks)
                length = min(length, n_samples - pos)
                amplitude = self.burst_median_uw * rng.lognormal(
                    0.0, self.burst_sigma
                )
                # A burst has an envelope: ramps up then decays, like the
                # mechanical pluck events of the rotational harvester.
                envelope = np.sin(np.linspace(0.15, np.pi - 0.15, length)) ** 0.5
                jitter = rng.lognormal(0.0, self.jitter_sigma, size=length)
                samples = amplitude * envelope * jitter
                next_regime = (
                    _DEAD if rng.random() < self.dead_probability else _QUIET
                )
            else:  # _DEAD
                length = 1 + rng.geometric(1.0 / self.mean_dead_ticks)
                length = min(length, n_samples - pos)
                samples = np.zeros(length)
                next_regime = _BURST
            out[pos : pos + length] = samples
            pos += length
            regime = next_regime
        np.clip(out, 0.0, self.peak_power_uw, out=out)
        return out


def WristwatchRingHarvester(**overrides: float) -> HarvesterModel:
    """Unbalanced-ring rotational harvester (the paper's running example).

    Defaults are calibrated so that a 10 s trace has mean power in the
    10-40 µW band with roughly 1000-2000 power emergencies at the 33 µW
    operating threshold (Section 2.2).
    """
    params = dict(
        name="wristwatch-ring",
        quiet_power_uw=6.0,
        burst_median_uw=210.0,
        burst_sigma=0.95,
        mean_burst_ticks=14.0,
        mean_quiet_ticks=25.0,
        mean_dead_ticks=1100.0,
        dead_probability=0.055,
        jitter_sigma=0.28,
    )
    params.update(overrides)
    return HarvesterModel(**params)


def SolarHarvester(**overrides: float) -> HarvesterModel:
    """Indoor ambient-light harvester: steadier, longer bursts."""
    params = dict(
        name="solar",
        quiet_power_uw=18.0,
        burst_median_uw=160.0,
        burst_sigma=0.5,
        mean_burst_ticks=220.0,
        mean_quiet_ticks=180.0,
        mean_dead_ticks=800.0,
        dead_probability=0.01,
        jitter_sigma=0.12,
    )
    params.update(overrides)
    return HarvesterModel(**params)


def RFHarvester(**overrides: float) -> HarvesterModel:
    """WiFi/TV RF harvester: very frequent, very short spikes."""
    params = dict(
        name="rf",
        quiet_power_uw=4.0,
        burst_median_uw=120.0,
        burst_sigma=0.7,
        mean_burst_ticks=4.0,
        mean_quiet_ticks=18.0,
        mean_dead_ticks=200.0,
        dead_probability=0.015,
        jitter_sigma=0.35,
    )
    params.update(overrides)
    return HarvesterModel(**params)


def ThermalHarvester(**overrides: float) -> HarvesterModel:
    """Body-heat thermoelectric harvester: low amplitude, slow drift."""
    params = dict(
        name="thermal",
        quiet_power_uw=22.0,
        burst_median_uw=60.0,
        burst_sigma=0.3,
        mean_burst_ticks=400.0,
        mean_quiet_ticks=250.0,
        mean_dead_ticks=1000.0,
        dead_probability=0.008,
        jitter_sigma=0.08,
    )
    params.update(overrides)
    return HarvesterModel(**params)
