"""Annotated programs: kernels plus pragmas, and the compiler's role.

Section 5 splits responsibilities: the *programmer* marks approximable
data (``incidental``), the roll-forward point
(``incidental_recover_from``), and any recompute/assemble intent; the
*compiler* turns those marks into hardware state — AC bits for the
marked variables, the recovery program counter, and the mask of key
loop variables used by the PC/register match.

:class:`AnnotatedProgram` performs that compiler role for a kernel:
it validates the pragma set, resolves the retention policy, assigns
the (behavioral) recovery PC, and synthesises the register mask.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import PragmaError
from ..kernels.base import Kernel
from ..nvm.retention import RetentionPolicy, policy_by_name
from .pragmas import (
    AssemblePragma,
    IncidentalPragma,
    RecomputePragma,
    RecoverFromPragma,
    parse_pragma,
)

__all__ = ["AnnotatedProgram"]

_Pragma = Union[IncidentalPragma, RecoverFromPragma, RecomputePragma, AssemblePragma]

#: Behavioral recovery PC: the instruction that begins a new frame
#: iteration (the paper's "instruction that begins the update of the
#: induction variable 'frame'").
FRAME_LOOP_PC: int = 0x0100

#: Registers the compiler marks as key loop variables (frame counter
#: and row index in the Figure 8 example).
KEY_LOOP_REGISTERS: Tuple[int, ...] = (0, 1)


class AnnotatedProgram:
    """A kernel with its ``#pragma ac`` annotations, compiled.

    Parameters
    ----------
    kernel:
        The workload the program's frame loop runs.
    pragmas:
        The annotation set. At most one ``incidental`` per variable and
        at most one ``incidental_recover_from`` are allowed; programs
        meant for the incidental executive need both at least once.
    n_regs:
        Register-file size used when synthesising the key-variable mask.
    """

    def __init__(
        self,
        kernel: Kernel,
        pragmas: Sequence[_Pragma],
        n_regs: int = 16,
        loop_carried: bool = False,
        frame_loop_bound: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.pragmas: List[_Pragma] = list(pragmas)
        self.n_regs = int(n_regs)
        #: Section 5: "Our current implementation does not support
        #: incidental SIMD optimizations for programs with loop-carried
        #: dependencies" — the compiler flags them and the hardware
        #: falls back to single-lane execution.
        self.loop_carried = bool(loop_carried)
        #: Iteration count of the frame loop, when the source declares
        #: one (Figure 8's ``frame < 3000``).
        self.frame_loop_bound = frame_loop_bound
        self._validate()

    #: Recognises the frame loop header of the Figure 8 listing and
    #: extracts its bound, e.g. ``for (unsigned int frame=0; frame < 3000; frame ++)``.
    _FRAME_LOOP_RE = re.compile(
        r"for\s*\(.*?(\w+)\s*=\s*0\s*;\s*\1\s*<\s*(\d+)\s*;", re.DOTALL
    )

    @classmethod
    def from_source(
        cls,
        kernel: Kernel,
        source_lines: Sequence[str],
        n_regs: int = 16,
        loop_carried: bool = False,
    ) -> "AnnotatedProgram":
        """Build a program from C-form source lines (Figure 8 style).

        Parses the ``#pragma ac`` annotations and, when present, the
        frame loop's iteration bound.
        """
        pragmas = [
            parse_pragma(line)
            for line in source_lines
            if line.strip().startswith("#pragma")
        ]
        bound = None
        match = cls._FRAME_LOOP_RE.search("\n".join(source_lines))
        if match:
            bound = int(match.group(2))
        return cls(
            kernel,
            pragmas,
            n_regs=n_regs,
            loop_carried=loop_carried,
            frame_loop_bound=bound,
        )

    def _validate(self) -> None:
        seen_vars = set()
        recover_count = 0
        for pragma in self.pragmas:
            if isinstance(pragma, IncidentalPragma):
                if pragma.src in seen_vars:
                    raise PragmaError(
                        f"variable {pragma.src!r} has more than one incidental pragma"
                    )
                seen_vars.add(pragma.src)
            elif isinstance(pragma, RecoverFromPragma):
                recover_count += 1
        if recover_count > 1:
            raise PragmaError("at most one incidental_recover_from is allowed")

    # -- pragma accessors ---------------------------------------------------

    @property
    def incidental(self) -> Optional[IncidentalPragma]:
        """The first ``incidental`` pragma (the frame-buffer variable)."""
        for pragma in self.pragmas:
            if isinstance(pragma, IncidentalPragma):
                return pragma
        return None

    @property
    def recover_from(self) -> Optional[RecoverFromPragma]:
        """The ``incidental_recover_from`` pragma, if present."""
        for pragma in self.pragmas:
            if isinstance(pragma, RecoverFromPragma):
                return pragma
        return None

    @property
    def recompute_pragmas(self) -> List[RecomputePragma]:
        """All ``recompute`` pragmas."""
        return [p for p in self.pragmas if isinstance(p, RecomputePragma)]

    @property
    def assemble_pragmas(self) -> List[AssemblePragma]:
        """All ``assemble`` pragmas."""
        return [p for p in self.pragmas if isinstance(p, AssemblePragma)]

    @property
    def supports_incidental_execution(self) -> bool:
        """Whether the executive can run this program incidentally.

        Needs both the approximable data mark and a roll-forward point
        (Section 6's example carries exactly those two).
        """
        return self.incidental is not None and self.recover_from is not None

    # -- compiled artefacts ----------------------------------------------------

    @property
    def minbits(self) -> int:
        """Lower bit bound of the incidental data (8 when unmarked)."""
        pragma = self.incidental
        return pragma.minbits if pragma is not None else 8

    @property
    def maxbits(self) -> int:
        """Upper bit bound of the incidental data (8 when unmarked)."""
        pragma = self.incidental
        return pragma.maxbits if pragma is not None else 8

    def retention_policy(self, time_scale: float = 1.0) -> Optional[RetentionPolicy]:
        """The backup retention policy the pragma selected.

        ``time_scale`` matches the shaping curve to the platform's
        backup cadence (see
        :class:`repro.nvm.retention.RetentionPolicy`).
        """
        pragma = self.incidental
        if pragma is None:
            return None
        return policy_by_name(pragma.policy, time_scale=time_scale)

    @property
    def recovery_pc(self) -> int:
        """The compiled roll-forward restart PC."""
        if self.recover_from is None:
            raise PragmaError("program has no incidental_recover_from pragma")
        return FRAME_LOOP_PC

    def key_register_mask(self) -> np.ndarray:
        """Compiler-generated mask of key loop variables (Section 4).

        Combined with the register file's comparison bit-vector to
        confirm a resume-point match before widening SIMD.
        """
        mask = np.zeros(self.n_regs, dtype=bool)
        for reg in KEY_LOOP_REGISTERS:
            if reg < self.n_regs:
                mask[reg] = True
        return mask

    def source_form(self) -> List[str]:
        """The pragma block as C source lines."""
        return [pragma.source_form() for pragma in self.pragmas]

    def __repr__(self) -> str:
        return (
            f"AnnotatedProgram(kernel={self.kernel.name!r}, "
            f"pragmas={len(self.pragmas)})"
        )
