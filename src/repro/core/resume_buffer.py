"""The nonvolatile resume-point buffer (Section 4).

"An additional circular nonvolatile buffer within the controller
records the PC of the last N (four, in our implementation)
resume-points from which the SIMD operation can begin. ... The oldest
value is overwritten (discarded in FIFO order)."

Each entry records where an abandoned (incidental) computation stopped:
the resume PC, the frame it belonged to, and how far through the frame
it had progressed. When the running program's PC matches an entry (and
the masked key loop variables agree — see :mod:`repro.core.simd`), the
controller may widen SIMD and adopt the old computation as a lane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from .._validation import check_int_in_range
from ..errors import ReproError

__all__ = ["ResumePoint", "ResumePointBuffer"]


@dataclass(frozen=True)
class ResumePoint:
    """One suspended computation recorded in the nonvolatile buffer."""

    pc: int
    frame_id: int
    elements_done: int
    register_version: int

    def __post_init__(self) -> None:
        check_int_in_range(self.pc, "pc", 0, (1 << 16) - 1, exc=ReproError)
        check_int_in_range(self.frame_id, "frame_id", 0, exc=ReproError)
        check_int_in_range(self.elements_done, "elements_done", 0, exc=ReproError)
        check_int_in_range(self.register_version, "register_version", 0, 3, exc=ReproError)


class ResumePointBuffer:
    """A FIFO of at most ``capacity`` (4) resume points.

    The hardware is a 2 byte x 4 buffer of nonvolatile flip-flops: tiny
    and persistent across outages, so no push or eviction is ever lost
    to a power failure.
    """

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = check_int_in_range(capacity, "capacity", 1, 4, exc=ReproError)
        self._entries: List[ResumePoint] = []
        self.evicted_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether a push would evict the oldest entry."""
        return len(self._entries) >= self.capacity

    def push(self, point: ResumePoint) -> Optional[ResumePoint]:
        """Record a resume point; returns the evicted entry, if any.

        Eviction is FIFO: the *oldest* abandoned computation is dropped
        — its data's importance has decayed the furthest (Section 3.1).
        """
        if not isinstance(point, ResumePoint):
            raise ReproError("push expects a ResumePoint")
        evicted = None
        if self.is_full:
            evicted = self._entries.pop(0)
            self.evicted_count += 1
        self._entries.append(point)
        return evicted

    def match_pc(self, pc: int) -> Optional[ResumePoint]:
        """Oldest entry whose resume PC equals ``pc`` (or ``None``)."""
        pc = check_int_in_range(pc, "pc", 0, (1 << 16) - 1, exc=ReproError)
        for entry in self._entries:
            if entry.pc == pc:
                return entry
        return None

    def entries_for_frame(self, frame_id: int) -> List[ResumePoint]:
        """All entries belonging to one frame (usually 0 or 1)."""
        return [e for e in self._entries if e.frame_id == frame_id]

    def remove(self, entry: ResumePoint) -> None:
        """Clear an entry whose computation was adopted as a SIMD lane.

        "SIMD width is increased and the buffer storing the SIMDed
        resume-point PC is cleared."
        """
        try:
            self._entries.remove(entry)
        except ValueError:
            raise ReproError("resume point is not in the buffer") from None

    def update(self, entry: ResumePoint, **changes) -> ResumePoint:
        """Replace an entry in place (e.g. progress advanced)."""
        index = self._entries.index(entry) if entry in self._entries else -1
        if index < 0:
            raise ReproError("resume point is not in the buffer")
        new_entry = replace(entry, **changes)
        self._entries[index] = new_entry
        return new_entry

    def oldest(self) -> Optional[ResumePoint]:
        """The entry next in line for FIFO eviction."""
        return self._entries[0] if self._entries else None

    def clear(self) -> None:
        """Drop every entry (program restart)."""
        self._entries.clear()

    def state_bits(self) -> int:
        """Nonvolatile storage footprint: 2 bytes x capacity of PC."""
        return 16 * self.capacity
