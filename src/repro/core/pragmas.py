"""The four ``#pragma ac`` annotations (Table 1, Section 5).

=====================================  =========================================
Pragma                                 Meaning
=====================================  =========================================
``incidental(src, minbits, maxbits,    variable ``src`` may be computed with a
policy)``                              dynamic bit budget in [minbits, maxbits]
                                       and backed up under retention ``policy``
``incidental_recover_from(variable)``  fixed roll-forward restart point (an
                                       induction variable of the frame loop)
``recompute(buf, minbits)``            force a recomputation pass over ``buf``
                                       with at least ``minbits`` precision
``assemble(buf, mode)``                merge the new ``buf`` contents with the
                                       previous (sum / max / min / higherbits)
=====================================  =========================================

Pragmas can be built programmatically or parsed from their C source
form (``#pragma ac incidental (src,2,8,linear);``) — the latter keeps
example programs readable next to the paper's Figure 8.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .._validation import check_int_in_range
from ..errors import PragmaError
from ..nvm.memory import MERGE_MODES
from ..nvm.retention import STANDARD_POLICY_NAMES

__all__ = [
    "IncidentalPragma",
    "RecoverFromPragma",
    "RecomputePragma",
    "AssemblePragma",
    "parse_pragma",
]

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"


@dataclass(frozen=True)
class IncidentalPragma:
    """``incidental(src, minbits, maxbits, policy)``."""

    src: str
    minbits: int
    maxbits: int
    policy: str

    def __post_init__(self) -> None:
        if not re.fullmatch(_IDENT, self.src):
            raise PragmaError(f"invalid variable name {self.src!r}")
        check_int_in_range(self.minbits, "minbits", 1, 8, exc=PragmaError)
        check_int_in_range(self.maxbits, "maxbits", 1, 8, exc=PragmaError)
        if self.minbits > self.maxbits:
            raise PragmaError(
                f"minbits ({self.minbits}) must not exceed maxbits ({self.maxbits})"
            )
        if self.policy not in STANDARD_POLICY_NAMES:
            raise PragmaError(
                f"unknown retention policy {self.policy!r}; "
                f"expected one of {STANDARD_POLICY_NAMES}"
            )

    def source_form(self) -> str:
        """The C-pragma text of this annotation."""
        return (
            f"#pragma ac incidental ({self.src},{self.minbits},"
            f"{self.maxbits},{self.policy});"
        )


@dataclass(frozen=True)
class RecoverFromPragma:
    """``incidental_recover_from(variable)``."""

    variable: str

    def __post_init__(self) -> None:
        if not re.fullmatch(_IDENT, self.variable):
            raise PragmaError(f"invalid variable name {self.variable!r}")

    def source_form(self) -> str:
        """The C-pragma text of this annotation."""
        return f"#pragma ac incidental_recover_from({self.variable});"


@dataclass(frozen=True)
class RecomputePragma:
    """``recompute(buf, minbits)``."""

    buf: str
    minbits: int

    def __post_init__(self) -> None:
        if not re.fullmatch(_IDENT, self.buf):
            raise PragmaError(f"invalid buffer name {self.buf!r}")
        check_int_in_range(self.minbits, "minbits", 1, 8, exc=PragmaError)

    def source_form(self) -> str:
        """The C-pragma text of this annotation."""
        return f"#pragma ac recompute({self.buf},{self.minbits});"


@dataclass(frozen=True)
class AssemblePragma:
    """``assemble(buf, assemble_mode)``."""

    buf: str
    mode: str

    def __post_init__(self) -> None:
        if not re.fullmatch(_IDENT, self.buf):
            raise PragmaError(f"invalid buffer name {self.buf!r}")
        if self.mode not in MERGE_MODES:
            raise PragmaError(
                f"unknown assemble mode {self.mode!r}; expected one of {MERGE_MODES}"
            )

    def source_form(self) -> str:
        """The C-pragma text of this annotation."""
        return f"#pragma ac assemble({self.buf},{self.mode});"


_PRAGMA_RE = re.compile(
    r"^\s*#pragma\s+ac\s+(?P<name>incidental_recover_from|incidental|recompute|assemble)"
    r"\s*\(\s*(?P<args>[^)]*)\s*\)\s*;?\s*$"
)


def parse_pragma(text: str):
    """Parse one C-form pragma line into its dataclass.

    >>> parse_pragma("#pragma ac incidental (src,2,8,linear);")
    IncidentalPragma(src='src', minbits=2, maxbits=8, policy='linear')
    """
    match = _PRAGMA_RE.match(text)
    if match is None:
        raise PragmaError(f"not a valid '#pragma ac' line: {text!r}")
    name = match.group("name")
    args = [a.strip() for a in match.group("args").split(",") if a.strip()]

    def _int(value: str, what: str) -> int:
        try:
            return int(value)
        except ValueError:
            raise PragmaError(f"{what} must be an integer, got {value!r}") from None

    if name == "incidental":
        if len(args) != 4:
            raise PragmaError(f"incidental takes 4 arguments, got {len(args)}")
        return IncidentalPragma(
            src=args[0],
            minbits=_int(args[1], "minbits"),
            maxbits=_int(args[2], "maxbits"),
            policy=args[3],
        )
    if name == "incidental_recover_from":
        if len(args) != 1:
            raise PragmaError("incidental_recover_from takes 1 argument")
        return RecoverFromPragma(variable=args[0])
    if name == "recompute":
        if len(args) != 2:
            raise PragmaError("recompute takes 2 arguments")
        return RecomputePragma(buf=args[0], minbits=_int(args[1], "minbits"))
    # assemble
    if len(args) != 2:
        raise PragmaError("assemble takes 2 arguments")
    return AssemblePragma(buf=args[0], mode=args[1])
