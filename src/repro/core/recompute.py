"""Recompute-and-Combine (RAC, Sections 3.1 and 8.5).

When a low-quality incidental output turns out to be "interesting",
the program issues ``recompute(buf, minbits)`` passes: each pass
re-runs the frame with whatever dynamic precision the power profile
affords, and ``assemble(buf, higherbits)`` keeps, per element, the
value computed with the most reliable bits so far. "After multiple
recomputations and merges, we expect much better quality outputs" —
with "little value in recomputation beyond four to five passes"
(Figure 27).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..energy.traces import PowerTrace
from ..errors import ConfigurationError
from ..kernels.base import ApproxContext, Kernel
from ..quality.metrics import mse as compute_mse
from ..quality.metrics import psnr as compute_psnr
from ..system.config import SystemConfig
from ..system.simulator import NVPSystemSimulator
from ..nvp.processor import NonvolatileProcessor
from .controller import ApproximationControlUnit, DynamicBitAllocator
from .merge import assemble_arrays
from .precision import PrecisionMap

__all__ = ["RecomputeOutcome", "RecomputeAndCombine", "schedule_from_trace"]


def schedule_from_trace(
    trace: PowerTrace,
    minbits: int,
    maxbits: int = 8,
    config: Optional[SystemConfig] = None,
    control: Optional["ApproximationControlUnit"] = None,
) -> np.ndarray:
    """Dynamic bit budgets of every powered tick under ``trace``.

    Runs the dynamic-bitwidth allocator over the trace and returns the
    bit series of active ticks — the raw material recomputation passes
    consume element by element. Recomputation runs *incidentally*, so
    its default budget is the lean incidental controller (income plus a
    slow surplus drawdown), which makes high-precision elements rare in
    any one pass — the iterative-improvement regime of Figure 27.
    """
    config = config if config is not None else SystemConfig()
    if control is None:
        control = ApproximationControlUnit(comfort_fill=0.3, drawdown_horizon_ticks=30)
    allocator = DynamicBitAllocator(
        minbits, maxbits, control=control, capacity_uj=config.capacitor_uj
    )
    processor = NonvolatileProcessor()
    sim = NVPSystemSimulator(trace, processor, allocator, config=config).run()
    series = sim.active_bit_series()
    if series.size == 0:
        raise ConfigurationError(
            "the trace never powers the NVP; cannot derive a schedule"
        )
    return np.clip(series, minbits, maxbits)


@dataclass(frozen=True)
class RecomputeOutcome:
    """Quality trajectory of a recompute-and-combine session."""

    psnr_per_pass: Tuple[float, ...]
    mse_per_pass: Tuple[float, ...]
    final_output: np.ndarray
    final_precision: PrecisionMap

    @property
    def passes(self) -> int:
        """Number of passes performed."""
        return len(self.psnr_per_pass)

    def improvement_db(self) -> float:
        """PSNR gained between the first and last pass."""
        if not self.psnr_per_pass:
            return 0.0
        return self.psnr_per_pass[-1] - self.psnr_per_pass[0]


class RecomputeAndCombine:
    """Iterative dynamic-precision recomputation with higherbits merge.

    Parameters
    ----------
    kernel:
        The workload whose output is being refined.
    minbits:
        The ``recompute(buf, minbits)`` floor forced on every pass.
    maxbits:
        The pragma's upper bound.
    seed:
        Base seed; each pass perturbs it so the datapath noise (and
        hence which elements happen to land high precision) varies
        pass to pass — the "random variation in the input power
        profile" the paper's method capitalises on.
    """

    def __init__(
        self,
        kernel: Kernel,
        minbits: int,
        maxbits: int = 8,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self.minbits = check_int_in_range(minbits, "minbits", 1, 8)
        self.maxbits = check_int_in_range(maxbits, "maxbits", self.minbits, 8)
        self.seed = int(seed)

    def run(
        self,
        image: np.ndarray,
        passes: int,
        schedule: Sequence[int],
    ) -> RecomputeOutcome:
        """Perform ``passes`` recompute/assemble rounds over ``image``.

        ``schedule`` is the powered-tick bit series (e.g. from
        :func:`schedule_from_trace`); successive passes consume
        successive windows of it, wrapping when exhausted.
        """
        passes = check_int_in_range(passes, "passes", 1, 64)
        schedule = np.asarray(schedule, dtype=np.int64)
        if schedule.ndim != 1 or schedule.size == 0:
            raise ConfigurationError("schedule must be a non-empty 1-D bit series")
        schedule = np.clip(schedule, self.minbits, self.maxbits)

        image = np.asarray(image)
        reference = self.kernel.run_exact(image)
        n = int(np.prod(reference.shape))

        merged: Optional[np.ndarray] = None
        merged_precision = PrecisionMap(reference.shape)
        psnrs: List[float] = []
        mses: List[float] = []
        for pass_index in range(passes):
            offset = (pass_index * n) % schedule.size
            window = np.take(
                schedule, np.arange(offset, offset + n), mode="wrap"
            )
            ctx = ApproxContext(
                alu_bits=window, mem_bits=8, seed=self.seed + 1013 * pass_index
            )
            output = self.kernel.run(image, ctx)
            bits_map = PrecisionMap.from_array(
                ctx.alu_bits_for(output.shape)
                if isinstance(ctx.alu_bits, np.ndarray)
                else np.full(output.shape, ctx.alu_bits, dtype=np.int64)
            )
            if merged is None:
                merged, merged_precision = output, bits_map
            else:
                merged, merged_precision = assemble_arrays(
                    merged, merged_precision, output, bits_map, mode="higherbits"
                )
            psnrs.append(compute_psnr(reference, merged))
            mses.append(compute_mse(reference, merged))
        return RecomputeOutcome(
            psnr_per_pass=tuple(psnrs),
            mse_per_pass=tuple(mses),
            final_output=merged,
            final_precision=merged_precision,
        )
