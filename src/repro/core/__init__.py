"""Incidental computing — the paper's primary contribution.

This subpackage implements, on top of the substrates, everything
Sections 3-6 describe: the four ``#pragma ac`` annotations and their
"compiler" (:mod:`repro.core.program`), the nonvolatile resume-point
buffer and PC/register SIMD matching (:mod:`repro.core.resume_buffer`,
:mod:`repro.core.simd`), the approximation control unit that turns
income power into per-lane bit budgets (:mod:`repro.core.controller`),
per-element precision metadata and the ``assemble`` merge engines
(:mod:`repro.core.precision`, :mod:`repro.core.merge`),
recompute-and-combine (:mod:`repro.core.recompute`), and the
:class:`~repro.core.executive.IncidentalExecutive` that runs an
annotated program over a power trace with roll-forward recovery and
incidental SIMD lanes.
"""

from .pragmas import (
    IncidentalPragma,
    RecoverFromPragma,
    RecomputePragma,
    AssemblePragma,
    parse_pragma,
)
from .program import AnnotatedProgram
from .resume_buffer import ResumePoint, ResumePointBuffer
from .precision import PrecisionMap
from .merge import assemble_arrays
from .controller import (
    ApproximationControlUnit,
    DynamicBitAllocator,
    IncidentalAllocator,
)
from .simd import SimdMatcher
from .recompute import RecomputeAndCombine, RecomputeOutcome
from .executive import IncidentalExecutive, ExecutiveResult, FrameRecord
from .advisor import PolicyAdvisor, TraceFeatures

__all__ = [
    "IncidentalPragma",
    "RecoverFromPragma",
    "RecomputePragma",
    "AssemblePragma",
    "parse_pragma",
    "AnnotatedProgram",
    "ResumePoint",
    "ResumePointBuffer",
    "PrecisionMap",
    "assemble_arrays",
    "ApproximationControlUnit",
    "DynamicBitAllocator",
    "IncidentalAllocator",
    "SimdMatcher",
    "RecomputeAndCombine",
    "RecomputeOutcome",
    "IncidentalExecutive",
    "ExecutiveResult",
    "FrameRecord",
    "PolicyAdvisor",
    "TraceFeatures",
]
