"""Trace-parallel batched replay of incidental-executive simulations.

The executive analog of :mod:`repro.system.batchsim`: a grid of
:class:`~repro.core.executive.IncidentalExecutive` runs shares one
ragged :class:`~repro.system.batchsim.BatchTracePlan` (padded trace
slots + valid-length masks) and each lane replays through a compiled
kernel (:mod:`repro._accel`) that ports the
:func:`~repro.core.fastexec.fast_executive_run` loop *and* the
executive's frame bookkeeping (arrivals, current-frame selection, the
resume-point buffer, incidental lane adoption, exposures) into C.

Lane-cost memoisation becomes a table: every lane tuple (widths 1-4,
bits 1-8 per lane; 4680 entries, width-major layout) gets its raw
``run_power_uw`` and pipeline state fraction precomputed once per
process, and per-task scalars (mix weight, blended retention scale,
backup margin, tick length) are folded in vectorised — in the
reference's operation order, so every rounding is preserved.

The contract is the same as everywhere in this repo: **bit-exact** or
**refused**. A refused lane (device resilience, priced guard bits, a
non-default energy model, more frame arrivals than
:data:`MAX_BATCH_FRAMES`, a setup error, or any nonzero kernel status)
is handed back for the per-task path to run — never silently
approximated. ``tests/test_batch_equivalence.py`` arbitrates against
both :mod:`repro.core.fastexec` and the reference
:meth:`IncidentalExecutive.run` loop.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from .. import _accel
from ..energy.management import derive_thresholds
from ..energy.traces import TICK_S
from ..errors import SimulationError
from ..nvp.energy_model import CYCLES_PER_TICK, EnergyModel
from ..nvp.pipeline import PipelineModel
from ..system.batchsim import BatchTracePlan, LaneOutcome, build_trace_plan
from ..system.metrics import SimulationResult

__all__ = [
    "MAX_BATCH_FRAMES",
    "executive_refusal",
    "run_executive_batch",
    "lane_tuple_index",
]

#: Hard bound on frame arrivals the batch kernel will track per lane;
#: a lane whose trace/period implies more is refused to the per-task
#: tier (keeps the C-side bookkeeping arrays small and bounded).
MAX_BATCH_FRAMES = 1024

#: Width-major offsets of the lane-tuple table (widths 1-4, bits 1-8).
_TUP_OFF = (0, 8, 72, 584)
_TUP_SIZE = 8 + 64 + 512 + 4096  # 4680

_POWER_RAW: Optional[np.ndarray] = None
_FRACTION: Optional[np.ndarray] = None


def lane_tuple_index(lanes: Sequence[int]) -> int:
    """Table index of a lane tuple (widths 1-4, bits 1-8 per lane)."""
    width = len(lanes)
    idx = _TUP_OFF[width - 1]
    mul = 1
    for bits in lanes:
        idx += (bits - 1) * mul
        mul *= 8
    return idx


def _tuple_tables() -> tuple:
    """Global raw lane-cost tables for the default energy model.

    ``_POWER_RAW[i]`` is ``EnergyModel().run_power_uw(tuple_i)`` and
    ``_FRACTION[i]`` the pipeline state fraction of ``tuple_i`` — the
    exact doubles the reference memoises per run. Computed lazily once
    per process (~4700 model calls).
    """
    global _POWER_RAW, _FRACTION
    if _POWER_RAW is None:
        model = EnergyModel()
        pipeline = PipelineModel(word_bits=model.word_bits)
        power = np.zeros(_TUP_SIZE, dtype=np.float64)
        fraction = np.zeros(_TUP_SIZE, dtype=np.float64)
        for width in range(1, 5):
            offset = _TUP_OFF[width - 1]
            for i in range(8 ** width):
                lanes = tuple((i // (8 ** j)) % 8 + 1 for j in range(width))
                power[offset + i] = model.run_power_uw(lanes)
                fraction[offset + i] = pipeline.state_fraction(lanes)
        _POWER_RAW = power
        _FRACTION = fraction
    return _POWER_RAW, _FRACTION


def executive_refusal(executive) -> Optional[str]:
    """Why the batch kernel cannot replay this executive (or ``None``).

    Mirrors the fast path's own guard (device resilience) and adds the
    batch tier's table preconditions. Refusal means "run per task",
    not "error": the per-task tiers handle every refused lane with the
    reference semantics.
    """
    proc = executive.processor
    if proc.resilience is not None:
        return "device resilience configured"
    if executive.tracer.enabled:
        return "tracer active"
    if proc.backup_engine.guard_bits:
        return "priced guard bits configured"
    if proc.energy_model != EnergyModel():
        return "non-default energy model"
    n = len(executive.trace.samples_uw)
    max_frames = (n - 1) // executive.frame_period_ticks + 1 if n else 1
    if max_frames > MAX_BATCH_FRAMES:
        return (
            f"frame bound {max_frames} exceeds batch limit {MAX_BATCH_FRAMES}"
        )
    return None


def run_executive_batch(
    executives: Sequence,
    plan: Optional[BatchTracePlan] = None,
) -> List[LaneOutcome]:
    """Replay freshly constructed executives through the batch kernel.

    Returns one :class:`LaneOutcome` per executive, in order; refused
    lanes carry a reason and no result. Like the fast path, a replayed
    executive is consumed conceptually — pass fresh instances and do
    not reuse them afterwards.
    """
    from .executive import ExecutiveResult, FrameRecord

    if not _accel.available():
        return [LaneOutcome(refused="accelerator unavailable") for _ in executives]
    if plan is None:
        plan = build_trace_plan([(ex.trace, ex.config) for ex in executives])
    power_raw, state_fraction = _tuple_tables()

    outcomes: List[LaneOutcome] = []
    scratch_backups: Optional[np.ndarray] = None
    scratch_exposures: Optional[np.ndarray] = None
    # Folded lane-cost tables are pure functions of three per-task
    # scalars; fleet grids repeat a few device archetypes over many
    # traces, so memoise the 4x4680-entry products within this run.
    table_memo: dict = {}
    for lane, ex in enumerate(executives):
        start = time.perf_counter()
        reason = executive_refusal(ex)
        if reason is not None:
            outcomes.append(
                LaneOutcome(refused=reason, wall_s=time.perf_counter() - start)
            )
            continue
        slot = int(plan.slot_of[lane])
        n = int(plan.lengths[slot])
        cfg = ex.config
        proc = ex.processor

        try:
            mix_weight = proc.mix.mean_energy_weight
            start_lanes = ex.start_lane_bits()
            thresholds = derive_thresholds(
                backup_energy_uj=proc.backup_energy_uj(start_lanes),
                restore_energy_uj=proc.restore_energy_uj(start_lanes),
                run_power_uw=proc.run_power_uw(start_lanes) * mix_weight,
                min_run_ticks=cfg.min_run_ticks,
                backup_margin=cfg.backup_margin,
            )
            start_level = max(
                thresholds.start_energy_uj,
                cfg.start_fill_fraction * cfg.capacitor_uj,
            )
            if start_level > cfg.capacitor_uj:
                raise SimulationError(
                    f"start level {start_level:.2f} uJ exceeds capacitor "
                    f"capacity {cfg.capacitor_uj:.2f} uJ; this configuration "
                    "can never start"
                )
        except SimulationError as exc:
            outcomes.append(
                LaneOutcome(
                    refused=f"setup raised: {exc}",
                    wall_s=time.perf_counter() - start,
                )
            )
            continue

        dt = TICK_S
        control = ex.control
        margin_f = 1.0 + cfg.backup_margin
        # Per-task lane-cost tables, folded from the global raw tables
        # in the reference's operation order: the backup energy is
        # (base * blended_scale) * fraction, so the scalar product is
        # taken first and broadcast over the fraction table.
        backup_scale = (
            proc.energy_model.backup_base_uj
            * proc.backup_engine._blended_policy_scale()
        )
        table_key = (mix_weight, backup_scale, margin_f)
        tables = table_memo.get(table_key)
        if tables is None:
            power_mw = power_raw * mix_weight
            tick_e = power_mw * dt
            backup_raw = backup_scale * state_fraction
            reserve_tab = backup_raw * margin_f
            table_memo[table_key] = (power_mw, tick_e, backup_raw, reserve_tab)
        else:
            power_mw, tick_e, backup_raw, reserve_tab = tables

        period = ex.frame_period_ticks
        max_frames = (n - 1) // period + 1 if n else 1
        ne = ex.n_elements

        dp = np.array(
            [
                dt,
                float(cfg.capacitor_uj),
                float(cfg.capacitor_leak_per_s),
                float(cfg.capacitor_leak_floor_uw) * dt,
                float(cfg.off_leakage_uw) * dt,
                start_level,
                proc.restore_energy_uj(start_lanes),
                control.comfort_fill * ex.capacity_uj,
                control.reserve_fill * ex.capacity_uj,
                control.drawdown_horizon_ticks * 1.0e-4,
                CYCLES_PER_TICK / proc.mix.mean_cycles,
            ],
            dtype=np.float64,
        )
        exp_cap = 4 * max(n, 1)
        ip = np.array(
            [
                n,
                int(plan.nonsticky_len[slot]),
                1 if plan.has_direct[slot] else 0,
                ex.current_minbits,
                ex.current_maxbits,
                ex.lane_minbits,
                ex.lane_maxbits,
                ex.max_width - 1,
                1 if ex.enable_simd else 0,
                1 if control.ac_enabled else 0,
                period,
                ne,
                ex.instr_per_element,
                1 if ex.recover_placement == "frame" else 0,
                1 if ex.enable_rollforward else 0,
                ex.buffer.capacity,
                max_frames,
                n,  # backup_ticks capacity
                exp_cap,
            ],
            dtype=np.int64,
        )

        if scratch_backups is None or scratch_backups.shape[0] < n:
            scratch_backups = np.zeros(max(n, 1), dtype=np.int64)
        if scratch_exposures is None or scratch_exposures.shape[0] < exp_cap:
            scratch_exposures = np.zeros((exp_cap, 3), dtype=np.int64)
        bit_schedule = np.zeros(n, dtype=np.int16)
        lane_schedule = np.zeros(n, dtype=np.int16)
        element_bits = np.zeros((max_frames, ne), dtype=np.int8)
        frame_completed = np.full(max_frames, -1, dtype=np.int64)
        frame_incid = np.zeros(max_frames, dtype=np.uint8)
        frame_abandoned = np.zeros(max_frames, dtype=np.uint8)
        unstarted = np.zeros(max_frames, dtype=np.int64)
        iout = np.zeros(10, dtype=np.int64)
        dout = np.zeros(3, dtype=np.float64)

        status = _accel.exec_replay(
            plan.conv[slot],
            plan.direct[slot] if plan.direct is not None else None,
            plan.sticky[slot],
            plan.nonsticky[slot],
            power_mw,
            tick_e,
            backup_raw,
            reserve_tab,
            dp,
            ip,
            bit_schedule,
            lane_schedule,
            scratch_backups,
            element_bits,
            frame_completed,
            frame_incid,
            frame_abandoned,
            scratch_exposures,
            unstarted,
            iout,
            dout,
        )
        if status != 0:
            outcomes.append(
                LaneOutcome(
                    refused=f"kernel status {status}",
                    wall_s=time.perf_counter() - start,
                )
            )
            continue

        arrived = int(iout[6])
        records = []
        for fid in range(arrived):
            completed = int(frame_completed[fid])
            records.append(
                FrameRecord(
                    frame_id=fid,
                    arrival_tick=fid * period,
                    element_bits=element_bits[fid].copy(),
                    completed_tick=completed if completed >= 0 else None,
                    completed_incidentally=bool(frame_incid[fid]),
                    abandoned=bool(frame_abandoned[fid]),
                )
            )
        for k in range(int(iout[9])):
            fid = int(scratch_exposures[k, 0])
            records[fid].exposures.append(
                (int(scratch_exposures[k, 1]), int(scratch_exposures[k, 2]))
            )

        n_backups = int(iout[7])
        converted_view = plan.converted_row(slot)
        sim = SimulationResult(
            total_ticks=n,
            forward_progress=int(iout[0]),
            incidental_progress=int(iout[1] + iout[2] + iout[3]),
            backup_count=n_backups,
            restore_count=int(iout[8]),
            on_ticks=int(iout[4]),
            income_energy_uj=ex.trace.total_energy_uj,
            converted_energy_uj=float(converted_view.sum() * TICK_S),
            run_energy_uj=float(dout[0]),
            backup_energy_uj=float(dout[1]),
            restore_energy_uj=float(dout[2]),
            bit_schedule=bit_schedule,
            lane_schedule=lane_schedule,
            backup_ticks=tuple(int(b) for b in scratch_backups[:n_backups]),
        )
        outcomes.append(
            LaneOutcome(
                result=ExecutiveResult(
                    sim=sim,
                    frames=tuple(records),
                    idle_instructions=int(iout[5]),
                ),
                wall_s=time.perf_counter() - start,
            )
        )
    return outcomes
