"""Bit-exact fast path for incidental-executive simulations.

Running an :class:`~repro.core.executive.IncidentalExecutive` through
:class:`~repro.system.simulator.NVPSystemSimulator` costs ~100 000
validated Python calls per 10 s trace: every tick re-derives lane
budgets through :class:`~repro.core.controller.ApproximationControlUnit`
(each candidate bit count re-summing the energy model), and every
capacitor step goes through checked method calls. This module replays
the *same* trajectory at a fraction of the cost, and it is required to
be **bit-exact**: the returned :class:`ExecutiveResult` is identical
field for field — the :class:`SimulationResult`, every
:class:`FrameRecord` element-bit schedule, every exposure tuple, the
backup/restore counts and the idle-instruction total — to what the
reference loop produces. ``tests/test_executive_equivalence.py``
enforces that contract differentially.

How the speed is won without changing a single rounding:

* **Memoized lane costs.** ``EnergyModel`` is frozen and
  ``BackupEngine``'s per-configuration costs are pure functions of the
  lane tuple, so ``run_power_uw(lanes)`` and ``backup_energy_uj(lanes)``
  are cached per distinct lane configuration (there are only a handful
  per run). The cached *raw* values are multiplied by the mix weight /
  backup margin at each use, in the reference's operation order, so
  IEEE-754 rounding is untouched.

* **Inlined allocator arithmetic.** The power-budget, current-bits and
  per-lane share computations of ``IncidentalAllocator.allocate`` /
  ``ApproximationControlUnit`` are replayed inline with hoisted
  constants (comfort/reserve levels, drawdown horizon), using the exact
  expressions of the originals.

* **Exact outage skipping.** As in :mod:`repro.system.fastsim`, whole
  OFF segments where the capacitor is provably pinned at exactly
  ``0.0`` are fast-forwarded with a vectorized predicate; the executive
  receives no callbacks during OFF in the reference either, so skipping
  cannot change its state.

* **Real callbacks at observable points.** Frame bookkeeping
  (``notify_executed`` / ``notify_backup`` / ``notify_restore``,
  arrival advancement and current-frame selection) and the processor's
  backup/restore ledger calls are shared with the reference — they are
  exactly where the executive's observable state changes, so sharing
  them keeps every record identical by construction.

Observability follows the fastsim discipline: spans are emitted only at
the rare restore/backup transitions behind one hoisted bool, the only
per-tick tracer cost is a single short-circuited bool test for
lane-transition instants, and four ``tracer.phase`` hooks bracket the
setup / precompute / replay / finalize sections. Tracing never writes
simulated state, so traced runs stay bit-identical
(``tests/test_obs_differential.py``).

If you change the reference simulator, the capacitor model, the
controller or the executive, change this file in lockstep and let the
differential suite arbitrate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..energy.frontend import DualChannelFrontend
from ..energy.management import derive_thresholds
from ..energy.traces import TICK_S
from ..errors import SimulationError
from ..nvp.energy_model import CYCLES_PER_TICK
from ..obs.metrics import OUTAGE_TICKS_BUCKETS
from ..system.metrics import SimulationResult
from ..system.simulator import _fold_run_metrics

__all__ = ["fast_executive_run"]


def fast_executive_run(executive) -> "ExecutiveResult":  # noqa: F821
    """Run a fresh :class:`IncidentalExecutive`, bit-exact vs ``run()``.

    Equivalent to ``executive.run()`` (the reference per-tick loop) —
    same :class:`ExecutiveResult`, same error behaviour — but typically
    an order of magnitude faster. Like the reference, it consumes the
    executive: pass a freshly constructed instance.
    """
    from .executive import ExecutiveResult

    ex = executive
    cfg = ex.config
    proc = ex.processor
    trc = ex.tracer
    if proc.resilience is not None:
        # The replay inlines the allocator and skips the restore-time
        # validation chain, so device-fault semantics cannot be
        # replicated here; IncidentalExecutive.run() routes resilience
        # configs to the reference loop before reaching this point.
        raise SimulationError(
            "fast executive replay does not support device resilience; "
            "run with engine='reference'"
        )
    with trc.phase("fastexec.setup"):
        proc.reset_counters()

        samples = ex.trace.samples_uw
        frontend = cfg.build_frontend()
        converted = frontend.convert_trace(samples)
        direct = None
        if isinstance(frontend, DualChannelFrontend):
            direct = samples * frontend.bypass_efficiency
            direct[samples < frontend.min_input_uw] = 0.0
        n = len(samples)

        mix_weight = proc.mix.mean_energy_weight
        start_lanes = ex.start_lane_bits()
        thresholds = derive_thresholds(
            backup_energy_uj=proc.backup_energy_uj(start_lanes),
            restore_energy_uj=proc.restore_energy_uj(start_lanes),
            run_power_uw=proc.run_power_uw(start_lanes) * mix_weight,
            min_run_ticks=cfg.min_run_ticks,
            backup_margin=cfg.backup_margin,
        )
        start_level = max(
            thresholds.start_energy_uj,
            cfg.start_fill_fraction * cfg.capacitor_uj,
        )
        if start_level > cfg.capacitor_uj:
            raise SimulationError(
                f"start level {start_level:.2f} uJ exceeds capacitor "
                f"capacity {cfg.capacitor_uj:.2f} uJ; this configuration "
                "can never start"
            )

        # -- hoisted per-tick constants ------------------------------------
        dt = TICK_S
        capacity = float(cfg.capacitor_uj)
        leak_frac = float(cfg.capacitor_leak_per_s)
        floor_e = float(cfg.capacitor_leak_floor_uw) * dt
        off_e = float(cfg.off_leakage_uw) * dt
        margin_f = 1.0 + cfg.backup_margin
        restore_cost = proc.restore_energy_uj(start_lanes)
        instr_per_tick = CYCLES_PER_TICK / proc.mix.mean_cycles

        # Allocator constants (ApproximationControlUnit / IncidentalAllocator).
        control = ex.control
        model = control.energy_model
        backup_engine = proc.backup_engine
        ac_enabled = control.ac_enabled
        cap_alloc = ex.capacity_uj
        comfort = control.comfort_fill * cap_alloc
        reserve_level = control.reserve_fill * cap_alloc
        horizon_denom = control.drawdown_horizon_ticks * 1.0e-4
        cur_minb = ex.current_minbits
        cur_maxb = ex.current_maxbits
        lane_minb = ex.lane_minbits
        lane_maxb = ex.lane_maxbits
        max_pending = ex.max_width - 1
        enable_simd = ex.enable_simd
        period = ex.frame_period_ticks
        buffer_entries = ex.buffer  # iterating yields ResumePoints

        # Memoized *raw* lane costs — pure functions of the lane tuple; the
        # mix-weight / margin products are applied per use so the operation
        # order (and therefore every rounding) matches the reference.
        power_raw: Dict[Tuple[int, ...], float] = {}
        backup_raw: Dict[Tuple[int, ...], float] = {}

        def _p(lanes_t: Tuple[int, ...]) -> float:
            value = power_raw.get(lanes_t)
            if value is None:
                value = model.run_power_uw(lanes_t)
                power_raw[lanes_t] = value
            return value

        def _b(lanes_t: Tuple[int, ...]) -> float:
            value = backup_raw.get(lanes_t)
            if value is None:
                value = backup_engine.backup_energy_uj(lanes_t)
                backup_raw[lanes_t] = value
            return value

        # Current-lane cost table: bits_for_budget with no base lanes tests
        # `run_power_uw([bits]) * mix_weight <= budget` (the `total - 0.0`
        # of the reference is exact for any float).
        cur_cost = {b: _p((b,)) * mix_weight for b in range(cur_minb, cur_maxb + 1)}

    with trc.phase("fastexec.precompute"):
        # -- vectorized precomputation over the whole trace ----------------
        # Sticky-zero predicate (see fastsim): starting a tick at e == 0.0,
        # does the OFF tick end back at exactly 0.0?
        inc0 = np.minimum(converted * dt, capacity)
        loss0 = np.minimum(inc0, inc0 * leak_frac * dt + floor_e)
        sticky = (inc0 - loss0) <= off_e
        nonsticky_idx = np.flatnonzero(~sticky)

        conv_list = converted.tolist()
        direct_list = direct.tolist() if direct is not None else None
        sticky_list = sticky.tolist()
        nonsticky_list = nonsticky_idx.tolist()
        n_nonsticky = len(nonsticky_list)
        searchsorted = np.searchsorted

    with trc.phase("fastexec.replay"):
        # -- exact scalar replay ---------------------------------------
        # Tracer hooks: spans at the rare restore/backup transitions
        # behind `t_on`; lane instants behind the `t_events` short-circuit.
        t_on = trc.enabled
        t_events = trc.events
        outage_start = 0
        run_start = 0
        prev_lanes: List[int] = []
        e = 0.0  # capacitor energy (uJ); starts empty like build_capacitor()
        t = 0
        running = False
        on_ticks = 0
        committed = [0, 0, 0, 0]
        residue = 0.0
        run_energy = 0.0
        run_ticks = 0
        run_tick_idx: List[int] = []
        run_tick_bits: List[int] = []
        run_tick_width: List[int] = []
        backup_ticks: List[int] = []

        while t < n:
            if not running:
                # OFF: charge from the storage channel, leak, off-drain,
                # then restore if the start level is reached.
                if e == 0.0 and sticky_list[t]:
                    j = int(searchsorted(nonsticky_idx, t))
                    t = nonsticky_list[j] if j < n_nonsticky else n
                    continue
                c = conv_list[t]
                if c > 0.0:
                    incoming = c * dt
                    room = capacity - e
                    e += incoming if incoming < room else room
                if e > 0.0:
                    loss = e * leak_frac * dt + floor_e
                    if loss > e:
                        loss = e
                    e -= loss
                if e >= off_e:
                    e -= off_e
                else:
                    e = 0.0
                if e >= start_level:
                    # RESTORE occupies this tick.
                    if restore_cost > e + 1e-12:
                        raise SimulationError(
                            "start threshold did not cover restore energy"
                        )
                    e -= restore_cost
                    if e < 0.0:
                        e = 0.0
                    if t_on:
                        trc.tick = t
                    proc.restore(start_lanes)
                    ex.notify_restore(t)
                    running = True
                    on_ticks += 1
                    if t_on:
                        trc.span("outage", outage_start, t, cat="system")
                        trc.metrics.observe(
                            "outage.ticks", t - outage_start, OUTAGE_TICKS_BUCKETS
                        )
                        run_start = t
                        prev_lanes = []
                t += 1
                continue

            # RUN: charge (bypass channel when dual), leak, allocate, then
            # either a power-emergency backup or one executed tick.
            c = direct_list[t] if direct_list is not None else conv_list[t]
            if c > 0.0:
                incoming = c * dt
                room = capacity - e
                e += incoming if incoming < room else room
            if e > 0.0:
                loss = e * leak_frac * dt + floor_e
                if loss > e:
                    loss = e
                e -= loss

            # -- IncidentalExecutive.allocate, inlined ----------------------
            if ex._arrived * period <= t:
                ex._advance_arrivals(t)
            if ex._current is None:
                ex._pick_current()
            ex._idle = ex._current is None
            buffered = [entry.frame_id for entry in buffer_entries]
            n_buffered = len(buffered)
            ex.pending_lanes = n_buffered if enable_simd else 0

            # ApproximationControlUnit.power_budget_uw
            budget = c if c > 0.0 else 0.0
            if e > comfort:
                budget = budget + (e - comfort) / horizon_denom
            elif e < reserve_level:
                budget = 0.0

            # Current-lane bits (bits_for_budget with no base lanes).
            if not ac_enabled:
                current = cur_maxb
            else:
                current = cur_minb
                for bits in range(cur_maxb, cur_minb - 1, -1):
                    if cur_cost[bits] <= budget:
                        current = bits
                        break
            lanes = [current]

            # Incidental SIMD lanes: split the surplus fairly.
            pending = n_buffered if enable_simd else 0
            if pending > max_pending:
                pending = max_pending
            if e < reserve_level:
                pending = 0
            if pending:
                current_power = _p((current,)) * mix_weight
                share = budget - current_power
                if share < 0.0:
                    share = 0.0
                share = share / pending
                if not ac_enabled:
                    for _ in range(pending):
                        lanes.append(lane_maxb)
                else:
                    for _ in range(pending):
                        base_t = tuple(lanes)
                        base_power = _p(base_t) * mix_weight
                        chosen = lane_minb
                        for bits in range(lane_maxb, lane_minb - 1, -1):
                            total = _p(base_t + (bits,)) * mix_weight
                            if total - base_power <= share:
                                chosen = bits
                                break
                        lanes.append(chosen)

            # Newest suspended frames first (set before narrowing, exactly
            # as the reference executive does).
            ex._lane_frames = sorted(buffered, reverse=True)[: len(lanes) - 1]

            # Reserve-driven lane narrowing (allow_lane_narrowing is True
            # for every IncidentalAllocator).
            lanes_t = tuple(lanes)
            run_power = _p(lanes_t) * mix_weight
            tick_energy = run_power * dt
            reserve = _b(lanes_t) * margin_f
            while len(lanes) > 1 and e - tick_energy < reserve:
                lanes = lanes[:-1]
                lanes_t = tuple(lanes)
                run_power = _p(lanes_t) * mix_weight
                tick_energy = run_power * dt
                reserve = _b(lanes_t) * margin_f

            if e - tick_energy < reserve:
                # Power emergency: back up with the reserved charge,
                # narrowing the lane-0 budget if the charge fell short.
                backup_lanes = list(lanes)
                cost = _b(tuple(backup_lanes))
                while backup_lanes[0] > 1 and cost > e:
                    backup_lanes[0] -= 1
                    cost = _b(tuple(backup_lanes))
                if cost > e + 1e-12:
                    raise SimulationError("backup reserve was not available")
                e -= cost
                if e < 0.0:
                    e = 0.0
                if t_on:
                    trc.tick = t
                proc.backup(t, backup_lanes)
                ex.notify_backup(t)
                backup_ticks.append(t)
                running = False
                on_ticks += 1
                if t_on:
                    trc.span("run", run_start, t, cat="system")
                    outage_start = t
                t += 1
                continue

            if tick_energy <= e:
                e -= tick_energy
            else:
                raise SimulationError("run tick drained past available charge")
            # execute_tick bookkeeping, inlined.
            exact = instr_per_tick + residue
            ipl = int(exact)
            residue = exact - ipl
            for i in range(len(lanes)):
                committed[i] += ipl
            run_energy += run_power * 1.0e-4
            run_ticks += 1
            ex.notify_executed(t, lanes, ipl)
            run_tick_idx.append(t)
            run_tick_bits.append(lanes[0])
            run_tick_width.append(len(lanes))
            on_ticks += 1
            t += 1
            if t_events and lanes != prev_lanes:
                trc.instant(
                    "lanes",
                    tick=t - 1,
                    cat="system",
                    args={"bits": list(lanes), "width": len(lanes)},
                )
                prev_lanes = lanes

    with trc.phase("fastexec.finalize"):
        # Write the inlined execution counters back so the processor's
        # ledger matches a reference run of the same trajectory.
        proc.committed_per_lane = committed
        proc.run_energy_uj = run_energy
        proc.run_ticks = run_ticks
        proc.pc = committed[0] & 0xFFFF
        proc._instruction_residue = residue

        bit_schedule = np.zeros(n, dtype=np.int16)
        lane_schedule = np.zeros(n, dtype=np.int16)
        if run_tick_idx:
            idx = np.asarray(run_tick_idx, dtype=np.intp)
            bit_schedule[idx] = run_tick_bits
            lane_schedule[idx] = run_tick_width
        if t_on:
            if running:
                trc.span("run", run_start, n, cat="system")
            else:
                trc.span("outage", outage_start, n, cat="system")
            _fold_run_metrics(trc, bit_schedule, lane_schedule, on_ticks, n)
        engine = proc.backup_engine
        sim = SimulationResult(
            total_ticks=n,
            forward_progress=proc.forward_progress,
            incidental_progress=proc.incidental_progress,
            backup_count=engine.backup_count,
            restore_count=engine.restore_count,
            on_ticks=on_ticks,
            income_energy_uj=ex.trace.total_energy_uj,
            converted_energy_uj=float(converted.sum() * TICK_S),
            run_energy_uj=run_energy,
            backup_energy_uj=engine.total_backup_energy_uj,
            restore_energy_uj=engine.total_restore_energy_uj,
            bit_schedule=bit_schedule,
            lane_schedule=lane_schedule,
            backup_ticks=tuple(backup_ticks),
        )
    return ExecutiveResult(
        sim=sim,
        frames=tuple(ex.records),
        idle_instructions=ex._idle_instructions,
    )
