"""Per-element precision metadata (Section 4).

The incidental NVP attaches 3 precision bits to every data word per
SIMD version, recording how many reliable bits the stored value was
computed with. :class:`PrecisionMap` is the software image of that
metadata for one output buffer: it accompanies every incidental result
and is what the ``assemble`` merge consults in ``higherbits`` mode and
what recompute-and-combine maximises over passes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import ReproError

__all__ = ["PrecisionMap"]


class PrecisionMap:
    """Per-element reliable-bit counts for one buffer.

    Values lie in ``[0, word_bits]``; 0 means "never computed". The
    hardware stores 3 bits per element (values 0-7 encoding 1-8 plus a
    never-written state); we keep the unencoded counts for clarity.
    """

    def __init__(self, shape: Tuple[int, ...], word_bits: int = 8) -> None:
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=ReproError)
        self._bits = np.zeros(shape, dtype=np.int8)

    @classmethod
    def from_array(cls, bits: np.ndarray, word_bits: int = 8) -> "PrecisionMap":
        """Wrap an existing per-element bit array."""
        bits = np.asarray(bits)
        if not np.issubdtype(bits.dtype, np.integer):
            raise ReproError("precision array must be integer")
        if bits.size and (bits.min() < 0 or bits.max() > word_bits):
            raise ReproError(f"precision values must lie in [0, {word_bits}]")
        out = cls(bits.shape, word_bits=word_bits)
        out._bits = bits.astype(np.int8)
        return out

    @property
    def shape(self) -> Tuple[int, ...]:
        """Buffer shape."""
        return self._bits.shape

    @property
    def bits(self) -> np.ndarray:
        """The per-element reliable-bit counts (copy)."""
        return self._bits.astype(np.int64)

    def set_region(self, index, bits: int) -> None:
        """Record that a region was computed with ``bits`` reliable bits."""
        bits = check_int_in_range(bits, "bits", 0, self.word_bits, exc=ReproError)
        self._bits[index] = bits

    def coverage(self) -> float:
        """Fraction of elements computed at least once."""
        if self._bits.size == 0:
            return 0.0
        return float(np.mean(self._bits > 0))

    def mean_bits(self) -> float:
        """Mean precision over computed elements (0 when none)."""
        computed = self._bits[self._bits > 0]
        if computed.size == 0:
            return 0.0
        return float(computed.mean())

    def better_than(self, other: "PrecisionMap") -> np.ndarray:
        """Boolean mask where this map's precision beats ``other``'s."""
        if self.shape != other.shape:
            raise ReproError("precision maps must share a shape")
        return self._bits > other._bits

    def merged_max(self, other: "PrecisionMap") -> "PrecisionMap":
        """Element-wise maximum of two maps (the post-assemble metadata)."""
        if self.shape != other.shape:
            raise ReproError("precision maps must share a shape")
        return PrecisionMap.from_array(
            np.maximum(self._bits, other._bits).astype(np.int64),
            word_bits=self.word_bits,
        )

    def __repr__(self) -> str:
        return (
            f"PrecisionMap(shape={self.shape}, coverage={self.coverage():.2f}, "
            f"mean_bits={self.mean_bits():.2f})"
        )
