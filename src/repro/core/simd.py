"""Incidental SIMD matching (Section 4).

"When incidental SIMD is enabled, the current PC is compared against
stored resume-point PCs. If the current PC matches one of the stored
PCs, the controller has the modified register file generate a
bit-vector indicating which register values associated with the
matching resume-point PC have values identical to the current register
values. This vector is then combined with a compiler-generated mask.
Once matches in both PC and the mask-indicated variables are observed,
SIMD width is increased and the buffer storing the SIMDed resume-point
PC is cleared."

:class:`SimdMatcher` models exactly that handshake between the resume
buffer, the multi-version register file's comparison circuits, and the
compiler mask.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ReproError
from ..nvp.registers import MultiVersionRegisterFile
from .resume_buffer import ResumePoint, ResumePointBuffer

__all__ = ["SimdMatcher"]


class SimdMatcher:
    """PC + masked-register matching for SIMD lane adoption."""

    def __init__(
        self,
        buffer: ResumePointBuffer,
        registers: MultiVersionRegisterFile,
        key_mask: np.ndarray,
        max_width: int = 4,
    ) -> None:
        if max_width < 1 or max_width > 4:
            raise ReproError("max_width must be 1-4")
        key_mask = np.asarray(key_mask, dtype=bool)
        if key_mask.shape != (registers.n_regs,):
            raise ReproError(
                f"key mask must have shape ({registers.n_regs},), got {key_mask.shape}"
            )
        self.buffer = buffer
        self.registers = registers
        self.key_mask = key_mask
        self.max_width = max_width
        self.adopted: List[ResumePoint] = []

    @property
    def simd_width(self) -> int:
        """Current width: the live lane plus adopted incidental lanes."""
        return 1 + len(self.adopted)

    def try_widen(self, current_pc: int) -> Optional[ResumePoint]:
        """Attempt one widening step at the current PC.

        Returns the adopted resume point when PC and masked registers
        both match, after clearing its buffer entry and ungating its
        register version; returns ``None`` otherwise.
        """
        if self.simd_width >= self.max_width:
            return None
        entry = self.buffer.match_pc(current_pc)
        if entry is None:
            return None
        if self.registers.is_gated(entry.register_version):
            self.registers.power_on_version(entry.register_version)
        if not self.registers.matches_current(entry.register_version, mask=self.key_mask):
            # Key loop variables disagree: the old computation is not
            # at a compatible point; leave it buffered and re-gate.
            self.registers.power_off_version(entry.register_version)
            return None
        self.buffer.remove(entry)
        self.adopted.append(entry)
        return entry

    def release(self, entry: ResumePoint, elements_done: int) -> None:
        """Detach a lane (power failure or completion).

        Unfinished lanes return to the resume buffer with updated
        progress; finished ones just free their register version.
        """
        if entry not in self.adopted:
            raise ReproError("entry is not an adopted lane")
        self.adopted.remove(entry)
        self.registers.power_off_version(entry.register_version)
        if elements_done > entry.elements_done:
            entry = ResumePoint(
                pc=entry.pc,
                frame_id=entry.frame_id,
                elements_done=elements_done,
                register_version=entry.register_version,
            )
        self.buffer.push(entry)

    def release_all(self, progress: Optional[dict] = None) -> None:
        """Detach every lane (backup path). ``progress`` maps frame_id
        to elements_done at suspension time."""
        for entry in list(self.adopted):
            done = entry.elements_done
            if progress is not None:
                done = max(done, progress.get(entry.frame_id, done))
            self.release(entry, done)
