"""The approximation control unit and its bit allocators (Figure 6).

"A control unit dynamically controls whether approximation should be
used and, if so, how. The main task of this unit is to set the number
of precise and approximate bits for SIMD for different hardware
components based on the available power level."

Three allocators plug into the system simulator:

* :class:`repro.system.simulator.FixedBitAllocator` — the baselines;
* :class:`DynamicBitAllocator` — single-lane dynamic bitwidth tracking
  the power profile within ``[minbits, maxbits]`` (Figures 17-21);
* :class:`IncidentalAllocator` — the full incidental NVP: a current
  lane plus up to three surplus-powered incidental SIMD lanes whose
  demand is driven by the executive's resume buffer.
"""

from __future__ import annotations

from typing import List, Optional

from .._validation import check_in_range, check_int_in_range
from ..errors import ConfigurationError
from ..nvp.energy_model import EnergyModel

__all__ = ["ApproximationControlUnit", "DynamicBitAllocator", "IncidentalAllocator"]

# Import here to avoid a circular import at package-init time: the
# system package must not import repro.core.
from ..system.simulator import BitAllocator  # noqa: E402


class ApproximationControlUnit:
    """Maps available power to bit budgets.

    Parameters
    ----------
    energy_model:
        The calibrated power model whose per-bit lane costs the unit
        inverts.
    comfort_fill:
        Stored-energy level (as a fraction of capacity) above which the
        unit spends surplus charge on extra precision; below
        ``reserve_fill`` it falls back to ``minbits``.
    drawdown_horizon_ticks:
        Ticks over which the unit plans to spend stored surplus.
    """

    def __init__(
        self,
        energy_model: Optional[EnergyModel] = None,
        comfort_fill: float = 0.25,
        reserve_fill: float = 0.1,
        drawdown_horizon_ticks: int = 40,
        mix_weight: float = 1.0,
    ) -> None:
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.comfort_fill = check_in_range(comfort_fill, "comfort_fill", 0.0, 1.0)
        self.reserve_fill = check_in_range(reserve_fill, "reserve_fill", 0.0, self.comfort_fill)
        self.drawdown_horizon_ticks = check_int_in_range(
            drawdown_horizon_ticks, "drawdown_horizon_ticks", 1
        )
        self.mix_weight = check_in_range(mix_weight, "mix_weight", 0.1, 10.0)
        #: Global approximation enable (the AC_EN register). A running
        #: program may clear it to force full-precision execution.
        self.ac_enabled = True

    def power_budget_uw(self, income_uw: float, stored_uj: float, capacity_uj: float) -> float:
        """Spendable power this tick: income plus planned drawdown."""
        budget = max(0.0, float(income_uw))
        comfort = self.comfort_fill * capacity_uj
        if stored_uj > comfort:
            # Spend the surplus over the planning horizon (1 tick = 1e-4 s).
            budget += (stored_uj - comfort) / (self.drawdown_horizon_ticks * 1.0e-4)
        elif stored_uj < self.reserve_fill * capacity_uj:
            budget = 0.0
        return budget

    def bits_for_budget(
        self, budget_uw: float, minbits: int, maxbits: int, base_lanes: Optional[List[int]] = None
    ) -> int:
        """Largest budget-affordable bit count in ``[minbits, maxbits]``.

        ``base_lanes`` holds lanes already committed; the candidate
        lane's *incremental* cost must fit in the remaining budget.
        When even ``maxbits`` is unaffordable the unit still returns
        ``minbits`` — the guaranteed minimum quality of the pragma.
        """
        minbits = check_int_in_range(minbits, "minbits", 1, self.energy_model.word_bits)
        maxbits = check_int_in_range(maxbits, "maxbits", minbits, self.energy_model.word_bits)
        if not self.ac_enabled:
            return maxbits
        base = list(base_lanes) if base_lanes else []
        base_power = (
            self.energy_model.run_power_uw(base) * self.mix_weight if base else 0.0
        )
        for bits in range(maxbits, minbits - 1, -1):
            total = self.energy_model.run_power_uw(base + [bits]) * self.mix_weight
            if total - base_power <= budget_uw or (not base and total <= budget_uw):
                return bits
        return minbits

    def lane_affordable(
        self, budget_uw: float, base_lanes: List[int], minbits: int
    ) -> bool:
        """Whether an extra lane at ``minbits`` fits the budget."""
        base_power = self.energy_model.run_power_uw(base_lanes) * self.mix_weight
        with_lane = (
            self.energy_model.run_power_uw(base_lanes + [minbits]) * self.mix_weight
        )
        return with_lane - base_power <= budget_uw


class DynamicBitAllocator(BitAllocator):
    """Single-lane dynamic bitwidth (Section 8.3, Figures 17-21).

    The lane's bit budget tracks the power profile each tick within
    ``[minbits, maxbits]``; the system starts as soon as it can afford
    ``minbits``, which is the lower activation threshold the paper
    credits for dynamic bitwidth's extra duty cycle.
    """

    def __init__(
        self,
        minbits: int,
        maxbits: int = 8,
        control: Optional[ApproximationControlUnit] = None,
        capacity_uj: float = 4.5,
    ) -> None:
        if control is None:
            # A single dynamic lane spends banked surplus on *its own*
            # precision (there are no SIMD lanes to feed), so its
            # drawdown is more aggressive than the incidental
            # controller's: full precision right after a start,
            # degrading toward minbits as the capacitor drains — the
            # bimodal utilisation of Figure 18.
            control = ApproximationControlUnit(
                comfort_fill=0.2, drawdown_horizon_ticks=17
            )
        self.control = control
        word_bits = self.control.energy_model.word_bits
        self.minbits = check_int_in_range(minbits, "minbits", 1, word_bits)
        self.maxbits = check_int_in_range(maxbits, "maxbits", self.minbits, word_bits)
        self.capacity_uj = float(capacity_uj)

    def start_lane_bits(self) -> List[int]:
        return [self.minbits]

    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        budget = self.control.power_budget_uw(income_uw, stored_uj, self.capacity_uj)
        return [self.control.bits_for_budget(budget, self.minbits, self.maxbits)]


class IncidentalAllocator(BitAllocator):
    """Current lane plus surplus-powered incidental SIMD lanes.

    The executive sets :attr:`pending_lanes` to the number of suspended
    computations waiting in the resume buffer; each tick the allocator
    attaches as many of them as the surplus power affords, at the
    highest affordable bits within the pragma's ``[minbits, maxbits]``.

    ``current_minbits``/``current_maxbits`` describe the newest-data
    lane: Table 2's configurations run it at full precision (8, 8);
    Figure 9's (a1,b) and (a2,b) run it dynamically at (2, 8) and
    (6, 8).
    """

    allow_lane_narrowing = True

    def __init__(
        self,
        lane_minbits: int,
        lane_maxbits: int = 8,
        current_minbits: int = 8,
        current_maxbits: int = 8,
        control: Optional[ApproximationControlUnit] = None,
        capacity_uj: float = 4.5,
        max_width: int = 4,
    ) -> None:
        self.control = control if control is not None else ApproximationControlUnit()
        word_bits = self.control.energy_model.word_bits
        self.lane_minbits = check_int_in_range(lane_minbits, "lane_minbits", 1, word_bits)
        self.lane_maxbits = check_int_in_range(
            lane_maxbits, "lane_maxbits", self.lane_minbits, word_bits
        )
        self.current_minbits = check_int_in_range(
            current_minbits, "current_minbits", 1, word_bits
        )
        self.current_maxbits = check_int_in_range(
            current_maxbits, "current_maxbits", self.current_minbits, word_bits
        )
        self.capacity_uj = float(capacity_uj)
        self.max_width = check_int_in_range(max_width, "max_width", 1, 4)
        #: Incidental lane demand, maintained by the executive.
        self.pending_lanes = 0

    def start_lane_bits(self) -> List[int]:
        """Start when current + one incidental lane are affordable.

        This is why the incidental configurations of Figure 9 carry a
        *higher* start threshold than the plain 8-bit NVP: waking up
        commits the machine to the widened datapath.
        """
        lanes = [self.current_minbits]
        if self.max_width > 1:
            lanes.append(self.lane_minbits)
        return lanes

    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        budget = self.control.power_budget_uw(income_uw, stored_uj, self.capacity_uj)
        current = self.control.bits_for_budget(
            budget, self.current_minbits, self.current_maxbits
        )
        lanes = [current]
        # Attach every pending old computation the hardware can hold;
        # SIMD lane-ops are cheaper than sequential ops (shared fetch),
        # so width costs run *duration*, never efficiency. The income
        # power level sets each lane's precision (Section 3.1) — at the
        # pragma's minbits floor when power is scarce — and the system
        # simulator narrows the width again if the backup reserve would
        # be violated.
        pending = min(self.pending_lanes, self.max_width - 1)
        if stored_uj < self.control.reserve_fill * self.capacity_uj:
            pending = 0
        if pending:
            # "Divide power and resources": the surplus beyond the
            # current lane is split fairly across the attached lanes,
            # and each lane's precision is what its share affords.
            current_power = (
                self.control.energy_model.run_power_uw(lanes) * self.control.mix_weight
            )
            share = max(0.0, budget - current_power) / pending
            for _ in range(pending):
                bits = self.control.bits_for_budget(
                    share, self.lane_minbits, self.lane_maxbits, base_lanes=lanes
                )
                lanes.append(bits)
        return lanes
