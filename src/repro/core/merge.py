"""``assemble`` merge semantics (Table 1, Section 4).

Combines a newly (re)computed buffer with the previously stored one,
under one of the four modes the multi-version memory implements:

* ``sum``        — saturating element-wise sum;
* ``max`` / ``min`` — element-wise extreme;
* ``higherbits`` — "the results computed with higher bits cover the
  results of the lower bits": per element, whichever version carries
  more precision metadata wins (ties keep the old value).

The function operates on plain arrays plus :class:`PrecisionMap`
metadata; the hardware path through
:meth:`repro.nvm.memory.VersionedNVMemory.merge_versions` implements
the same semantics at the word level and is cross-checked in the test
suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_choice
from ..errors import MergeError
from ..nvm.memory import MERGE_MODES
from .precision import PrecisionMap

__all__ = ["assemble_arrays"]


def assemble_arrays(
    old_values: np.ndarray,
    old_precision: PrecisionMap,
    new_values: np.ndarray,
    new_precision: PrecisionMap,
    mode: str,
    word_bits: int = 8,
) -> Tuple[np.ndarray, PrecisionMap]:
    """Merge ``new`` into ``old``; returns ``(values, precision)``.

    This is the software face of the ``assemble(buf, mode)`` pragma:
    the controller halts execution, streams the region through the
    memory's combination state machine, and leaves the merged values
    plus updated precision metadata behind.
    """
    mode = check_choice(mode, "mode", MERGE_MODES, exc=MergeError)
    old_values = np.asarray(old_values, dtype=np.int64)
    new_values = np.asarray(new_values, dtype=np.int64)
    if old_values.shape != new_values.shape:
        raise MergeError(
            f"buffer shape mismatch: {old_values.shape} vs {new_values.shape}"
        )
    if old_precision.shape != old_values.shape or new_precision.shape != new_values.shape:
        raise MergeError("precision maps must match their buffers")

    max_value = (1 << word_bits) - 1
    old_bits = old_precision.bits
    new_bits = new_precision.bits

    if mode == "sum":
        merged = np.clip(old_values + new_values, 0, max_value)
        merged_bits = np.minimum(old_bits, new_bits)
    elif mode == "max":
        take_new = new_values > old_values
        merged = np.where(take_new, new_values, old_values)
        merged_bits = np.where(take_new, new_bits, old_bits)
    elif mode == "min":
        take_new = new_values < old_values
        merged = np.where(take_new, new_values, old_values)
        merged_bits = np.where(take_new, new_bits, old_bits)
    else:  # higherbits
        take_new = new_bits > old_bits
        merged = np.where(take_new, new_values, old_values)
        merged_bits = np.where(take_new, new_bits, old_bits)

    return merged, PrecisionMap.from_array(merged_bits, word_bits=word_bits)
