"""Power-profile-to-configuration mapping (Section 8.6).

"We also suggest to employ linear incidental backup when average power
is expected to be higher (e.g. scenarios akin to profiles 1, 4) and
parabola when average power is low (e.g. profiles 2, 3, 5); preference
for the logarithmic policy over linear/parabola is strongly
kernel-specific. If the expected power characteristics are unknown, a
lookup table or machine learning based mapping from the sampled power
to configurations can be applied."

This module implements both halves of that suggestion:

* :class:`PolicyAdvisor` — the rule/lookup-table mapping, driven by
  :class:`TraceFeatures` sampled from the power profile and by each
  kernel's approximation-tolerance class;
* :meth:`PolicyAdvisor.calibrate` — the "learning" mode: measure the
  candidate retention policies on a sampled trace prefix and memoise
  the winner per feature bucket, exactly the kind of sampled-power →
  configuration table the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .._validation import check_positive
from ..energy.outages import outage_statistics
from ..energy.traces import OPERATING_THRESHOLD_UW, PowerTrace
from ..errors import ConfigurationError
from ..kernels.registry import KERNEL_NAMES
from ..quality.qos import TABLE2_POLICIES, QoSTarget, TunedPolicy
from ..system.simulator import simulate_fixed_bits
from ..nvm.retention import policy_by_name

__all__ = ["TraceFeatures", "PolicyAdvisor"]

#: Approximation-tolerance classes of the suite (from the Figures 12/14
#: quality study): tolerant kernels can push minbits low; fragile ones
#: must not.
KERNEL_TOLERANCE: Dict[str, str] = {
    "integral": "tolerant",
    "median": "moderate",
    "tiff2bw": "tolerant",
    "tiff2rgba": "tolerant",
    "susan_smoothing": "moderate",
    "susan_edges": "fragile",
    "susan_corners": "fragile",
    "jpeg_encode": "moderate",
    "fft": "moderate",
    "sobel": "fragile",
    # Extension workload (not in the Figure 28 suite).
    "template_match": "moderate",
}

_MINBITS_BY_TOLERANCE = {"tolerant": 2, "moderate": 3, "fragile": 4}


@dataclass(frozen=True)
class TraceFeatures:
    """The sampled-power features the advisor's table is keyed on."""

    mean_power_uw: float
    burst_fraction: float
    median_outage_ticks: float
    emergencies_per_10s: float

    @classmethod
    def from_trace(cls, trace: PowerTrace) -> "TraceFeatures":
        """Sample the features of a (prefix of a) power trace."""
        stats = outage_statistics(trace)
        return cls(
            mean_power_uw=trace.mean_power_uw,
            burst_fraction=trace.fraction_above(OPERATING_THRESHOLD_UW),
            median_outage_ticks=stats.median_duration_ticks,
            emergencies_per_10s=stats.emergencies_per_window(10.0),
        )

    @property
    def energy_class(self) -> str:
        """'high' for energetic profiles (1/4-like), 'low' otherwise."""
        return "high" if self.mean_power_uw >= 30.0 else "low"


class PolicyAdvisor:
    """Maps sampled power + kernel to a tuned incidental configuration.

    Parameters
    ----------
    high_power_threshold_uw:
        Mean-power boundary between the "profiles 1, 4"-like regime
        (linear backup) and the "profiles 2, 3, 5"-like regime
        (parabola backup).
    """

    def __init__(self, high_power_threshold_uw: float = 30.0) -> None:
        self.high_power_threshold_uw = check_positive(
            high_power_threshold_uw, "high_power_threshold_uw"
        )
        # energy_class -> measured-best policy name (filled by calibrate).
        self._learned: Dict[str, str] = {}

    # -- the lookup-table mapping -----------------------------------------

    def backup_policy_for(self, features: TraceFeatures) -> str:
        """Section 8.6's rule, unless a calibrated entry overrides it."""
        energy_class = (
            "high"
            if features.mean_power_uw >= self.high_power_threshold_uw
            else "low"
        )
        if energy_class in self._learned:
            return self._learned[energy_class]
        return "linear" if energy_class == "high" else "parabola"

    def minbits_for(self, kernel_name: str) -> int:
        """Tolerance-class minbits (Table 2 rows override when present)."""
        if kernel_name in TABLE2_POLICIES:
            return TABLE2_POLICIES[kernel_name].minbits
        try:
            tolerance = KERNEL_TOLERANCE[kernel_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown kernel {kernel_name!r}; expected one of {sorted(KERNEL_NAMES)}"
            ) from None
        return _MINBITS_BY_TOLERANCE[tolerance]

    def advise(self, trace: PowerTrace, kernel_name: str) -> TunedPolicy:
        """A full tuned configuration for running ``kernel_name`` on
        power shaped like ``trace``."""
        features = TraceFeatures.from_trace(trace)
        if kernel_name in TABLE2_POLICIES:
            base = TABLE2_POLICIES[kernel_name]
            target: QoSTarget = base.target
            recompute = base.recompute_passes
        else:
            tolerance = KERNEL_TOLERANCE.get(kernel_name, "moderate")
            target = QoSTarget(min_psnr_db={"tolerant": 20.0, "moderate": 30.0, "fragile": 20.0}[tolerance])
            recompute = 2 if tolerance == "fragile" else 0
        return TunedPolicy(
            kernel=kernel_name,
            target=target,
            minbits=self.minbits_for(kernel_name),
            recompute_passes=recompute,
            backup_policy=self.backup_policy_for(features),
        )

    # -- the learned mapping ------------------------------------------------

    def calibrate(
        self,
        trace: PowerTrace,
        sample_ticks: int = 10_000,
        candidates: Tuple[str, ...] = ("linear", "log", "parabola"),
    ) -> str:
        """Measure the candidate policies on a trace prefix; memoise.

        Runs the 8-bit NVP under each candidate backup policy over the
        first ``sample_ticks`` of the trace and records the
        best-forward-progress policy for this trace's energy class —
        the paper's "mapping from the sampled power to configurations",
        built from samples instead of rules.
        """
        if sample_ticks < 100:
            raise ConfigurationError("sample_ticks must cover at least 100 ticks")
        prefix = trace.segment(0, min(sample_ticks, len(trace)))
        features = TraceFeatures.from_trace(prefix)
        best_policy: Optional[str] = None
        best_fp = -1
        for name in candidates:
            result = simulate_fixed_bits(prefix, 8, policy=policy_by_name(name))
            if result.forward_progress > best_fp:
                best_fp = result.forward_progress
                best_policy = name
        self._learned[features.energy_class] = best_policy
        return best_policy

    @property
    def learned_table(self) -> Dict[str, str]:
        """The calibrated energy-class -> policy lookup table (copy)."""
        return dict(self._learned)
