"""The incidental executive: running an annotated program over a trace.

This is the system of Section 3.1 end-to-end. Sensor frames arrive
into a buffer at a fixed period; the NVP processes the *newest* frame
on lane 0. On every power failure the machine state is backed up (with
the pragma's retention policy for the incidental data); on recovery,
if newer data has arrived, execution **rolls forward** to it and the
interrupted frame becomes *incidental*, parked in the 4-entry
nonvolatile resume buffer. While the new frame runs, surplus power
attaches up to three parked frames as SIMD lanes at reduced, dynamic
bitwidth. Frames evicted from the full resume buffer are abandoned.

The executive is implemented as a stateful
:class:`~repro.core.controller.IncidentalAllocator`: the system-level
simulator drives the power machinery and calls back into the executive
for every allocation, executed tick, backup and restore — the same
control relationship the paper's two-layer framework has (Figure 10).

Quality is computed *post hoc*: each frame's per-element bit schedule
(recorded during simulation) replays through the kernel's approximate
datapath, and retention decay is injected for every outage the frame's
partial results sat through in unreliable NVM.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..energy.traces import PowerTrace
from ..errors import ConfigurationError, SimulationError
from ..kernels.base import ApproxContext
from ..nvm.failures import RetentionFailureModel
from ..nvp.isa import KERNEL_MIXES, DEFAULT_MIX
from ..nvp.processor import NonvolatileProcessor
from ..obs.metrics import PSNR_DB_BUCKETS
from ..obs.tracer import resolve_tracer
from ..resilience import ResilienceConfig, RestoreOutcome
from ..quality.metrics import mse as compute_mse
from ..quality.metrics import psnr as compute_psnr
from ..system.config import SystemConfig
from ..system.metrics import SimulationResult
from ..system.simulator import NVPSystemSimulator
from .controller import ApproximationControlUnit, IncidentalAllocator
from .program import AnnotatedProgram, FRAME_LOOP_PC
from .resume_buffer import ResumePoint, ResumePointBuffer

__all__ = [
    "FrameRecord",
    "FrameQuality",
    "ExecutiveResult",
    "IncidentalExecutive",
    "replay_frame_quality",
    "clear_quality_memo",
]


@dataclass
class FrameRecord:
    """Lifetime record of one sensor frame."""

    frame_id: int
    arrival_tick: int
    element_bits: np.ndarray
    completed_tick: Optional[int] = None
    completed_incidentally: bool = False
    abandoned: bool = False
    #: (outage_ticks, elements_done_at_backup) for every outage this
    #: frame's partial results sat through in unreliable NVM.
    exposures: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """Whether every element was eventually computed."""
        return self.completed_tick is not None

    @property
    def coverage(self) -> float:
        """Fraction of elements computed."""
        if self.element_bits.size == 0:
            return 0.0
        return float(np.mean(self.element_bits > 0))

    @property
    def mean_bits(self) -> float:
        """Mean bit budget over computed elements."""
        computed = self.element_bits[self.element_bits > 0]
        if computed.size == 0:
            return 0.0
        return float(computed.mean())


@dataclass(frozen=True)
class FrameQuality:
    """Post-hoc quality score of one frame."""

    frame_id: int
    psnr_db: float
    mse: float
    coverage: float
    mean_bits: float
    completed_incidentally: bool


@dataclass(frozen=True)
class ExecutiveResult:
    """Everything one incidental run produced."""

    sim: SimulationResult
    frames: Tuple[FrameRecord, ...]
    idle_instructions: int

    @property
    def frames_completed(self) -> int:
        """Frames whose every element was computed."""
        return sum(1 for f in self.frames if f.completed)

    @property
    def frames_completed_incidentally(self) -> int:
        """Completed frames that finished on an incidental lane."""
        return sum(1 for f in self.frames if f.completed and f.completed_incidentally)

    @property
    def frames_abandoned(self) -> int:
        """Frames evicted from the resume buffer and never finished."""
        return sum(1 for f in self.frames if f.abandoned)

    @property
    def useful_progress(self) -> int:
        """Lane instructions spent on real frames (idle ticks removed)."""
        return max(0, self.sim.total_progress - self.idle_instructions)


class IncidentalExecutive(IncidentalAllocator):
    """Runs an :class:`AnnotatedProgram` incidentally over a power trace.

    Parameters
    ----------
    program:
        Kernel plus pragmas; must carry ``incidental`` and
        ``incidental_recover_from`` for the full behaviour (both are
        checked).
    frames:
        The sensor images arriving into the buffer. If the trace
        outlives the list, arrivals cycle through it.
    frame_period_ticks:
        Sensor frame period (0.1 ms ticks).
    enable_simd / enable_rollforward:
        Ablation switches: with both off the executive degenerates to
        a roll-back, single-lane NVP.
    """

    def __init__(
        self,
        program: AnnotatedProgram,
        trace: PowerTrace,
        frames: Sequence[np.ndarray],
        frame_period_ticks: int = 10_000,
        config: Optional[SystemConfig] = None,
        enable_simd: bool = True,
        enable_rollforward: bool = True,
        current_minbits: int = 8,
        current_maxbits: int = 8,
        retention_time_scale: float = 8.0,
        resume_buffer_capacity: int = 4,
        precise_backup: bool = False,
        recover_placement: str = "inner",
        seed: int = 0,
        resilience: Optional[ResilienceConfig] = None,
        tracer=None,
    ) -> None:
        if not program.supports_incidental_execution:
            raise ConfigurationError(
                "program needs both 'incidental' and 'incidental_recover_from' "
                "pragmas for incidental execution"
            )
        self.program = program
        self.trace = trace
        self.config = config if config is not None else SystemConfig()
        self.images = [np.asarray(f) for f in frames]
        if not self.images:
            raise ConfigurationError("at least one frame image is required")
        shape = self.images[0].shape
        if any(image.shape != shape for image in self.images):
            raise ConfigurationError(
                "all buffered frames must share one shape; got "
                f"{sorted({image.shape for image in self.images})}"
            )
        self.frame_period_ticks = check_int_in_range(
            frame_period_ticks, "frame_period_ticks", 10
        )
        # Section 5: loop-carried dependencies preclude incidental SIMD
        # (individual variable approximation still applies).
        self.enable_simd = bool(enable_simd) and not program.loop_carried
        self.enable_rollforward = bool(enable_rollforward)
        # Our synthetic platform banks charge in longer stretches than
        # the paper's (~1500 backups/minute) cadence; the shaping curve
        # is stretched to match, per Section 3.2's profile-matching
        # principle (DESIGN.md §5.2).
        self.retention_time_scale = float(retention_time_scale)
        self.seed = int(seed)

        # Ablation switch: run with fully precise backups despite the
        # pragma's policy (isolates the incidental-backup contribution).
        self.precise_backup = bool(precise_backup)
        mix = KERNEL_MIXES.get(program.kernel.name, DEFAULT_MIX)
        # One tracer observes the whole stack: frame lifecycle here, the
        # backup ledger in the processor, spans in the system simulator.
        self.tracer = resolve_tracer(tracer)
        self.processor = NonvolatileProcessor(
            policy=None
            if self.precise_backup
            else program.retention_policy(time_scale=self.retention_time_scale),
            mix=mix,
            resilience=resilience,
            tracer=tracer,
        )
        pragma = program.incidental
        control = ApproximationControlUnit(
            energy_model=self.processor.energy_model,
            mix_weight=mix.mean_energy_weight,
        )
        super().__init__(
            lane_minbits=pragma.minbits,
            lane_maxbits=pragma.maxbits,
            current_minbits=current_minbits,
            current_maxbits=current_maxbits,
            control=control,
            capacity_uj=self.config.capacitor_uj,
            max_width=4 if self.enable_simd else 1,
        )

        # Section 6: where `incidental_recover_from` sits. "inner" puts
        # it in the inner (element) loop — suspended computations keep
        # their partial progress, at the cost of one resume-point mark
        # instruction per element. "frame" puts it before the frame
        # loop — cheaper, but a suspension loses the partial frame.
        # The paper recommends "inner" only for fast-interrupt sources
        # (WiFi / kHz vibration) and "frame" for solar/thermal.
        if recover_placement not in ("inner", "frame"):
            raise ConfigurationError(
                f"recover_placement must be 'inner' or 'frame', got {recover_placement!r}"
            )
        self.recover_placement = recover_placement
        self.n_elements = program.kernel.output_elements(self.images[0])
        self.instr_per_element = program.kernel.instructions_per_element + (
            1 if recover_placement == "inner" else 0
        )
        self.records: List[FrameRecord] = []
        # The 4-entry nonvolatile PC buffer of Section 4; smaller
        # capacities are exposed for the ablation study.
        self.buffer = ResumePointBuffer(
            check_int_in_range(resume_buffer_capacity, "resume_buffer_capacity", 1, 4)
        )
        self._arrived = 0
        # Newest-unstarted frontier (ascending frame ids). A frame id
        # enters when it arrives and leaves exactly once — the first
        # time it is picked as the current frame. It can never re-enter:
        # from then on it is current, buffered, completed or abandoned,
        # all of which `_newest_unstarted` excludes. Keeping the list
        # incrementally makes the per-tick lookup O(1) instead of a
        # rescan of every frame record (quadratic over long traces).
        self._unstarted: List[int] = []
        self._current: Optional[int] = None
        self._current_done = 0.0
        self._lane_frames: List[int] = []  # frame ids behind lanes[1:]
        self._lane_done: Dict[int, float] = {}
        self._last_backup_tick: Optional[int] = None
        self._idle_instructions = 0
        self._idle = False

    # -- arrival / work selection -------------------------------------------

    def _advance_arrivals(self, tick: int) -> None:
        due = tick // self.frame_period_ticks + 1
        while self._arrived < due:
            self.records.append(
                FrameRecord(
                    frame_id=self._arrived,
                    arrival_tick=self._arrived * self.frame_period_ticks,
                    element_bits=np.zeros(self.n_elements, dtype=np.int8),
                )
            )
            self._unstarted.append(self._arrived)
            if self.tracer.events:
                self.tracer.instant(
                    "frame.arrival",
                    tick=self._arrived * self.frame_period_ticks,
                    cat="executive",
                    args={"frame_id": self._arrived},
                )
            self._arrived += 1

    def _newest_unstarted(self) -> Optional[int]:
        return self._unstarted[-1] if self._unstarted else None

    def _pick_current(self) -> None:
        """Choose the lane-0 frame (roll-forward priority: newest first)."""
        candidate = self._newest_unstarted() if self.enable_rollforward else None
        if candidate is None and self.buffer:
            # No brand-new frame: continue the most recent suspension.
            entry = max(self.buffer, key=lambda e: e.frame_id)
            self.buffer.remove(entry)
            self._current = entry.frame_id
            self._current_done = float(entry.elements_done)
            return
        if candidate is None and not self.enable_rollforward:
            candidate = self._newest_unstarted()
        if candidate is not None:
            self._unstarted.pop()  # the candidate is always the newest entry
            self._current = candidate
            self._current_done = 0.0
        else:
            self._current = None
            self._current_done = 0.0

    # -- allocator hooks -------------------------------------------------------

    def allocate(self, income_uw: float, stored_uj: float, tick: int) -> List[int]:
        self._advance_arrivals(tick)
        if self._current is None:
            self._pick_current()
        self._idle = self._current is None
        buffered = [e.frame_id for e in self.buffer]
        self.pending_lanes = len(buffered) if self.enable_simd else 0
        lanes = super().allocate(income_uw, stored_uj, tick)
        # Newest suspended frames first: importance decays with age.
        self._lane_frames = sorted(buffered, reverse=True)[: len(lanes) - 1]
        return lanes

    def notify_executed(self, tick: int, lane_bits: List[int], instructions_per_lane: int) -> None:
        elements = instructions_per_lane / self.instr_per_element
        if self._idle or self._current is None:
            self._idle_instructions += instructions_per_lane * len(lane_bits)
            return
        record = self.records[self._current]
        self._current_done = self._fill(
            record, self._current_done, elements, lane_bits[0]
        )
        if self._current_done >= self.n_elements:
            record.completed_tick = tick
            if self.tracer.events:
                self.tracer.instant(
                    "frame.completed",
                    tick=tick,
                    cat="executive",
                    args={"frame_id": record.frame_id, "incidental": False},
                )
            self._current = None
        for frame_id, bits in zip(self._lane_frames, lane_bits[1:]):
            done = self._lane_done.get(frame_id)
            if done is None:
                entry = self._buffer_entry(frame_id)
                done = float(entry.elements_done) if entry is not None else 0.0
            lane_record = self.records[frame_id]
            done = self._fill(lane_record, done, elements, bits)
            self._lane_done[frame_id] = done
            if done >= self.n_elements:
                lane_record.completed_tick = tick
                lane_record.completed_incidentally = True
                if self.tracer.events:
                    self.tracer.instant(
                        "frame.completed",
                        tick=tick,
                        cat="executive",
                        args={"frame_id": frame_id, "incidental": True},
                    )
                entry = self._buffer_entry(frame_id)
                if entry is not None:
                    self.buffer.remove(entry)
                self._lane_done.pop(frame_id, None)

    def _fill(self, record: FrameRecord, done: float, elements: float, bits: int) -> float:
        start = int(done)
        new_done = min(float(self.n_elements), done + elements)
        stop = int(new_done) if new_done < self.n_elements else self.n_elements
        if stop > start:
            record.element_bits[start:stop] = bits
        return new_done

    def _buffer_entry(self, frame_id: int) -> Optional[ResumePoint]:
        for entry in self.buffer:
            if entry.frame_id == frame_id:
                return entry
        return None

    def notify_backup(self, tick: int) -> None:
        # Adopted lanes fall back into the buffer with updated progress
        # (or lose their partial frame under per-frame recover points).
        for frame_id, done in self._lane_done.items():
            entry = self._buffer_entry(frame_id)
            if entry is None:
                continue
            if self.recover_placement == "frame":
                self.records[frame_id].element_bits[:] = 0
                self.buffer.update(entry, elements_done=0)
            elif int(done) > entry.elements_done:
                self.buffer.update(entry, elements_done=int(done))
        self._lane_done.clear()
        self._lane_frames = []
        # The interrupted current frame becomes incidental. With the
        # recover point in the frame loop, a suspension can only resume
        # from the frame's start: the partial results are lost.
        if self._current is not None and not self.records[self._current].completed:
            if self.recover_placement == "frame":
                self.records[self._current].element_bits[:] = 0
                kept_progress = 0
            else:
                kept_progress = int(self._current_done)
            evicted = self.buffer.push(
                ResumePoint(
                    pc=FRAME_LOOP_PC,
                    frame_id=self._current,
                    elements_done=kept_progress,
                    register_version=1 + (self._current % 3),
                )
            )
            if evicted is not None:
                self.records[evicted.frame_id].abandoned = True
                if self.tracer.events:
                    self.tracer.instant(
                        "frame.abandoned",
                        tick=tick,
                        cat="executive",
                        args={"frame_id": evicted.frame_id},
                    )
        self._current = None
        self._current_done = 0.0
        self._last_backup_tick = tick

    def notify_restore(self, tick: int) -> None:
        self._advance_arrivals(tick)
        if self._last_backup_tick is not None:
            outage = tick - self._last_backup_tick
            for entry in self.buffer:
                record = self.records[entry.frame_id]
                record.exposures.append((outage, entry.elements_done))
            self._last_backup_tick = None
        # Roll-forward (or roll-back) happens at the next allocate().

    def notify_degraded_restore(self, tick: int, outcome: RestoreOutcome) -> None:
        """React to a degraded hardened restore (device resilience).

        * ``silent`` — corrupted state was restored undetected: every
          buffered frame's already-computed prefix is garbage, modeled
          by re-scoring those elements at the 1-bit worst-case budget
          (a quality hit with no availability hit).
        * ``fallback_previous`` — the newest checkpoint failed its
          guard; the most recent suspension loses the progress its
          epoch covered and is recomputed from scratch (an availability
          hit with quality preserved).
        * ``rollforward`` — no checkpoint validated: every buffered
          suspension is reset and execution rolls forward from the
          newest input, which the incidental model makes safe.
        """
        if outcome.kind == "silent":
            for entry in self.buffer:
                done = int(entry.elements_done)
                if done > 0:
                    self.records[entry.frame_id].element_bits[:done] = 1
            return
        if outcome.kind == "fallback_previous":
            targets = [max(self.buffer, key=lambda e: e.frame_id)] if self.buffer else []
        elif outcome.kind == "rollforward":
            targets = list(self.buffer)
        else:
            return
        for entry in targets:
            record = self.records[entry.frame_id]
            record.element_bits[:] = 0
            # The partial results are discarded, so decay exposures
            # recorded against them no longer apply to the recompute.
            record.exposures.clear()
            self.buffer.update(entry, elements_done=0)

    # -- top level ----------------------------------------------------------------

    def run(self, engine: str = "reference") -> ExecutiveResult:
        """Simulate the trace; returns the executive's full record.

        ``engine`` selects the implementation: ``"reference"`` (the
        default) drives the per-tick :class:`NVPSystemSimulator` loop;
        ``"auto"``/``"fast"`` use the bit-exact replay of
        :mod:`repro.core.fastexec` (results are identical by contract,
        enforced by ``tests/test_executive_equivalence.py``). Either
        way the executive is consumed: construct a fresh one per run.

        With a device-resilience config attached the fast replay does
        not model the fault/validation semantics, so ``"auto"`` and
        ``"fast"`` route to the reference loop (bit-identical for a
        rate-0 unpriced config, by the differential suite).
        """
        if engine not in ("auto", "fast", "reference"):
            raise SimulationError(
                f"engine must be 'auto', 'fast' or 'reference', got {engine!r}"
            )
        if engine != "reference" and self.processor.resilience is None:
            from .fastexec import fast_executive_run

            return fast_executive_run(self)
        sim = NVPSystemSimulator(
            self.trace, self.processor, self, config=self.config
        ).run()
        # Anything still buffered at the end is neither completed nor
        # abandoned; it simply ran out of trace.
        return ExecutiveResult(
            sim=sim,
            frames=tuple(self.records),
            idle_instructions=self._idle_instructions,
        )

    # -- recompute-and-combine integration ---------------------------------------

    def refine_frame(
        self,
        frame_id: int,
        passes: int = 2,
        minbits: Optional[int] = None,
    ):
        """Recompute-and-combine one frame's output (Section 8.5).

        The escape hatch for "interesting" incidental results: re-runs
        the frame ``passes`` times at dynamic precision drawn from this
        executive's own power trace and merges by ``higherbits``.
        Returns the :class:`~repro.core.recompute.RecomputeOutcome`.
        """
        from .recompute import RecomputeAndCombine, schedule_from_trace

        pragma = self.program.incidental
        floor = pragma.minbits if minbits is None else minbits
        schedule = schedule_from_trace(
            self.trace, floor, pragma.maxbits, config=self.config
        )
        rac = RecomputeAndCombine(
            self.program.kernel, floor, pragma.maxbits, seed=self.seed + 77
        )
        image = self.images[frame_id % len(self.images)]
        return rac.run(image, passes, schedule)

    # -- post-hoc quality --------------------------------------------------------

    def frame_quality(
        self,
        result: ExecutiveResult,
        min_coverage: float = 1.0,
        apply_retention_decay: bool = True,
    ) -> List[FrameQuality]:
        """Replay recorded bit schedules through the kernel and score.

        Only frames with coverage at least ``min_coverage`` are scored
        (partial frames have no meaningful full-image PSNR). Retention
        decay is injected for every recorded outage exposure. The heavy
        lifting lives in :func:`replay_frame_quality`, which memoizes
        identical ``(kernel, bit-schedule, exposure, seed)`` tuples
        across frames and grid points.
        """
        policy = (
            None
            if self.precise_backup or not apply_retention_decay
            else self.program.retention_policy(time_scale=self.retention_time_scale)
        )
        scores = replay_frame_quality(
            self.program.kernel,
            self.images,
            result.frames,
            policy=policy,
            seed=self.seed,
            min_coverage=min_coverage,
        )
        tracer = self.tracer
        if tracer.enabled:
            for score in scores:
                tracer.metrics.observe("frame.psnr_db", score.psnr_db, PSNR_DB_BUCKETS)
                if tracer.events:
                    tracer.instant(
                        "frame.quality",
                        tick=result.frames[score.frame_id].arrival_tick,
                        cat="executive",
                        args={
                            "frame_id": score.frame_id,
                            "psnr_db": score.psnr_db,
                            "mean_bits": score.mean_bits,
                            "incidental": score.completed_incidentally,
                        },
                    )
        return scores


# -- memoized post-hoc quality replay ------------------------------------------
#
# Replaying one frame is a pure function of (kernel, image, bit schedule,
# exposures, seeds, retention policy): the approximate-datapath context is
# seeded per frame, and so is the retention-failure model — each frame
# gets its own decay stream derived from the run seed and the frame id,
# so scores do not depend on which other frames were scored before them.
# That purity is what makes the replay memoizable across grid points:
# fig24/fig28-style sweeps score the same frames under many policies and
# profiles, and identical tuples are served from the memo.

_QUALITY_MEMO: Dict[tuple, Tuple[float, float]] = {}
_EXACT_MEMO: Dict[tuple, np.ndarray] = {}

#: Offset multiplier decoupling the per-frame decay stream from the
#: per-frame ApproxContext stream (which uses ``seed + frame_id``).
_FAILURE_SEED_STRIDE = 7919


def clear_quality_memo() -> None:
    """Drop every memoized frame-quality / exact-reference entry."""
    _QUALITY_MEMO.clear()
    _EXACT_MEMO.clear()


def _image_key(image: np.ndarray) -> tuple:
    data = np.ascontiguousarray(image)
    digest = hashlib.sha256(data.tobytes()).hexdigest()
    return (digest, data.shape, str(data.dtype))


def _policy_key(policy) -> Optional[tuple]:
    if policy is None:
        return None
    return (
        type(policy).__name__,
        hashlib.sha256(
            np.ascontiguousarray(policy.retention_profile_ticks()).tobytes()
        ).hexdigest(),
    )


def _exact_reference(kernel, image: np.ndarray, image_key: tuple) -> np.ndarray:
    key = (kernel.name, image_key)
    cached = _EXACT_MEMO.get(key)
    if cached is None:
        cached = _EXACT_MEMO.setdefault(key, kernel.run_exact(image))
    return cached


def replay_frame_quality(
    kernel,
    images: Sequence[np.ndarray],
    frames: Sequence[FrameRecord],
    policy=None,
    seed: int = 0,
    min_coverage: float = 1.0,
) -> List[FrameQuality]:
    """Score recorded frames through the kernel's approximate datapath.

    ``policy`` is the retention policy whose decay corrupts exposed
    partial results (``None`` disables decay injection). Each frame is
    replayed with an independent, frame-id-derived seed for both the
    datapath noise and the decay stream, then memoized by content:
    identical tuples — same kernel, image, element-bit schedule,
    exposures and seeds — are computed once per process.
    """
    pol_key = _policy_key(policy)
    scores: List[FrameQuality] = []
    for record in frames:
        if record.coverage < min_coverage or record.element_bits.max(initial=0) == 0:
            continue
        image = images[record.frame_id % len(images)]
        ctx_seed = seed + record.frame_id
        failure_seed = (
            seed + _FAILURE_SEED_STRIDE * (record.frame_id + 1)
            if (policy is not None and record.exposures)
            else None
        )
        img_key = _image_key(image)
        memo_key = (
            kernel.name,
            img_key,
            record.element_bits.tobytes(),
            tuple(record.exposures),
            ctx_seed,
            failure_seed,
            pol_key,
        )
        cached = _QUALITY_MEMO.get(memo_key)
        if cached is None:
            bits = record.element_bits.astype(np.int64).copy()
            bits[bits == 0] = 1  # uncomputed elements: worst-case budget
            ctx = ApproxContext(alu_bits=bits, mem_bits=8, seed=ctx_seed)
            output = kernel.run(image, ctx)
            if failure_seed is not None:
                failure_model = RetentionFailureModel(policy, seed=failure_seed)
                flat = output.reshape(-1).copy()
                for outage_ticks, elements_done in record.exposures:
                    if elements_done <= 0:
                        continue
                    region = flat[: min(elements_done, flat.size)]
                    flat[: region.size] = failure_model.corrupt_words(
                        region, outage_ticks
                    )
                output = flat.reshape(output.shape)
            reference = _exact_reference(kernel, image, img_key)
            cached = (compute_psnr(reference, output), compute_mse(reference, output))
            _QUALITY_MEMO[memo_key] = cached
        scores.append(
            FrameQuality(
                frame_id=record.frame_id,
                psnr_db=cached[0],
                mse=cached[1],
                coverage=record.coverage,
                mean_bits=record.mean_bits,
                completed_incidentally=record.completed_incidentally,
            )
        )
    return scores
