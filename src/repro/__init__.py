"""repro — Incidental Computing on IoT Nonvolatile Processors.

A full-system behavioral reproduction of Ma et al., "Incidental
Computing on IoT Nonvolatile Processors" (MICRO-50, 2017): an
energy-harvesting substrate, an STT-RAM retention model, a behavioral
8051-class nonvolatile processor, a two-layer system simulator, ten
MiBench-class workload kernels with approximation hooks, and the
paper's contribution — incidental roll-forward computing with
approximate SIMD lanes, recompute-and-combine, and retention-shaped
approximate backup.

Quick start::

    from repro import IncidentalExecutive, AnnotatedProgram
    from repro.core.pragmas import IncidentalPragma, RecoverFromPragma
    from repro.energy import standard_profile
    from repro.kernels import MedianKernel, frame_sequence

    program = AnnotatedProgram(MedianKernel(), [
        IncidentalPragma("src", 2, 8, "linear"),
        RecoverFromPragma("frame"),
    ])
    trace = standard_profile(1)
    result = IncidentalExecutive(program, trace, frame_sequence(8, 32)).run()
    print(result.sim.describe())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-figure reproduction status.
"""

from .errors import ReproError
from .core import (
    AnnotatedProgram,
    IncidentalExecutive,
    ExecutiveResult,
    RecomputeAndCombine,
)
from .energy import PowerTrace, standard_profile, standard_profiles
from .system import NVPSystemSimulator, SimulationResult, simulate_fixed_bits

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "AnnotatedProgram",
    "IncidentalExecutive",
    "ExecutiveResult",
    "RecomputeAndCombine",
    "PowerTrace",
    "standard_profile",
    "standard_profiles",
    "NVPSystemSimulator",
    "SimulationResult",
    "simulate_fixed_bits",
    "__version__",
]
