"""Kernel abstraction and the approximation context.

Every kernel exposes ``run(image, ctx)`` where ``ctx`` is an
:class:`ApproxContext` carrying the two bit budgets of Section 8.1:

* ``alu_bits`` — reliable bits of the datapath; the low bits of each
  ALU result are *noise* (gradient-VDD model, Figures 11-12);
* ``mem_bits`` — reliable bits of the data memory; the low bits of
  stored values are *truncated* (Figures 13-14).

Either budget may be a scalar (fixed-bitwidth study) or a 1-D schedule
that is laid out over the kernel's element processing order (dynamic
bitwidth, Figures 17-19): element ``k`` of the output is computed with
the budget that was available during the ``k``-th powered tick.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from ..nvp.datapath import ApproximateALU
from ..nvp.memory_approx import memory_truncate_bits

__all__ = ["ApproxContext", "Kernel", "exact_context"]

_BitSpec = Union[int, np.ndarray]


class ApproxContext:
    """Bit budgets and noise source for one approximate kernel run.

    Parameters
    ----------
    alu_bits / mem_bits:
        Scalar budget in ``[1, word_bits]``, or a 1-D array of budgets
        (a schedule) that is tiled over the kernel's elements in
        processing order.
    seed:
        Seed of the ALU low-bit noise; fixed per experiment so results
        are reproducible.
    """

    def __init__(
        self,
        alu_bits: _BitSpec = 8,
        mem_bits: _BitSpec = 8,
        word_bits: int = 8,
        seed: int = 0,
    ) -> None:
        self.word_bits = check_int_in_range(word_bits, "word_bits", 1, 32, exc=KernelError)
        self.alu_bits = self._check_bits(alu_bits, "alu_bits")
        self.mem_bits = self._check_bits(mem_bits, "mem_bits")
        self.alu = ApproximateALU(word_bits=self.word_bits, seed=seed)
        self.seed = int(seed)

    def _check_bits(self, bits: _BitSpec, name: str) -> _BitSpec:
        if isinstance(bits, (int, np.integer)) and not isinstance(bits, bool):
            return check_int_in_range(int(bits), name, 1, self.word_bits, exc=KernelError)
        arr = np.asarray(bits)
        if arr.ndim != 1 or arr.size == 0:
            raise KernelError(f"{name} schedule must be a non-empty 1-D array")
        if not np.issubdtype(arr.dtype, np.integer):
            raise KernelError(f"{name} schedule must hold integers")
        if arr.min() < 1 or arr.max() > self.word_bits:
            raise KernelError(f"{name} schedule values must lie in [1, {self.word_bits}]")
        return arr.astype(np.int64)

    @property
    def is_exact(self) -> bool:
        """True when both budgets are the full word width."""
        return (
            isinstance(self.alu_bits, int)
            and isinstance(self.mem_bits, int)
            and self.alu_bits == self.word_bits
            and self.mem_bits == self.word_bits
        )

    def _layout(self, bits: _BitSpec, shape) -> _BitSpec:
        """Lay a budget out over an output of ``shape``.

        Scalars pass through; schedules are tiled (the buffered frame
        is processed element-by-element in raster order, wrapping if
        the schedule is shorter than the frame — the system keeps
        running into the next frame with whatever power comes next).
        """
        if isinstance(bits, (int, np.integer)):
            return int(bits)
        n = int(np.prod(shape))
        reps = -(-n // bits.size)  # ceil division
        tiled = np.tile(bits, reps)[:n]
        return tiled.reshape(shape)

    def alu_bits_for(self, shape) -> _BitSpec:
        """Per-element ALU budget for an output of ``shape``."""
        return self._layout(self.alu_bits, shape)

    def mem_bits_for(self, shape) -> _BitSpec:
        """Per-element memory budget for an output of ``shape``."""
        return self._layout(self.mem_bits, shape)

    # -- the two approximation primitives, shape-aware -------------------

    def load(self, values: np.ndarray) -> np.ndarray:
        """Read ``values`` through the approximate memory (truncation)."""
        values = np.asarray(values, dtype=np.int64)
        return memory_truncate_bits(
            values, self.mem_bits_for(values.shape), word_bits=self.word_bits
        )

    def alu_result(self, values: np.ndarray) -> np.ndarray:
        """Pass an exact intermediate through the approximate ALU once."""
        values = np.asarray(values, dtype=np.int64)
        return self.alu.passthrough(values, self.alu_bits_for(values.shape))

    def mean_bits(self) -> float:
        """Mean of the ALU budget (scalar or schedule)."""
        if isinstance(self.alu_bits, (int, np.integer)):
            return float(self.alu_bits)
        return float(np.mean(self.alu_bits))


def exact_context(word_bits: int = 8) -> ApproxContext:
    """A full-precision context (the 8-bit non-approximate baseline)."""
    return ApproxContext(alu_bits=word_bits, mem_bits=word_bits, word_bits=word_bits)


class Kernel(ABC):
    """A workload kernel with approximate-execution hooks.

    Subclasses implement :meth:`run`; the base class supplies the exact
    baseline, iteration structure (for the incidental executive) and
    instruction-cost estimates (for the system simulator).
    """

    #: Registry name, e.g. ``"sobel"``.
    name: str = "abstract"
    #: Estimated committed instructions per output element on the
    #: 8051-class NVP (drives frame-time and energy accounting).
    instructions_per_element: int = 40

    @abstractmethod
    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Execute the kernel under the given approximation context."""

    def run_exact(self, image: np.ndarray) -> np.ndarray:
        """Full-precision reference output (the quality baseline)."""
        return self.run(image, exact_context())

    # -- structure used by the incidental executive -----------------------

    def output_elements(self, image: np.ndarray) -> int:
        """Number of output elements one frame produces."""
        image = np.asarray(image)
        return int(image.shape[0] * image.shape[1])

    def instructions_per_frame(self, image: np.ndarray) -> int:
        """Estimated instructions to process one frame."""
        return self.output_elements(image) * self.instructions_per_element

    @staticmethod
    def _check_gray(image: np.ndarray) -> np.ndarray:
        """Validate and convert a grayscale uint8-range image."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise KernelError(f"expected a 2-D grayscale image, got shape {image.shape}")
        if image.shape[0] < 4 or image.shape[1] < 4:
            raise KernelError("image must be at least 4x4")
        if not np.issubdtype(image.dtype, np.integer):
            raise KernelError("image must have an integer dtype")
        if image.min() < 0 or image.max() > 255:
            raise KernelError("image values must lie in [0, 255]")
        return image.astype(np.int64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
