"""3x3 median filter (the paper's running `median` example, Figure 8).

Median filtering is *rank-based*: the datapath only uses arithmetic to
*compare* neighbourhood values, and the selected output is an exact
stored pixel. Noisy comparisons occasionally pick the wrong rank, but
the chosen value is still a real neighbourhood pixel, so the error is
bounded by local contrast. This is why the paper finds median usable
even at a 1-bit budget (PSNR above 20 dB, Figure 12) and sets its QoS
target at 50 dB with modest ``minbits`` (Table 2).
"""

from __future__ import annotations

import numpy as np

from .base import ApproxContext, Kernel

__all__ = ["MedianKernel"]


class MedianKernel(Kernel):
    """3x3 median filter via rank selection with approximate compares."""

    name = "median"
    # 9 loads + a ~19-comparison median network per pixel.
    instructions_per_element = 52

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Median of each 3x3 neighbourhood."""
        image = self._check_gray(image)
        loaded = ctx.load(image)
        padded = np.pad(loaded, 1, mode="edge")
        h, w = loaded.shape

        stack = np.empty((9, h, w), dtype=np.int64)
        index = 0
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                stack[index] = padded[1 + dr : 1 + dr + h, 1 + dc : 1 + dc + w]
                index += 1

        # Comparison keys pass through the approximate ALU; the *data*
        # does not. Each comparison is one subtraction through the
        # approximate adder, so a key carries signed noise of one
        # quantum — not full low-bit randomisation.
        bits = ctx.alu_bits_for((h, w))
        # One batched pass over the whole (9, h, w) stack: the RNG fills
        # the batch in C order, consuming the exact stream the previous
        # per-plane loop did, and the noise math is elementwise — the
        # keys are bit-identical, 9x fewer datapath calls.
        keys = ctx.alu.add_signed_noise(stack, bits)

        order = np.argsort(keys, axis=0, kind="stable")
        median_index = order[4]
        rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        return stack[median_index, rows, cols]
