"""Workload kernels.

From-scratch implementations of the image-signal-processing and
pattern-matching kernels the paper evaluates (MiBench-class: sobel,
median, integral, the three SUSAN variants, JPEG encode with motion
estimation, tiff2bw, tiff2rgba, FFT), each with hooks for the paper's
two approximation mechanisms — the noisy-low-bits approximate ALU and
the truncating approximate memory — and support for per-element dynamic
bit schedules.
"""

from .base import ApproxContext, Kernel, exact_context
from .images import test_scene, frame_sequence, rgb_scene, SCENE_KINDS, save_pgm, load_pgm
from .sobel import SobelKernel
from .median import MedianKernel
from .integral import IntegralKernel
from .susan import SusanSmoothingKernel, SusanEdgesKernel, SusanCornersKernel
from .jpeg import JPEGEncodeKernel, JPEGResult
from .tiff import Tiff2BWKernel, Tiff2RGBAKernel
from .fft import FFTKernel
from .matching import TemplateMatchKernel
from .registry import KERNEL_NAMES, create_kernel, all_kernels

__all__ = [
    "ApproxContext",
    "Kernel",
    "exact_context",
    "test_scene",
    "frame_sequence",
    "rgb_scene",
    "SCENE_KINDS",
    "save_pgm",
    "load_pgm",
    "SobelKernel",
    "MedianKernel",
    "IntegralKernel",
    "SusanSmoothingKernel",
    "SusanEdgesKernel",
    "SusanCornersKernel",
    "JPEGEncodeKernel",
    "JPEGResult",
    "Tiff2BWKernel",
    "Tiff2RGBAKernel",
    "FFTKernel",
    "TemplateMatchKernel",
    "KERNEL_NAMES",
    "create_kernel",
    "all_kernels",
]
