"""Kernel registry: names, factories, and suite enumeration.

The Figure 28 suite runs ten kernels; this registry maps each paper
testbench name to its implementation and the instruction mix used for
energy accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import KernelError
from ..nvp.isa import DEFAULT_MIX, KERNEL_MIXES, InstructionMix
from .base import Kernel
from .fft import FFTKernel
from .integral import IntegralKernel
from .jpeg import JPEGEncodeKernel
from .median import MedianKernel
from .sobel import SobelKernel
from .susan import SusanCornersKernel, SusanEdgesKernel, SusanSmoothingKernel
from .matching import TemplateMatchKernel
from .tiff import Tiff2BWKernel, Tiff2RGBAKernel

__all__ = ["KERNEL_NAMES", "create_kernel", "all_kernels", "kernel_mix"]

_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "sobel": SobelKernel,
    "median": MedianKernel,
    "integral": IntegralKernel,
    "susan_corners": SusanCornersKernel,
    "susan_edges": SusanEdgesKernel,
    "susan_smoothing": SusanSmoothingKernel,
    "jpeg_encode": JPEGEncodeKernel,
    "tiff2bw": Tiff2BWKernel,
    "tiff2rgba": Tiff2RGBAKernel,
    "fft": FFTKernel,
    # Extension workload (Section 2.1's "pattern matching"); not part
    # of the Figure 28 suite.
    "template_match": TemplateMatchKernel,
}

#: The Figure 28 testbench suite, in the paper's plotting order.
KERNEL_NAMES: Tuple[str, ...] = (
    "sobel",
    "median",
    "integral",
    "susan_corners",
    "susan_edges",
    "susan_smoothing",
    "jpeg_encode",
    "tiff2bw",
    "tiff2rgba",
    "fft",
)


def create_kernel(name: str) -> Kernel:
    """Instantiate a kernel by its registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def all_kernels() -> List[Kernel]:
    """Instantiate the whole Figure 28 suite in order."""
    return [create_kernel(name) for name in KERNEL_NAMES]


def kernel_mix(name: str) -> InstructionMix:
    """Instruction mix of a kernel (default mix when not profiled)."""
    if name not in _FACTORIES:
        raise KernelError(f"unknown kernel {name!r}")
    return KERNEL_MIXES.get(name, DEFAULT_MIX)
