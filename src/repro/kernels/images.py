"""Deterministic synthetic test scenes.

The paper's camera frames are not available, so quality experiments run
on synthetic scenes with realistic spatial structure: smooth gradients
(flat regions), geometric shapes (edges and corners for sobel/SUSAN),
band-limited texture, and frame sequences with a moving object (for
JPEG motion estimation and the incidental frame buffer). All scenes are
seeded and therefore exactly reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .._validation import check_choice, check_int_in_range
from ..errors import KernelError

__all__ = [
    "SCENE_KINDS",
    "test_scene",
    "frame_sequence",
    "rgb_scene",
    "save_pgm",
    "load_pgm",
]

#: Available scene kinds.
SCENE_KINDS: Tuple[str, ...] = ("gradient", "shapes", "texture", "mixed")


def _smooth_noise(shape: Tuple[int, int], rng: np.random.Generator, scale: int) -> np.ndarray:
    """Band-limited noise: white noise box-blurred ``scale`` times."""
    noise = rng.normal(0.0, 1.0, size=shape)
    for _ in range(scale):
        noise = (
            noise
            + np.roll(noise, 1, axis=0)
            + np.roll(noise, -1, axis=0)
            + np.roll(noise, 1, axis=1)
            + np.roll(noise, -1, axis=1)
        ) / 5.0
    span = noise.max() - noise.min()
    if span <= 0.0:
        return np.zeros(shape)
    return (noise - noise.min()) / span


def _gradient(shape: Tuple[int, int]) -> np.ndarray:
    """A diagonal illumination gradient in [0, 1]."""
    rows = np.linspace(0.0, 1.0, shape[0])[:, None]
    cols = np.linspace(0.0, 1.0, shape[1])[None, :]
    return 0.6 * rows + 0.4 * cols


def _shapes(shape: Tuple[int, int], rng: np.random.Generator, n_shapes: int = 6) -> np.ndarray:
    """Random bright rectangles and disks on a dark field, in [0, 1]."""
    canvas = np.zeros(shape)
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w]
    for _ in range(n_shapes):
        level = rng.uniform(0.35, 1.0)
        if rng.random() < 0.5:
            r0, c0 = rng.integers(0, h - 2), rng.integers(0, w - 2)
            r1 = rng.integers(r0 + 1, min(h, r0 + max(2, h // 3)))
            c1 = rng.integers(c0 + 1, min(w, c0 + max(2, w // 3)))
            canvas[r0:r1, c0:c1] = level
        else:
            cy, cx = rng.integers(0, h), rng.integers(0, w)
            radius = rng.integers(2, max(3, min(h, w) // 5))
            disk = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
            canvas[disk] = level
    return canvas


def test_scene(size: int = 64, kind: str = "mixed", seed: int = 7) -> np.ndarray:
    """Generate a ``size`` x ``size`` grayscale scene in [0, 255].

    Parameters
    ----------
    kind:
        ``"gradient"`` — smooth only; ``"shapes"`` — hard edges;
        ``"texture"`` — band-limited noise; ``"mixed"`` — all three
        (the default used across the quality experiments).
    """
    size = check_int_in_range(size, "size", 8, 4096, exc=KernelError)
    kind = check_choice(kind, "kind", SCENE_KINDS, exc=KernelError)
    rng = np.random.default_rng(seed)
    shape = (size, size)
    if kind == "gradient":
        field = _gradient(shape)
    elif kind == "shapes":
        field = 0.15 + 0.85 * _shapes(shape, rng)
    elif kind == "texture":
        field = _smooth_noise(shape, rng, scale=3)
    else:  # mixed
        field = (
            0.45 * _gradient(shape)
            + 0.40 * _shapes(shape, rng)
            + 0.15 * _smooth_noise(shape, rng, scale=2)
        )
    return np.clip(np.round(field * 255.0), 0, 255).astype(np.int64)


def frame_sequence(
    n_frames: int, size: int = 64, seed: int = 7, step: int = 2
) -> List[np.ndarray]:
    """A buffered frame sequence with a moving object.

    Produces what the paper's frame buffer holds: consecutive sensor
    frames with no data dependence between them — a static background
    plus a bright square translating ``step`` pixels per frame and mild
    per-frame sensor noise. Used by JPEG motion estimation and by the
    incidental executive's roll-forward experiments.
    """
    n_frames = check_int_in_range(n_frames, "n_frames", 1, 10_000, exc=KernelError)
    size = check_int_in_range(size, "size", 8, 4096, exc=KernelError)
    step = check_int_in_range(step, "step", 0, size, exc=KernelError)
    rng = np.random.default_rng(seed)
    background = (
        0.55 * _gradient((size, size)) + 0.45 * _smooth_noise((size, size), rng, scale=3)
    )
    side = max(4, size // 6)
    frames = []
    for k in range(n_frames):
        frame = background.copy()
        top = (5 + k * step) % (size - side)
        left = (9 + k * step) % (size - side)
        frame[top : top + side, left : left + side] = 0.95
        sensor_noise = rng.normal(0.0, 0.008, size=frame.shape)
        frame = np.clip(frame + sensor_noise, 0.0, 1.0)
        frames.append(np.round(frame * 255.0).astype(np.int64))
    return frames


def rgb_scene(size: int = 64, seed: int = 7) -> np.ndarray:
    """A ``size`` x ``size`` x 3 RGB scene in [0, 255] (for tiff2bw)."""
    size = check_int_in_range(size, "size", 8, 4096, exc=KernelError)
    rng = np.random.default_rng(seed)
    shape = (size, size)
    channels = [
        0.5 * _gradient(shape) + 0.5 * _shapes(shape, rng),
        0.6 * _smooth_noise(shape, rng, scale=2) + 0.4 * _gradient(shape)[::-1],
        0.5 * _shapes(shape, rng) + 0.5 * _smooth_noise(shape, rng, scale=3),
    ]
    stacked = np.stack(channels, axis=-1)
    return np.clip(np.round(stacked * 255.0), 0, 255).astype(np.int64)


def save_pgm(image: np.ndarray, path) -> None:
    """Write a grayscale image as a binary PGM (P5) file.

    The paper's Figures 11/13/17/26 are visual outputs; this lets the
    benchmark harness archive inspectable equivalents without any
    plotting dependency.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise KernelError(f"PGM needs a 2-D grayscale image, got {image.shape}")
    clipped = np.clip(image, 0, 255).astype(np.uint8)
    header = f"P5\n{clipped.shape[1]} {clipped.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(clipped.tobytes())


def load_pgm(path) -> np.ndarray:
    """Read back a binary PGM (P5) written by :func:`save_pgm`."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(b"P5"):
        raise KernelError(f"{path!r} is not a binary PGM file")
    parts = data.split(b"\n", 3)
    if len(parts) < 4:
        raise KernelError(f"{path!r} has a malformed PGM header")
    width, height = (int(v) for v in parts[1].split())
    pixels = np.frombuffer(parts[3][: width * height], dtype=np.uint8)
    return pixels.reshape(height, width).astype(np.int64)
