"""Sobel edge detection (MiBench `sobel`).

Gradient magnitude from the 3x3 Sobel operators. The kernel's output is
a *difference* of neighbouring pixels, so low-bit ALU noise — which is
comparable in magnitude to typical gradients — destroys the output
quickly: the paper finds sobel "cannot achieve even 20 dB with anything
less than full precision" (Section 8.1), and Table 2 accordingly sets
its QoS target at only 8 dB. That sensitivity emerges naturally here:
each pixel fetch feeds the convolution through the approximate
datapath, and the noisy taps are then differenced.
"""

from __future__ import annotations

import numpy as np

from .base import ApproxContext, Kernel

__all__ = ["SobelKernel"]


class SobelKernel(Kernel):
    """3x3 Sobel gradient-magnitude filter."""

    name = "sobel"
    # ~9 loads, 10 adds/subs, 2 abs, 1 scale per pixel on the 8051.
    instructions_per_element = 46

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Gradient magnitude, clipped to [0, 255]."""
        image = self._check_gray(image)
        loaded = ctx.load(image)
        padded = np.pad(loaded, 1, mode="edge")

        # The nine neighbourhood taps, each fetched through the noisy
        # datapath once (one register move per tap).
        taps = {}
        h, w = loaded.shape
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                window = padded[1 + dr : 1 + dr + h, 1 + dc : 1 + dc + w]
                taps[(dr, dc)] = ctx.alu_result(window)

        gx = (
            (taps[(-1, 1)] + 2 * taps[(0, 1)] + taps[(1, 1)])
            - (taps[(-1, -1)] + 2 * taps[(0, -1)] + taps[(1, -1)])
        )
        gy = (
            (taps[(1, -1)] + 2 * taps[(1, 0)] + taps[(1, 1)])
            - (taps[(-1, -1)] + 2 * taps[(-1, 0)] + taps[(-1, 1)])
        )
        magnitude = np.abs(gx) + np.abs(gy)
        # The 8051 datapath scales the 0..2040 magnitude back into a
        # byte with a shift.
        scaled = np.clip(magnitude >> 3, 0, 255)
        return ctx.alu_result(scaled)
