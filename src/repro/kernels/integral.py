"""Integral-image kernel (the paper's `integral` testbench).

Computes the integral image (2-D prefix sum) and renders it as the
normalised local box mean, which is how integral images are consumed by
downstream detectors. Summation *averages out* zero-mean ALU noise, so
the kernel tolerates very low bit budgets: the paper reports above
20 dB even at 1 bit and 40 dB by 4-6 bits (Figure 12), and Table 2 runs
it at ``minbits = 2`` with no recomputation.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from .base import ApproxContext, Kernel

__all__ = ["IntegralKernel"]


class IntegralKernel(Kernel):
    """Integral image rendered as a normalised box-mean."""

    name = "integral"
    # Two adds + a load/store per pixel for the prefix sums, plus the
    # four-corner box lookup.
    instructions_per_element = 24

    def __init__(self, window: int = 8) -> None:
        self.window = check_int_in_range(window, "window", 1, 64, exc=KernelError)

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Local ``window`` x ``window`` mean via the integral image."""
        image = self._check_gray(image)
        addends = ctx.alu_result(ctx.load(image))

        # Prefix sums in the wide accumulator (the 8051 chains 8-bit
        # adds with carry; the noise already entered via the addends).
        integral = np.cumsum(np.cumsum(addends, axis=0), axis=1)
        padded = np.zeros(
            (integral.shape[0] + 1, integral.shape[1] + 1), dtype=np.int64
        )
        padded[1:, 1:] = integral

        h, w = image.shape
        win = min(self.window, h, w)
        r0 = np.clip(np.arange(h) - win // 2, 0, h - win)
        c0 = np.clip(np.arange(w) - win // 2, 0, w - win)
        r1, c1 = r0 + win, c0 + win
        box = (
            padded[np.ix_(r1, c1)]
            - padded[np.ix_(r0, c1)]
            - padded[np.ix_(r1, c0)]
            + padded[np.ix_(r0, c0)]
        )
        mean = box // (win * win)
        return np.clip(mean, 0, 255)
