"""Template-matching kernel (extension workload).

Section 2.1 motivates the evaluation with "more complex data processing
like pattern matching and image processing"; the Figure 28 suite covers
the image-processing side, and this kernel adds the pattern-matching
side: sliding-window template matching by sum of absolute differences
(the same SAD core as JPEG motion estimation, scaled up to a detection
map).

Output: a response map in [0, 255] where 255 marks a perfect template
match — directly usable by the incidental executive like any other
frame kernel. Approximation enters through the SAD operands (approximate
subtractors), so low bit budgets blur the response map's peak without
moving it far — the asymmetric recall/precision behaviour Section 6
describes as the recomputation trigger.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from .base import ApproxContext, Kernel
from .images import test_scene

__all__ = ["TemplateMatchKernel"]


class TemplateMatchKernel(Kernel):
    """Sliding-window SAD template matching.

    Parameters
    ----------
    template:
        The pattern to find (small grayscale patch). Defaults to a
        deterministic 6x6 corner-like patch.
    stride:
        Search stride; 1 evaluates every position.
    """

    name = "template_match"
    # One SAD over the template per output element.
    instructions_per_element = 120

    def __init__(self, template: Optional[np.ndarray] = None, stride: int = 1) -> None:
        if template is None:
            patch = test_scene(8, "shapes", seed=5)[1:7, 1:7]
            template = patch
        template = np.asarray(template)
        if template.ndim != 2 or min(template.shape) < 2:
            raise KernelError("template must be a 2-D patch of at least 2x2")
        if not np.issubdtype(template.dtype, np.integer):
            raise KernelError("template must have an integer dtype")
        self.template = template.astype(np.int64)
        self.stride = check_int_in_range(stride, "stride", 1, 8, exc=KernelError)

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Match-response map, same shape as the input.

        Positions whose window falls off the image respond 0. Response
        is ``255 - scaled_SAD``, clipped, so the best match is
        brightest.
        """
        image = self._check_gray(image)
        th, tw = self.template.shape
        h, w = image.shape
        if th > h or tw > w:
            raise KernelError(
                f"template {self.template.shape} larger than image {image.shape}"
            )
        loaded = ctx.load(image)
        bits = ctx.alu_bits_for((h, w))
        bits_arr = np.broadcast_to(np.asarray(bits), (h, w))

        # SAD via the approximate datapath: both operands pass the
        # noisy subtractor once per window, vectorised over positions
        # by accumulating shifted differences.
        out_h, out_w = h - th + 1, w - tw + 1
        sad = np.zeros((out_h, out_w), dtype=np.int64)
        noisy = ctx.alu.passthrough(loaded, bits_arr)
        for dr in range(th):
            for dc in range(tw):
                window = noisy[dr : dr + out_h, dc : dc + out_w]
                sad += np.abs(window - int(self.template[dr, dc]))
        if self.stride > 1:
            mask = np.zeros_like(sad, dtype=bool)
            mask[:: self.stride, :: self.stride] = True
            sad = np.where(mask, sad, sad.max(initial=0))

        # Scale SAD into the byte range relative to the worst case.
        worst = 255 * th * tw
        response = 255 - (sad * 255) // max(1, worst // 4)
        response = np.clip(response, 0, 255)
        out = np.zeros((h, w), dtype=np.int64)
        out[:out_h, :out_w] = response
        return out

    def best_match(self, response: np.ndarray):
        """(row, col) of the strongest response in a map from :meth:`run`."""
        response = np.asarray(response)
        index = int(np.argmax(response))
        return np.unravel_index(index, response.shape)
