"""SUSAN smoothing, edge and corner kernels (MiBench `susan`).

SUSAN (Smallest Univalue Segment Assimilating Nucleus) compares each
pixel's neighbourhood against the centre ("nucleus") with a brightness
threshold: neighbours within the threshold form the USAN area. The
three MiBench variants share that core:

* **smoothing** — average of the similar neighbours (structure-
  preserving blur);
* **edges**     — edge strength ``max(0, g - usan_area)`` with the
  geometric threshold ``g`` at 3/4 of the maximum area;
* **corners**   — corner strength with the tighter ``g`` at 1/2 of the
  maximum area.

The brightness *differences* run through the approximate datapath
(like sobel), but the downstream use is a threshold *count* (like
median's ranks), which buffers some of the noise — putting the SUSAN
kernels' approximation tolerance between sobel's and median's, as the
per-kernel spread of Figure 28 reflects.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from .base import ApproxContext, Kernel

__all__ = ["SusanSmoothingKernel", "SusanEdgesKernel", "SusanCornersKernel"]


class _SusanBase(Kernel):
    """Shared USAN machinery for the three SUSAN variants."""

    #: 5x5 pseudo-circular mask offsets (the classic 37-pixel SUSAN
    #: mask trimmed to a 24-neighbour disk for the 8051's loop budget).
    _OFFSETS = [
        (dr, dc)
        for dr in range(-2, 3)
        for dc in range(-2, 3)
        if (dr, dc) != (0, 0) and dr * dr + dc * dc <= 5
    ]

    def __init__(self, brightness_threshold: int = 20) -> None:
        self.brightness_threshold = check_int_in_range(
            brightness_threshold, "brightness_threshold", 1, 255, exc=KernelError
        )

    def _usan(self, image: np.ndarray, ctx: ApproxContext):
        """Return (similar_mask_stack, neighbour_stack, usan_area)."""
        loaded = ctx.load(image)
        padded = np.pad(loaded, 2, mode="edge")
        h, w = loaded.shape
        nucleus = ctx.alu_result(loaded)
        bits = ctx.alu_bits_for((h, w))

        neighbours = np.empty((len(self._OFFSETS), h, w), dtype=np.int64)
        similar = np.empty((len(self._OFFSETS), h, w), dtype=bool)
        for k, (dr, dc) in enumerate(self._OFFSETS):
            window = padded[2 + dr : 2 + dr + h, 2 + dc : 2 + dc + w]
            neighbours[k] = window
            # |I(r) - I(r0)| computed by the approximate subtractor.
            diff = np.abs(ctx.alu.passthrough(window, bits) - nucleus)
            similar[k] = diff <= self.brightness_threshold
        usan_area = similar.sum(axis=0)
        return similar, neighbours, usan_area

    @property
    def max_area(self) -> int:
        """Largest possible USAN area (all neighbours similar)."""
        return len(self._OFFSETS)


class SusanSmoothingKernel(_SusanBase):
    """SUSAN structure-preserving smoothing."""

    name = "susan_smoothing"
    instructions_per_element = 96

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Average of USAN (similar) neighbours; centre kept when alone."""
        image = self._check_gray(image)
        similar, neighbours, usan_area = self._usan(image, ctx)
        sums = (neighbours * similar).sum(axis=0)
        out = np.where(usan_area > 0, sums // np.maximum(usan_area, 1), image)
        return np.clip(out, 0, 255)


class SusanEdgesKernel(_SusanBase):
    """SUSAN edge-response kernel."""

    name = "susan_edges"
    instructions_per_element = 88

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Edge strength ``max(0, g - usan_area)`` scaled to [0, 255]."""
        image = self._check_gray(image)
        _, _, usan_area = self._usan(image, ctx)
        g = (3 * self.max_area) // 4
        response = np.maximum(0, g - usan_area)
        scaled = np.clip(response * 255 // max(1, g), 0, 255)
        return ctx.alu_result(scaled)


class SusanCornersKernel(_SusanBase):
    """SUSAN corner-response kernel."""

    name = "susan_corners"
    instructions_per_element = 92

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Corner strength with the tighter geometric threshold."""
        image = self._check_gray(image)
        _, _, usan_area = self._usan(image, ctx)
        g = self.max_area // 2
        response = np.maximum(0, g - usan_area)
        scaled = np.clip(response * 255 // max(1, g), 0, 255)
        return ctx.alu_result(scaled)
