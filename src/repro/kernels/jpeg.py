"""JPEG encode with motion estimation (MiBench `jpeg.encode.mbw`).

The full encode path: (optional) block motion estimation against the
previous buffered frame, 8x8 DCT of the residual, quantisation with the
standard JPEG luminance table, zigzag scan, and exact entropy-coded
size accounting with the standard (Annex K) DC/AC Huffman tables —
run/size codes, ZRL and EOB included — which is the compressed-output-
size QoS metric of Table 2.

Following the paper, approximation is applied **only to motion
estimation** ("In the JPEG encoding testbench we apply incidental
computing only on motion estimation, wherein approximation-induced
error affects only the size of the compressed output"): noisy SAD
comparisons pick slightly worse motion vectors, the residual grows, and
the compressed stream gets larger — but reconstruction stays faithful
because the chosen (suboptimal) prediction is encoded exactly. The QoS
target is an output no more than 50 % larger than the full-precision
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from .base import ApproxContext, Kernel, exact_context

__all__ = ["JPEGEncodeKernel", "JPEGResult"]

#: Standard JPEG luminance quantisation table (Annex K).
_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)


def _zigzag_order() -> np.ndarray:
    """Flat indices of the 8x8 zigzag scan."""
    order = sorted(
        ((r, c) for r in range(8) for c in range(8)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 else rc[0]),
    )
    return np.array([r * 8 + c for r, c in order], dtype=np.int64)


_ZIGZAG = _zigzag_order()


def _dct_matrix() -> np.ndarray:
    """The 8-point DCT-II basis matrix."""
    k = np.arange(8)
    basis = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / 16.0)
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    return basis * 0.5


_DCT = _dct_matrix()


def _build_dc_code_lengths() -> Dict[int, int]:
    """Standard JPEG luminance DC Huffman code lengths (Annex K.3.1)."""
    lengths = [2, 3, 3, 3, 3, 3, 4, 5, 6, 7, 8, 9]
    return {category: lengths[category] for category in range(12)}


def _build_ac_code_lengths() -> Dict[Tuple[int, int], int]:
    """Standard JPEG luminance AC Huffman code lengths (Annex K.3.2).

    Maps (zero-run, size-category) to the Huffman code length in bits.
    Derived from the spec's BITS/HUFFVAL lists: values are assigned to
    code lengths in order, 'bits[l]' values of length 'l'.
    """
    bits = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
    huffval = [
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41,
        0x06, 0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91,
        0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0, 0x24,
        0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A,
        0x25, 0x26, 0x27, 0x28, 0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38,
        0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x53,
        0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66,
        0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
        0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93,
        0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
        0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7,
        0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9,
        0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1,
        0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2,
        0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ]
    lengths: Dict[Tuple[int, int], int] = {}
    index = 0
    for length in range(1, 17):
        for _ in range(bits[length - 1]):
            symbol = huffval[index]
            lengths[(symbol >> 4, symbol & 0x0F)] = length
            index += 1
    return lengths


#: Standard Huffman code lengths used for exact size accounting.
_DC_CODE_LENGTHS = _build_dc_code_lengths()
_AC_CODE_LENGTHS = _build_ac_code_lengths()
#: (15, 0) is ZRL (a run of 16 zeros); (0, 0) is EOB.
_ZRL_BITS = _AC_CODE_LENGTHS[(15, 0)]
_EOB_BITS = _AC_CODE_LENGTHS[(0, 0)]


@dataclass(frozen=True)
class JPEGResult:
    """Outcome of one frame encode."""

    size_bits: int
    reconstructed: np.ndarray
    motion_vectors: Optional[np.ndarray]

    def size_ratio(self, baseline_bits: int) -> float:
        """Compressed size relative to a baseline encode."""
        if baseline_bits <= 0:
            raise KernelError("baseline_bits must be positive")
        return self.size_bits / baseline_bits


def _coefficient_category(values: np.ndarray) -> np.ndarray:
    """JPEG size category: bits needed for the magnitude."""
    magnitudes = np.abs(values)
    categories = np.zeros_like(magnitudes)
    nonzero = magnitudes > 0
    categories[nonzero] = np.floor(np.log2(magnitudes[nonzero])).astype(np.int64) + 1
    return categories


class JPEGEncodeKernel(Kernel):
    """Block-based JPEG encoder with optional motion estimation.

    Parameters
    ----------
    search_range:
        Motion-search window half-width in pixels (exhaustive search
        with ``search_step`` stride).
    search_step:
        Stride of the motion search grid.
    """

    name = "jpeg_encode"
    instructions_per_element = 64
    BLOCK = 8

    def __init__(self, search_range: int = 4, search_step: int = 2) -> None:
        self.search_range = check_int_in_range(search_range, "search_range", 0, 16, exc=KernelError)
        self.search_step = check_int_in_range(search_step, "search_step", 1, 8, exc=KernelError)

    # -- public API -------------------------------------------------------

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Intra-frame encode/decode round trip (no motion)."""
        return self.encode(image, prev_frame=None, ctx=ctx).reconstructed

    def encode(
        self,
        frame: np.ndarray,
        prev_frame: Optional[np.ndarray],
        ctx: Optional[ApproxContext] = None,
    ) -> JPEGResult:
        """Encode ``frame`` (inter-coded against ``prev_frame`` if given)."""
        if ctx is None:
            ctx = exact_context()
        frame = self._check_gray(frame)
        h, w = frame.shape
        if h % self.BLOCK or w % self.BLOCK:
            raise KernelError(
                f"frame dimensions must be multiples of {self.BLOCK}, got {frame.shape}"
            )
        if prev_frame is not None:
            prev_frame = self._check_gray(prev_frame)
            if prev_frame.shape != frame.shape:
                raise KernelError("prev_frame shape must match frame shape")
            prediction, vectors = self._motion_estimate(frame, prev_frame, ctx)
        else:
            prediction = np.zeros_like(frame)
            vectors = None

        residual = frame - prediction  # signed, |r| <= 255
        size_bits = 0
        reconstructed = np.zeros_like(frame)
        prev_dc = 0
        for top in range(0, h, self.BLOCK):
            for left in range(0, w, self.BLOCK):
                block = residual[top : top + self.BLOCK, left : left + self.BLOCK]
                coeffs = _DCT @ (block.astype(np.float64) - 0.0) @ _DCT.T
                quant = np.round(coeffs / _LUMA_QUANT).astype(np.int64)
                size_bits += self._entropy_size_bits(quant, prev_dc)
                prev_dc = int(quant[0, 0])
                decoded = _DCT.T @ (quant * _LUMA_QUANT).astype(np.float64) @ _DCT
                recon = np.round(decoded).astype(np.int64) + prediction[
                    top : top + self.BLOCK, left : left + self.BLOCK
                ]
                reconstructed[top : top + self.BLOCK, left : left + self.BLOCK] = np.clip(
                    recon, 0, 255
                )
        if vectors is not None:
            # Each motion vector costs ~6 bits (two small components).
            size_bits += 6 * vectors.shape[0] * vectors.shape[1]
        return JPEGResult(
            size_bits=int(size_bits), reconstructed=reconstructed, motion_vectors=vectors
        )

    # -- internals ---------------------------------------------------------

    def _motion_estimate(
        self, frame: np.ndarray, prev: np.ndarray, ctx: ApproxContext
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block exhaustive SAD search with approximate comparisons."""
        h, w = frame.shape
        blocks_r, blocks_c = h // self.BLOCK, w // self.BLOCK
        vectors = np.zeros((blocks_r, blocks_c, 2), dtype=np.int64)
        prediction = np.zeros_like(frame)
        offsets = range(-self.search_range, self.search_range + 1, self.search_step)
        bits = ctx.alu_bits_for((blocks_r, blocks_c))
        bits_arr = np.broadcast_to(np.asarray(bits), (blocks_r, blocks_c))

        for br in range(blocks_r):
            for bc in range(blocks_c):
                top, left = br * self.BLOCK, bc * self.BLOCK
                block = frame[top : top + self.BLOCK, left : left + self.BLOCK]
                block_bits = int(bits_arr[br, bc])
                best_sad = None
                best = (0, 0)
                for dr in offsets:
                    for dc in offsets:
                        r0, c0 = top + dr, left + dc
                        if r0 < 0 or c0 < 0 or r0 + self.BLOCK > h or c0 + self.BLOCK > w:
                            continue
                        candidate = prev[r0 : r0 + self.BLOCK, c0 : c0 + self.BLOCK]
                        # The SAD runs on approximate adders: both
                        # operands pass the noisy datapath.
                        diff = ctx.alu.passthrough(
                            block, block_bits
                        ) - ctx.alu.passthrough(candidate, block_bits)
                        sad = int(np.abs(diff).sum())
                        if best_sad is None or sad < best_sad:
                            best_sad = sad
                            best = (dr, dc)
                vectors[br, bc] = best
                r0, c0 = top + best[0], left + best[1]
                prediction[top : top + self.BLOCK, left : left + self.BLOCK] = prev[
                    r0 : r0 + self.BLOCK, c0 : c0 + self.BLOCK
                ]
        return prediction, vectors

    def _entropy_size_bits(self, quant_block: np.ndarray, prev_dc: int) -> int:
        """Exact JPEG entropy-coded size of one quantised block.

        Uses the standard (Annex K) luminance Huffman tables: the DC
        difference costs its category's code plus the magnitude bits;
        each AC coefficient costs its (run, size) code plus magnitude
        bits, with ZRL codes for zero-runs of 16+ and an EOB marker.
        """
        flat = quant_block.ravel()[_ZIGZAG]
        dc_category = int(_coefficient_category(np.array([flat[0] - prev_dc]))[0])
        dc_category = min(dc_category, 11)
        size = _DC_CODE_LENGTHS[dc_category] + dc_category

        run = 0
        last_nonzero = 0
        ac = flat[1:]
        nonzero_positions = np.flatnonzero(ac)
        if nonzero_positions.size:
            last_nonzero = int(nonzero_positions[-1]) + 1
        for coefficient in ac[:last_nonzero]:
            if coefficient == 0:
                run += 1
                continue
            while run > 15:
                size += _ZRL_BITS
                run -= 16
            category = int(_coefficient_category(np.array([coefficient]))[0])
            category = min(category, 10)
            size += _AC_CODE_LENGTHS[(run, category)] + category
            run = 0
        if last_nonzero < ac.size:
            size += _EOB_BITS
        return size
