"""tiff2bw and tiff2rgba conversion kernels (MiBench `tiff` tools).

Per-pixel colour-space conversions: ``tiff2bw`` reduces RGB to
luminance with the ITU weights (integer multiply-accumulate), and
``tiff2rgba`` expands grayscale to RGBA with gamma-ish channel scaling.
Both are streaming one-pass kernels whose error under approximation is
per-pixel and unamplified — the best-behaved workloads in the Figure 28
suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .base import ApproxContext, Kernel

__all__ = ["Tiff2BWKernel", "Tiff2RGBAKernel"]


class Tiff2BWKernel(Kernel):
    """RGB -> luminance with integer ITU-601 weights (77, 150, 29)."""

    name = "tiff2bw"
    instructions_per_element = 14

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Luminance image; input must be (H, W, 3) in [0, 255]."""
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[-1] != 3:
            raise KernelError(f"tiff2bw expects an (H, W, 3) image, got {image.shape}")
        if not np.issubdtype(image.dtype, np.integer):
            raise KernelError("image must have an integer dtype")
        if image.min() < 0 or image.max() > 255:
            raise KernelError("image values must lie in [0, 255]")
        rgb = image.astype(np.int64)
        shape = rgb.shape[:2]
        bits = ctx.alu_bits_for(shape)

        r = ctx.load(rgb[..., 0])
        g = ctx.load(rgb[..., 1])
        b = ctx.load(rgb[..., 2])
        # Three multiply-shift MACs on the approximate datapath.
        luma = (
            ctx.alu.mul_shift(r, np.full(shape, 77), 8, bits)
            + ctx.alu.mul_shift(g, np.full(shape, 150), 8, bits)
            + ctx.alu.mul_shift(b, np.full(shape, 29), 8, bits)
        )
        return np.clip(luma, 0, 255)

    def output_elements(self, image: np.ndarray) -> int:
        image = np.asarray(image)
        return int(image.shape[0] * image.shape[1])


class Tiff2RGBAKernel(Kernel):
    """Grayscale -> RGBA expansion with per-channel scaling."""

    name = "tiff2rgba"
    instructions_per_element = 12

    #: Integer channel gains (Q8): a warm-tint expansion, so the three
    #: colour planes differ and approximation error is visible per
    #: channel.
    CHANNEL_GAINS = (255, 230, 200)

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """RGBA image of shape (H, W, 4); alpha is opaque 255."""
        image = self._check_gray(image)
        gray = ctx.load(image)
        shape = gray.shape
        bits = ctx.alu_bits_for(shape)

        channels = [
            np.clip(
                ctx.alu.mul_shift(gray, np.full(shape, gain), 8, bits), 0, 255
            )
            for gain in self.CHANNEL_GAINS
        ]
        alpha = np.full(shape, 255, dtype=np.int64)
        return np.stack(channels + [alpha], axis=-1)
