"""Row-wise fixed-point FFT kernel (MiBench `FFT`).

Each image row is treated as a real signal; a radix-2
decimation-in-time FFT with Q7 twiddle factors and per-stage scaling
(the classic overflow-safe embedded formulation) produces a magnitude
spectrum, log-compressed into the 8-bit output range. This is the
"spectrum analysis" workload of the paper's gas-sensing / water-quality
motivation.

Approximation enters every butterfly: the add/sub/multiply results
carry low-bit datapath noise (signed, one quantum wide). Because the
noise is injected log2(N) times per sample and the spectrum spans a
large dynamic range, FFT sits mid-field in approximation tolerance —
the paper recommends the *linear* retention policy for FFT-like
kernels (Section 3.2).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int_in_range
from ..errors import KernelError
from .base import ApproxContext, Kernel

__all__ = ["FFTKernel"]


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation for in-order radix-2 DIT input shuffling."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_indices |= ((indices >> b) & 1) << (bits - 1 - b)
    return reversed_indices


class FFTKernel(Kernel):
    """Row-wise radix-2 fixed-point FFT with log-magnitude output."""

    name = "fft"
    # log2(N) stages x (1 complex MAC + 2 adds) per sample.
    instructions_per_element = 72

    #: Q-format of the twiddle factors.
    TWIDDLE_SHIFT = 7

    def run(self, image: np.ndarray, ctx: ApproxContext) -> np.ndarray:
        """Log-magnitude row spectra, same shape as the input."""
        image = self._check_gray(image)
        h, w = image.shape
        if w & (w - 1):
            raise KernelError(f"row length must be a power of two, got {w}")
        loaded = ctx.load(image)
        bits = ctx.alu_bits_for((h, w))

        perm = _bit_reverse_permutation(w)
        real = loaded[:, perm].astype(np.int64)
        imag = np.zeros_like(real)

        scale = 1 << self.TWIDDLE_SHIFT
        half = w // 2
        stage_size = 2
        while stage_size <= w:
            m = stage_size // 2
            angles = -2.0 * np.pi * np.arange(m) / stage_size
            tw_re = np.round(np.cos(angles) * scale).astype(np.int64)
            tw_im = np.round(np.sin(angles) * scale).astype(np.int64)

            starts = np.arange(0, w, stage_size)
            top = (starts[:, None] + np.arange(m)[None, :]).ravel()
            bottom = top + m

            # Twiddle multiply of the bottom inputs (Q7 fixed point).
            br, bi = real[:, bottom], imag[:, bottom]
            tr = np.tile(tw_re, starts.size)
            ti = np.tile(tw_im, starts.size)
            prod_re = (br * tr - bi * ti) >> self.TWIDDLE_SHIFT
            prod_im = (br * ti + bi * tr) >> self.TWIDDLE_SHIFT

            stage_bits = bits[:, : top.size] if isinstance(bits, np.ndarray) else bits
            prod_re = ctx.alu.add_signed_noise(prod_re, stage_bits)
            prod_im = ctx.alu.add_signed_noise(prod_im, stage_bits)

            ar, ai = real[:, top], imag[:, top]
            # Per-stage >>1 scaling keeps the fixed-point range bounded.
            real[:, top] = (ar + prod_re) >> 1
            imag[:, top] = (ai + prod_im) >> 1
            real[:, bottom] = (ar - prod_re) >> 1
            imag[:, bottom] = (ai - prod_im) >> 1
            stage_size *= 2

        magnitude = np.sqrt(real.astype(np.float64) ** 2 + imag.astype(np.float64) ** 2)
        # Log compression into the display byte, as the testbench's
        # output stage does.
        compressed = np.log1p(magnitude) * (255.0 / np.log1p(255.0))
        out = np.clip(np.round(compressed), 0, 255).astype(np.int64)
        return ctx.alu_result(out)
