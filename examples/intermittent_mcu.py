"""Instruction-level intermittent execution on the 8051 interpreter.

Drives the functional-simulator layer directly: an assembly kernel
(USAN-style threshold counting) executes under a real harvested power
trace, backing up its complete machine state at every power emergency
and resuming bit-exactly — "persistent progress even if only one
instruction successfully completes between power interruptions".

The run bursts are taken from the system simulator's RUN periods for
profile 2, so the interruption schedule is the one the power profile
actually produces.

Run:  python examples/intermittent_mcu.py
"""

import numpy as np

from repro.energy import standard_profile
from repro.nvp import MCU8051
from repro.nvp import programs as P
from repro.nvp.energy_model import CYCLES_PER_TICK
from repro.system import simulate_fixed_bits


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.integers(0, 256, 200)
    program = P.threshold_count_program(200, 128)

    # Golden, uninterrupted run.
    golden = MCU8051(program)
    golden.load_xram(P.INPUT_A, data)
    outcome = golden.run()
    golden_count = int(golden.read_xram(P.OUTPUT, 1)[0])
    print(
        f"uninterrupted: {outcome.instructions} instructions, "
        f"{outcome.cycles} cycles, {outcome.energy_uj:.2f} uJ, "
        f"count = {golden_count}"
    )

    # Extract the RUN bursts the power profile actually grants.
    trace = standard_profile(2)
    sim = simulate_fixed_bits(trace, 8)
    on_ticks = np.flatnonzero(sim.bit_schedule > 0)
    bursts = np.split(on_ticks, np.flatnonzero(np.diff(on_ticks) > 1) + 1)
    burst_cycles = [len(b) * CYCLES_PER_TICK for b in bursts if len(b)]
    print(
        f"\npower profile 2 grants {len(burst_cycles)} run bursts "
        f"(median {int(np.median(burst_cycles))} cycles)"
    )

    # Intermittent run: execute burst by burst with a full NV backup
    # and restore around every outage.
    machine = MCU8051(program)
    machine.load_xram(P.INPUT_A, data)
    backups = 0
    for cycles in burst_cycles:
        machine.run(max_cycles=cycles)
        if machine.halted:
            break
        state = machine.snapshot()      # backup at the power emergency
        machine = MCU8051(program)      # ...the core loses power...
        machine.restore(state)          # ...and restores on recovery
        backups += 1
    if not machine.halted:
        machine.run()  # grant the tail if the trace ran out first

    count = int(machine.read_xram(P.OUTPUT, 1)[0])
    print(
        f"intermittent: {backups} backup/restore cycles, "
        f"count = {count}"
    )
    print("bit-exact across every interruption:", count == golden_count
          and machine.register_dump() == golden.register_dump())


if __name__ == "__main__":
    main()
