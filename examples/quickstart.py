"""Quickstart: the paper's Figure 8 running example, end to end.

Annotates the median kernel with the two incidental pragmas, runs it
over standard power profile 1 with the incidental executive, and
compares forward progress against a precise 8-bit NVP.

Run:  python examples/quickstart.py
"""

from repro import AnnotatedProgram, IncidentalExecutive, simulate_fixed_bits
from repro.energy import standard_profile
from repro.kernels import MedianKernel, frame_sequence
from repro.nvp.isa import KERNEL_MIXES


def main() -> None:
    # The programmer's role (Section 5): mark the frame buffer as
    # approximable within [2, 8] bits under the linear retention policy,
    # and roll forward to the newest frame after power failures.
    program = AnnotatedProgram.from_source(
        MedianKernel(),
        [
            "#pragma ac incidental (src,2,8,linear);",
            "unsigned char src[RowSize][ColSize];",
            "#pragma ac incidental_recover_from(frame);",
            "for (unsigned int frame=0; frame < 3000; frame++) ...",
        ],
    )
    print("Annotated program:")
    for line in program.source_form():
        print("   ", line)

    # A 10 s wristwatch-harvester power trace and a buffered frame
    # stream (a new 12x12 sensor frame every 800 ms).
    trace = standard_profile(1)
    frames = frame_sequence(12, 12, seed=7)
    executive = IncidentalExecutive(
        program, trace, frames, frame_period_ticks=8_000
    )
    result = executive.run()

    print(f"\nTrace: {trace!r}")
    print("Incidental NVP:", result.sim.describe())
    print(
        f"  frames: {len(result.frames)} arrived, "
        f"{result.frames_completed} completed "
        f"({result.frames_completed_incidentally} on incidental lanes), "
        f"{result.frames_abandoned} abandoned"
    )

    baseline = simulate_fixed_bits(trace, 8, mix=KERNEL_MIXES["median"])
    print("Precise 8-bit NVP:", baseline.describe())

    gain = result.useful_progress / baseline.forward_progress
    print(f"\nForward-progress gain of incidental computing: {gain:.2f}x")
    print("(the paper's Figure 28 reports ~4.3x on its RTL platform)")

    scores = executive.frame_quality(result)
    if scores:
        print("\nCompleted-frame quality (vs the kernel's exact output):")
        for score in scores[:8]:
            tag = "incidental" if score.completed_incidentally else "current"
            print(
                f"  frame {score.frame_id:2d} [{tag:10s}] "
                f"PSNR {score.psnr_db:5.1f} dB at mean {score.mean_bits:.1f} bits"
            )


if __name__ == "__main__":
    main()
