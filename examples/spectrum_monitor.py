"""Water-quality spectrum monitor: dynamic bitwidth + policy choice.

The paper motivates image/signal kernels with gas sensing and water
quality monitoring ("spectrum analysis"). This example runs the FFT
kernel as a spectrum analyser on a harvested supply, comparing fixed
bitwidths against dynamic bitwidth, and shows how the recommended
retention policy differs between an energetic profile (1: linear) and
a weak one (5: parabola) per Section 8.6's guidance.

Run:  python examples/spectrum_monitor.py
"""

import numpy as np

from repro import simulate_fixed_bits
from repro.core.controller import DynamicBitAllocator
from repro.energy import standard_profile
from repro.kernels import ApproxContext, FFTKernel, test_scene
from repro.nvm.retention import LinearRetention, ParabolaRetention
from repro.nvp.processor import NonvolatileProcessor
from repro.quality import psnr
from repro.system import NVPSystemSimulator, SystemConfig


def main() -> None:
    kernel = FFTKernel()
    signal = test_scene(64, "texture", seed=21)  # sensor waveform rows
    reference = kernel.run_exact(signal)

    trace = standard_profile(1)
    print("== fixed vs dynamic bitwidth (profile 1, FFT) ==")
    for bits in (8, 6, 4):
        sim = simulate_fixed_bits(trace, bits)
        output = kernel.run(signal, ApproxContext(alu_bits=bits, seed=2))
        print(
            f"  fixed {bits}-bit : FP={sim.forward_progress:6d}  "
            f"PSNR={psnr(reference, output):5.1f} dB"
        )

    config = SystemConfig()
    allocator = DynamicBitAllocator(4, 8, capacity_uj=config.capacitor_uj)
    dynamic = NVPSystemSimulator(
        trace, NonvolatileProcessor(), allocator, config=config
    ).run()
    schedule = dynamic.active_bit_series()
    output = kernel.run(signal, ApproxContext(alu_bits=np.clip(schedule, 4, 8), seed=2))
    print(
        f"  dynamic [4..8]: FP={dynamic.forward_progress:6d}  "
        f"PSNR={psnr(reference, output):5.1f} dB  "
        f"(mean active bits {dynamic.mean_active_bits():.1f})"
    )

    print("\n== retention-policy choice per profile (Section 8.6) ==")
    for pid, policy in ((1, LinearRetention()), (5, ParabolaRetention())):
        profile = standard_profile(pid)
        precise = simulate_fixed_bits(profile, 8)
        shaped = simulate_fixed_bits(profile, 8, policy=policy)
        gain = shaped.forward_progress / max(1, precise.forward_progress)
        print(
            f"  profile {pid} ({profile.mean_power_uw:4.1f} uW avg) with "
            f"{policy.name:8s}: FP gain {gain:.2f}x, "
            f"backups {precise.backup_count} -> {shaped.backup_count}"
        )


if __name__ == "__main__":
    main()
