"""The programmer's QoS tuning loop (Section 8.6, Table 2).

"The programmers should first decide the minbits to make the QoS above
the QoS threshold, then reduce the minbits, and try to fine-tune the
incidental backup policy and the recompute times to compensate the QoS
loss."

This example automates that debug-test-modify loop for one kernel: it
sweeps minbits x backup policy x recompute passes, scores QoS and
forward progress for each, and prints the frontier — ending at a tuned
configuration like the paper's Table 2 rows.

Run:  python examples/qos_tuning.py [kernel] [target_psnr]
"""

import sys

from repro import simulate_fixed_bits
from repro.analysis.reporting import format_table
from repro.core.recompute import RecomputeAndCombine, schedule_from_trace
from repro.energy import standard_profile
from repro.kernels import create_kernel, test_scene
from repro.nvm.retention import policy_by_name
from repro.nvp.isa import KERNEL_MIXES
from repro.nvp.isa import DEFAULT_MIX


def main() -> None:
    kernel_name = sys.argv[1] if len(sys.argv) > 1 else "median"
    target_psnr = float(sys.argv[2]) if len(sys.argv) > 2 else 50.0
    kernel = create_kernel(kernel_name)
    image = test_scene(64, "mixed", seed=7)
    trace = standard_profile(1)
    mix = KERNEL_MIXES.get(kernel_name, DEFAULT_MIX)

    rows = []
    best = None
    for minbits in (2, 3, 4, 6):
        schedule = schedule_from_trace(trace, minbits, 8)
        for passes in (1, 2, 3):
            outcome = RecomputeAndCombine(kernel, minbits, 8, seed=9).run(
                image, passes, schedule
            )
            quality = outcome.psnr_per_pass[-1]
            for policy_name in ("linear", "log", "parabola"):
                shaped = simulate_fixed_bits(
                    trace, 8, policy=policy_by_name(policy_name), mix=mix
                )
                met = quality >= target_psnr
                rows.append(
                    (
                        minbits,
                        passes - 1,
                        policy_name,
                        round(quality, 1),
                        shaped.forward_progress,
                        met,
                    )
                )
                if met and (best is None or shaped.forward_progress > best[4]):
                    best = rows[-1]

    print(f"QoS tuning for {kernel_name!r}, target PSNR {target_psnr:g} dB\n")
    print(
        format_table(
            ("minbits", "recompute", "backup", "PSNR_dB", "FP", "met"), rows
        )
    )
    if best is None:
        print("\nNo configuration met the target; raise minbits or passes.")
    else:
        print(
            f"\nTuned pick (Table 2 style): minbits={best[0]}, "
            f"recompute {best[1]} times, backup={best[2]} "
            f"-> {best[3]} dB at FP {best[4]}"
        )


if __name__ == "__main__":
    main()
