"""Battery-less wearable camera: incidental capture + RAC refinement.

The intro's motivating deployment: a batteryless camera buffers frames
faster than the NVP can process them. Incidental computing produces
*some* (low-quality) output for old frames instead of abandoning them;
when an incidental output looks "interesting" (here: strong edge
content), recompute-and-combine passes lift its quality without ever
interrupting the processing of new data.

Run:  python examples/wearable_camera.py
"""

import numpy as np

from repro import AnnotatedProgram, IncidentalExecutive, RecomputeAndCombine
from repro.core.pragmas import IncidentalPragma, RecoverFromPragma
from repro.core.recompute import schedule_from_trace
from repro.energy import standard_profile
from repro.kernels import SusanEdgesKernel, frame_sequence
from repro.quality import psnr


def main() -> None:
    kernel = SusanEdgesKernel()
    program = AnnotatedProgram(
        kernel,
        [
            IncidentalPragma("src", 3, 8, "linear"),
            RecoverFromPragma("frame"),
        ],
    )

    trace = standard_profile(2)  # a sporadic, spiky day
    frames = frame_sequence(10, 8, seed=11)
    executive = IncidentalExecutive(
        program, trace, frames, frame_period_ticks=15_000, seed=3
    )
    result = executive.run()
    print("Camera session:", result.sim.describe())
    print(
        f"frames completed: {result.frames_completed} "
        f"(incidental: {result.frames_completed_incidentally}), "
        f"abandoned: {result.frames_abandoned}"
    )

    scores = executive.frame_quality(result)
    if not scores:
        print("No frame completed on this trace segment; try a longer trace.")
        return

    # "Interestingness": edge mass of the (possibly low-quality) output.
    def interest(score):
        image = frames[score.frame_id % len(frames)]
        return int(kernel.run_exact(image).sum())

    candidate = max(scores, key=interest)
    image = frames[candidate.frame_id % len(frames)]
    print(
        f"\nmost interesting frame: {candidate.frame_id} "
        f"(incidental quality {candidate.psnr_db:.1f} dB)"
    )

    # recompute(buf, 4) + assemble(buf, higherbits), applied over the
    # same harvested-power budget (Section 8.5).
    schedule = schedule_from_trace(trace, minbits=4)
    rac = RecomputeAndCombine(kernel, minbits=4, seed=5)
    outcome = rac.run(image, passes=4, schedule=schedule)

    print("recompute-and-combine passes:")
    for index, quality in enumerate(outcome.psnr_per_pass, start=1):
        print(f"  pass {index}: PSNR {quality:5.1f} dB")
    reference = kernel.run_exact(image)
    print(
        f"final refined output: {psnr(reference, outcome.final_output):.1f} dB "
        f"(mean stored precision {outcome.final_precision.mean_bits():.1f} bits)"
    )


if __name__ == "__main__":
    main()
