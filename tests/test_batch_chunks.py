"""Chunk-sharded batch tier: planning properties and invariance.

Chunking is a memory/scheduling concern only — the contract under test
is that ANY partition of a grid into chunks (any lane budget, any byte
budget, any lane order, pooled or in-process dispatch) produces
bit-identical results and byte-identical cache entries versus the
unchunked batch tier, while ``chunk_lane_indices`` itself stays a
deterministic, lane-covering, budget-respecting pure function.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import telemetry
from repro.analysis import engine as engine_mod
from repro.analysis.engine import (
    ExecutiveTask,
    FixedBitTask,
    GridSpec,
    ResultCache,
    executive_results_equal,
    run_executive_grid,
    run_grid,
    simulation_results_equal,
)
from repro.system.batchsim import (
    _PLAN_BYTES_PER_TICK,
    batch_available,
    chunk_lane_indices,
    estimate_plan_bytes,
)

pytestmark = [pytest.mark.batch, pytest.mark.fleet]


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine_mod.reset()
    engine_mod.configure(use_cache=False)
    yield
    engine_mod.reset()


class TestChunkPlanning:
    def test_no_budgets_single_chunk(self):
        assert chunk_lane_indices([5, 9, 2]) == [[0, 1, 2]]

    def test_empty(self):
        assert chunk_lane_indices([]) == []
        assert chunk_lane_indices([], max_lanes=4) == []

    def test_lane_budget_respected(self):
        chunks = chunk_lane_indices([10, 10, 10, 10, 10], max_lanes=2)
        assert sorted(i for c in chunks for i in c) == [0, 1, 2, 3, 4]
        assert all(len(c) <= 2 for c in chunks)

    def test_byte_budget_respected(self):
        # 4 lanes x 1000 ticks; budget fits two padded lanes per chunk.
        budget = 2 * 1000 * _PLAN_BYTES_PER_TICK
        chunks = chunk_lane_indices([1000] * 4, max_bytes=budget)
        assert all(
            estimate_plan_bytes([1000] * len(c)) <= budget for c in chunks
        )
        assert sorted(i for c in chunks for i in c) == [0, 1, 2, 3]

    def test_oversized_group_still_admitted(self):
        # One lane alone above the byte budget must still get a chunk.
        chunks = chunk_lane_indices([10_000], max_bytes=1)
        assert chunks == [[0]]

    def test_length_similar_lanes_share_chunks(self):
        # Longest-first packing keeps one long lane from padding every
        # short lane: shorts end up in their own chunk(s).
        lengths = [100_000] + [1_000] * 6
        budget = 3 * 100_000 * _PLAN_BYTES_PER_TICK
        chunks = chunk_lane_indices(lengths, max_bytes=budget)
        long_chunk = next(c for c in chunks if 0 in c)
        short_only = [c for c in chunks if 0 not in c]
        assert short_only, "short lanes must not all pad to the long lane"
        total = sum(
            estimate_plan_bytes([lengths[i] for i in c]) for c in chunks
        )
        assert total < estimate_plan_bytes(lengths)
        assert len(long_chunk) <= 3

    def test_dedup_keys_stay_together(self):
        lengths = [50, 50, 50, 50, 50, 50]
        keys = ["a", "b", "a", "b", "a", "b"]
        chunks = chunk_lane_indices(lengths, keys=keys, max_lanes=3)
        for chunk in chunks:
            assert len({keys[i] for i in chunk}) == 1

    def test_oversized_dedup_group_splits(self):
        chunks = chunk_lane_indices([7] * 5, keys=["k"] * 5, max_lanes=2)
        assert sorted(i for c in chunks for i in c) == [0, 1, 2, 3, 4]
        assert all(len(c) <= 2 for c in chunks)

    def test_deterministic(self):
        lengths = [3, 14, 15, 9, 2, 6, 5, 35]
        a = chunk_lane_indices(lengths, max_lanes=3)
        b = chunk_lane_indices(lengths, max_lanes=3)
        assert a == b

    def test_key_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="keys has"):
            chunk_lane_indices([1, 2], keys=["x"])

    def test_invalid_budgets_raise(self):
        with pytest.raises(Exception):
            chunk_lane_indices([1], max_lanes=0)
        with pytest.raises(Exception):
            chunk_lane_indices([1], max_bytes=0)

    def test_estimate_plan_bytes(self):
        assert estimate_plan_bytes([]) == 0
        assert (
            estimate_plan_bytes([10, 20, 5])
            == 3 * 20 * _PLAN_BYTES_PER_TICK
        )

    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=5000), min_size=1, max_size=60
        ),
        max_lanes=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
        max_bytes=st.one_of(
            st.none(),
            st.integers(min_value=1, max_value=20_000 * _PLAN_BYTES_PER_TICK),
        ),
        key_mod=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, lengths, max_lanes, max_bytes, key_mod):
        keys = [i % key_mod for i in range(len(lengths))]
        chunks = chunk_lane_indices(
            lengths, keys=keys, max_lanes=max_lanes, max_bytes=max_bytes
        )
        flat = [i for c in chunks for i in c]
        # Every lane exactly once, each chunk sorted.
        assert sorted(flat) == list(range(len(lengths)))
        assert all(c == sorted(c) for c in chunks)
        if max_lanes is not None:
            assert all(len(c) <= max_lanes for c in chunks)


def _grid_tasks():
    # Heterogeneous durations so padding differs across chunkings.
    durations = (0.3, 1.0, 0.3, 0.7, 1.0, 0.5)
    return [
        FixedBitTask(profile_id=1 + (i % 3), bits=8 - i, duration_s=d)
        for i, d in enumerate(durations)
    ]


def _exec_tasks():
    return [
        ExecutiveTask(
            kernel="median",
            policy=policy,
            profile_id=pid,
            minbits=4,
            duration_s=d,
        )
        for policy, pid, d in (
            ("linear", 1, 0.5),
            ("log", 2, 1.0),
            ("linear", 3, 0.5),
            ("parabola", 1, 1.0),
        )
    ]


@pytest.mark.skipif(not batch_available(), reason="accelerator unavailable")
class TestChunkSplitInvariance:
    def _run_fixed(self, tasks, lanes, bytes_, workers=1):
        engine_mod.reset()
        engine_mod.configure(
            use_cache=False, batch_chunk_lanes=lanes, batch_chunk_bytes=bytes_
        )
        return run_grid(tasks, workers=workers, batch=True)

    def test_any_lane_budget_is_bit_identical(self):
        tasks = _grid_tasks()
        baseline = self._run_fixed(tasks, 0, 0)
        for lanes in (1, 2, 3, 5):
            chunked = self._run_fixed(tasks, lanes, 0)
            for a, b in zip(baseline.results, chunked.results):
                assert simulation_results_equal(a, b)

    def test_byte_budget_is_bit_identical(self):
        tasks = _grid_tasks()
        baseline = self._run_fixed(tasks, 0, 0)
        chunked = self._run_fixed(tasks, 0, 2 * 10_000 * _PLAN_BYTES_PER_TICK)
        for a, b in zip(baseline.results, chunked.results):
            assert simulation_results_equal(a, b)

    def test_permuted_lane_order_is_bit_identical(self):
        tasks = _grid_tasks()
        baseline = self._run_fixed(tasks, 0, 0)
        order = [3, 0, 5, 1, 4, 2]
        permuted = self._run_fixed([tasks[i] for i in order], 2, 0)
        for pos, i in enumerate(order):
            assert simulation_results_equal(
                baseline.results[i], permuted.results[pos]
            )

    def test_pooled_chunk_dispatch_is_bit_identical(self):
        tasks = _grid_tasks()
        baseline = self._run_fixed(tasks, 0, 0)
        pooled = self._run_fixed(tasks, 2, 0, workers=3)
        report = telemetry.last_report()
        assert report.pool_failures == 0
        for a, b in zip(baseline.results, pooled.results):
            assert simulation_results_equal(a, b)

    def test_chunked_runs_report_batch_chunk_tier(self):
        self._run_fixed(_grid_tasks(), 2, 0)
        tiers = {
            t.executed_in
            for t in telemetry.last_report().tasks
            if t.status == "computed"
        }
        assert tiers == {"batch-chunk"}

    def test_single_chunk_keeps_plain_batch_tier(self):
        self._run_fixed(_grid_tasks(), 0, 0)
        tiers = {
            t.executed_in
            for t in telemetry.last_report().tasks
            if t.status == "computed"
        }
        assert tiers == {"batch"}

    def test_executive_chunking_is_bit_identical(self):
        tasks = _exec_tasks()
        engine_mod.configure(
            use_cache=False, batch_chunk_lanes=0, batch_chunk_bytes=0
        )
        baseline = run_executive_grid(tasks, batch=True)
        for lanes, workers in ((1, 1), (2, 1), (2, 3)):
            engine_mod.reset()
            engine_mod.configure(use_cache=False, batch_chunk_lanes=lanes)
            chunked = run_executive_grid(tasks, workers=workers, batch=True)
            for a, b in zip(baseline.results, chunked.results):
                assert executive_results_equal(a, b)

    def test_chunked_cache_entries_byte_identical_to_unchunked(self, tmp_path):
        tasks = _grid_tasks()
        blobs = {}
        for label, lanes, workers in (
            ("unchunked", 0, 1),
            ("chunked", 2, 1),
            ("pooled", 2, 3),
        ):
            engine_mod.reset()
            engine_mod.configure(
                use_cache=True, batch_chunk_lanes=lanes, batch_chunk_bytes=0
            )
            cache = ResultCache(tmp_path / label)
            run_grid(tasks, workers=workers, cache=cache, batch=True)
            blobs[label] = {
                p.name: p.read_bytes()
                for p in sorted((tmp_path / label).glob("*.npz"))
            }
        assert blobs["unchunked"].keys() == blobs["chunked"].keys()
        assert blobs["unchunked"].keys() == blobs["pooled"].keys()
        for name, blob in blobs["unchunked"].items():
            assert blobs["chunked"][name] == blob, name
            assert blobs["pooled"][name] == blob, name

    def test_chunking_knobs_validated(self):
        with pytest.raises(Exception):
            engine_mod.configure(batch_chunk_lanes=-1)
        with pytest.raises(Exception):
            engine_mod.configure(batch_chunk_bytes=-5)
