"""Tests for recompute-and-combine (Figures 26-27)."""

import numpy as np
import pytest

from repro.core.recompute import RecomputeAndCombine, schedule_from_trace
from repro.errors import ConfigurationError
from repro.kernels import MedianKernel, SobelKernel


class TestScheduleFromTrace:
    def test_bounds_respected(self, trace1):
        schedule = schedule_from_trace(trace1, 3, 7)
        assert schedule.min() >= 3
        assert schedule.max() <= 7

    def test_nonempty_on_live_trace(self, trace1):
        assert schedule_from_trace(trace1, 1, 8).size > 0

    def test_dead_trace_rejected(self, dead_trace):
        with pytest.raises(ConfigurationError):
            schedule_from_trace(dead_trace, 1, 8)

    def test_contains_both_extremes(self, trace1):
        """Dynamic budgets actually vary across the profile."""
        schedule = schedule_from_trace(trace1, 1, 8)
        assert schedule.min() < schedule.max()


class TestRecomputeAndCombine:
    def test_quality_monotone_nondecreasing(self, image32, trace1):
        """Figure 27: each merge can only improve the output."""
        schedule = schedule_from_trace(trace1, 2, 8)
        rac = RecomputeAndCombine(MedianKernel(), 2, 8, seed=4)
        outcome = rac.run(image32, passes=5, schedule=schedule)
        mses = outcome.mse_per_pass
        assert all(mses[i + 1] <= mses[i] + 1e-9 for i in range(len(mses) - 1))

    def test_improvement_positive(self, image32, trace1):
        schedule = schedule_from_trace(trace1, 2, 8)
        rac = RecomputeAndCombine(MedianKernel(), 2, 8, seed=4)
        outcome = rac.run(image32, passes=5, schedule=schedule)
        assert outcome.improvement_db() > 0.0

    def test_higher_minbits_better_first_pass(self, image32, trace1):
        """Figure 26: minbits sets the first pass's quality floor."""
        low_sched = schedule_from_trace(trace1, 1, 8)
        high_sched = schedule_from_trace(trace1, 6, 8)
        low = RecomputeAndCombine(MedianKernel(), 1, 8, seed=4).run(
            image32, 1, low_sched
        )
        high = RecomputeAndCombine(MedianKernel(), 6, 8, seed=4).run(
            image32, 1, high_sched
        )
        assert high.psnr_per_pass[0] > low.psnr_per_pass[0]

    def test_precision_map_grows(self, image32, trace1):
        schedule = schedule_from_trace(trace1, 2, 8)
        rac = RecomputeAndCombine(MedianKernel(), 2, 8, seed=4)
        one = rac.run(image32, 1, schedule)
        many = rac.run(image32, 4, schedule)
        assert many.final_precision.mean_bits() >= one.final_precision.mean_bits()

    def test_passes_counted(self, image32, trace1):
        schedule = schedule_from_trace(trace1, 2, 8)
        outcome = RecomputeAndCombine(MedianKernel(), 2, 8).run(image32, 3, schedule)
        assert outcome.passes == 3

    def test_works_for_fragile_kernels_too(self, image32, trace1):
        schedule = schedule_from_trace(trace1, 4, 8)
        rac = RecomputeAndCombine(SobelKernel(), 4, 8, seed=4)
        outcome = rac.run(image32, 4, schedule)
        assert outcome.psnr_per_pass[-1] >= outcome.psnr_per_pass[0]

    def test_schedule_validation(self, image32):
        rac = RecomputeAndCombine(MedianKernel(), 2, 8)
        with pytest.raises(ConfigurationError):
            rac.run(image32, 2, np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            rac.run(image32, 2, np.ones((2, 2), dtype=int))

    def test_schedule_clipped_to_pragma_range(self, image32):
        rac = RecomputeAndCombine(MedianKernel(), 4, 6, seed=4)
        outcome = rac.run(image32, 1, np.array([1, 8, 2, 8]))
        # Clipping to [4, 6] means the merged precision never reads 8.
        assert outcome.final_precision.bits.max() <= 6
        assert outcome.final_precision.bits.min() >= 4
