"""Tests for the 8051-class assembler."""

import pytest

from repro.errors import ProcessorError
from repro.nvp.asm import Operand, assemble
from repro.nvp.isa import InstructionClass


class TestAssembleBasics:
    def test_simple_program(self):
        program = assemble("MOV A, #5\nADD A, #3\nHALT")
        assert len(program) == 3
        assert program[0].mnemonic == "MOV"
        assert program[1].klass is InstructionClass.ALU

    def test_case_insensitive(self):
        program = assemble("mov a, #5\nhalt")
        assert program[0].mnemonic == "MOV"

    def test_comments_stripped(self):
        program = assemble("MOV A, #1 ; set accumulator\nHALT ; done")
        assert len(program) == 2

    def test_blank_lines_ignored(self):
        program = assemble("\nMOV A, #1\n\n\nHALT\n")
        assert len(program) == 2

    def test_labels_resolve(self):
        program = assemble(
            """
            MOV R0, #3
        loop:
            DJNZ R0, loop
            HALT
            """
        )
        assert program.label_address("loop") == 1
        assert program[1].target == 1

    def test_forward_label(self):
        program = assemble(
            """
            JZ done
            MOV A, #1
        done:
            HALT
            """
        )
        assert program[0].target == 2

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: MOV A, #1\nSJMP start")
        assert program.label_address("start") == 0

    def test_trailing_label_points_past_end(self):
        program = assemble("JZ end\nMOV A, #1\nend:")
        assert program[0].target == 2

    def test_register_operands(self):
        program = assemble("MOV R7, #255\nHALT")
        assert program[0].operands[0] == Operand("reg", value=7)

    def test_hex_immediates(self):
        program = assemble("MOV A, #0x1F\nHALT")
        assert program[0].operands[1].value == 31

    def test_dptr_16bit_immediate(self):
        program = assemble("MOV DPTR, #512\nHALT")
        assert program[0].operands[1].value == 512

    def test_b_register(self):
        program = assemble("MOV B, #77\nMUL AB\nMOV A, B\nHALT")
        assert program[0].operands[0].kind == "breg"


class TestAssembleErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(ProcessorError, match="unknown mnemonic"):
            assemble("FLY A, #1")

    def test_bad_operands(self):
        with pytest.raises(ProcessorError, match="bad operands"):
            assemble("ADD R1, R2")  # 8051 adds only into A

    def test_undefined_label(self):
        with pytest.raises(ProcessorError, match="undefined label"):
            assemble("SJMP nowhere")

    def test_duplicate_label(self):
        with pytest.raises(ProcessorError, match="duplicate label"):
            assemble("x: NOP\nx: NOP")

    def test_label_shadowing_mnemonic(self):
        with pytest.raises(ProcessorError, match="shadows"):
            assemble("MOV: NOP")

    def test_immediate_out_of_range(self):
        with pytest.raises(ProcessorError, match="out of range"):
            assemble("MOV DPTR, #70000")

    def test_bad_immediate_text(self):
        with pytest.raises(ProcessorError, match="bad immediate"):
            assemble("MOV A, #zebra")

    def test_error_reports_line_number(self):
        with pytest.raises(ProcessorError, match="line 3"):
            assemble("NOP\nNOP\nFLY A")


class TestTiming:
    def test_classic_cycle_counts(self):
        program = assemble("MOV A, #1\nMOVX A, @DPTR\nMUL AB\nSJMP end\nend:")
        assert program[0].cycles == 12
        assert program[1].cycles == 24
        assert program[2].cycles == 48
        assert program[3].cycles == 24
