"""Tests for quality metrics and the Table 2 QoS machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QualityError
from repro.quality.metrics import PSNR_CAP_DB, mse, psnr, size_ratio
from repro.quality.qos import TABLE2_POLICIES, QoSTarget, TunedPolicy, evaluate_qos


class TestMSE:
    def test_identical_images(self):
        image = np.arange(16).reshape(4, 4)
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 2.0)
        assert mse(a, b) == pytest.approx(4.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (8, 8))
        b = rng.integers(0, 256, (8, 8))
        assert mse(a, b) == pytest.approx(mse(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(QualityError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(QualityError):
            mse(np.zeros((0,)), np.zeros((0,)))


class TestPSNR:
    def test_identical_capped(self):
        image = np.arange(16).reshape(4, 4)
        assert psnr(image, image) == PSNR_CAP_DB

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_monotone_in_error(self):
        base = np.full((8, 8), 100.0)
        small = psnr(base, base + 1)
        large = psnr(base, base + 10)
        assert small > large

    def test_peak_validated(self):
        with pytest.raises(QualityError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)), peak=0.0)

    @given(
        arrays(np.int64, (4, 4), elements=st.integers(min_value=0, max_value=255)),
        arrays(np.int64, (4, 4), elements=st.integers(min_value=0, max_value=255)),
    )
    @settings(max_examples=50, deadline=None)
    def test_psnr_mse_consistency(self, a, b):
        error = mse(a, b)
        quality = psnr(a, b)
        if error > 0:
            assert quality == pytest.approx(10 * np.log10(255**2 / error), abs=1e-6)


class TestSizeRatio:
    def test_equal_sizes(self):
        assert size_ratio(1000, 1000) == 1.0

    def test_larger_candidate(self):
        assert size_ratio(1000, 1500) == pytest.approx(1.5)

    def test_invalid_sizes(self):
        with pytest.raises(QualityError):
            size_ratio(0, 100)
        with pytest.raises(QualityError):
            size_ratio(100, 0)


class TestQoSTarget:
    def test_psnr_target(self):
        target = QoSTarget(min_psnr_db=20.0)
        assert target.met_by_psnr(25.0)
        assert not target.met_by_psnr(15.0)
        assert target.describe() == "PSNR 20dB"

    def test_size_target(self):
        target = QoSTarget(max_size_ratio=1.5)
        assert target.met_by_size_ratio(1.2)
        assert not target.met_by_size_ratio(1.6)
        assert target.describe() == "150% Size"

    def test_exactly_one_kind(self):
        with pytest.raises(QualityError):
            QoSTarget()
        with pytest.raises(QualityError):
            QoSTarget(min_psnr_db=20.0, max_size_ratio=1.5)

    def test_wrong_kind_query_rejected(self):
        with pytest.raises(QualityError):
            QoSTarget(min_psnr_db=20.0).met_by_size_ratio(1.2)
        with pytest.raises(QualityError):
            QoSTarget(max_size_ratio=1.5).met_by_psnr(30.0)

    def test_size_ceiling_sanity(self):
        with pytest.raises(QualityError):
            QoSTarget(max_size_ratio=0.8)


class TestTable2:
    def test_all_four_rows_present(self):
        assert set(TABLE2_POLICIES) == {"integral", "median", "sobel", "jpeg_encode"}

    def test_paper_values(self):
        median = TABLE2_POLICIES["median"]
        assert median.target.min_psnr_db == 50.0
        assert median.minbits == 4
        assert median.recompute_passes == 2
        assert median.backup_policy == "linear"

        jpeg = TABLE2_POLICIES["jpeg_encode"]
        assert jpeg.target.max_size_ratio == 1.5
        assert jpeg.minbits == 3
        assert jpeg.backup_policy == "log"

        integral = TABLE2_POLICIES["integral"]
        assert integral.backup_policy == "parabola"
        assert integral.minbits == 2

    def test_evaluate_qos_routing(self):
        median = TABLE2_POLICIES["median"]
        assert evaluate_qos(median, psnr_db=55.0)
        assert not evaluate_qos(median, psnr_db=45.0)
        with pytest.raises(QualityError):
            evaluate_qos(median, size_ratio_value=1.0)

        jpeg = TABLE2_POLICIES["jpeg_encode"]
        assert evaluate_qos(jpeg, size_ratio_value=1.2)
        with pytest.raises(QualityError):
            evaluate_qos(jpeg, psnr_db=30.0)

    def test_tuned_policy_validation(self):
        with pytest.raises(QualityError):
            TunedPolicy(
                kernel="x",
                target=QoSTarget(min_psnr_db=10.0),
                minbits=9,
                recompute_passes=0,
                backup_policy="linear",
            )
        with pytest.raises(QualityError):
            TunedPolicy(
                kernel="x",
                target=QoSTarget(min_psnr_db=10.0),
                minbits=4,
                recompute_passes=0,
                backup_policy="cubic",
            )
