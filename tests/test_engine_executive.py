"""Engine tests for the incidental-executive layer.

Mirrors ``tests/test_engine_grid.py`` for :class:`ExecutiveTask`: cache
keys must cover every semantic knob, grids must be worker-count
invariant, disk round-trips must be exact, warm caches must serve
without recomputation, and the memoised post-hoc quality replay must
match :meth:`IncidentalExecutive.frame_quality` bit for bit.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import engine
from repro.core import executive as core_executive
from repro.errors import ConfigurationError

DURATION = 0.4


@pytest.fixture(autouse=True)
def _fresh_engine():
    """Every test starts from engine defaults (and leaves them behind)."""
    engine.reset()
    yield
    engine.reset()


def _task(**overrides):
    base = dict(
        kernel="median", policy="linear", profile_id=1, minbits=2,
        duration_s=DURATION, frame_period_ticks=1_500,
    )
    base.update(overrides)
    return engine.ExecutiveTask(**base)


# -- task validation and cache keys -------------------------------------------


def test_task_validation():
    with pytest.raises(ConfigurationError):
        _task(policy="bogus")
    with pytest.raises(ConfigurationError):
        _task(minbits=0)
    with pytest.raises(ConfigurationError):
        _task(minbits=6, maxbits=3)
    with pytest.raises(ConfigurationError):
        _task(recover_placement="outer")
    with pytest.raises(ConfigurationError):
        _task(resume_buffer_capacity=0)
    with pytest.raises(ConfigurationError):
        _task(duration_s=0.0)
    with pytest.raises(ConfigurationError):
        engine.ExecutiveTraceTask(
            kernel="median", policy="linear", minbits=2, n_frames=0
        )


def test_cache_key_covers_every_semantic_knob():
    a = _task()
    assert a.cache_key() == _task().cache_key()
    variants = [
        dataclasses.replace(a, kernel="fft"),
        dataclasses.replace(a, policy="log"),
        dataclasses.replace(a, profile_id=2),
        dataclasses.replace(a, minbits=3),
        dataclasses.replace(a, maxbits=7),
        dataclasses.replace(a, duration_s=0.5),
        dataclasses.replace(a, current_minbits=4),
        dataclasses.replace(a, current_minbits=4, current_maxbits=7),
        dataclasses.replace(a, frame_size=10),
        dataclasses.replace(a, frame_period_ticks=2_000),
        dataclasses.replace(a, n_frames=3),
        dataclasses.replace(a, enable_simd=False),
        dataclasses.replace(a, enable_rollforward=False),
        dataclasses.replace(a, precise_backup=True),
        dataclasses.replace(a, recover_placement="frame"),
        dataclasses.replace(a, resume_buffer_capacity=2),
        dataclasses.replace(a, retention_time_scale=4.0),
        dataclasses.replace(a, seed=1),
        dataclasses.replace(a, trace_seed=7),
    ]
    keys = {a.cache_key()} | {v.cache_key() for v in variants}
    assert len(keys) == len(variants) + 1


def test_cache_key_cannot_collide_with_fixed_bit_tasks(tmp_path):
    # Executive entries carry their own filename prefix, so even a
    # (vanishingly unlikely) key collision cannot alias result kinds.
    cache = engine.ResultCache(tmp_path)
    task = _task()
    result = task.run()
    cache.put_executive(task.cache_key(), result)
    assert cache.get(task.cache_key()) is None


def test_cache_key_includes_engine_version(monkeypatch):
    a = _task()
    before = a.cache_key()
    monkeypatch.setattr(engine, "ENGINE_CACHE_VERSION", "999-test")
    assert a.cache_key() != before


def test_resolved_n_frames_matches_trace_derivation():
    task = _task()
    trace = task.build_trace()
    expected = min(max(2, int(len(trace) / task.frame_period_ticks) + 1), 16)
    assert task.resolved_n_frames() == expected
    assert _task(n_frames=3).resolved_n_frames() == 3


def test_trace_seed_switches_to_reroll_trace():
    assert _task(trace_seed=5).build_trace().name == "seeded-5"
    assert _task().build_trace().name != "seeded-5"


# -- grids ---------------------------------------------------------------------


def _small_tasks():
    return [
        _task(policy=p, profile_id=pid)
        for p in ("linear", "log")
        for pid in (1, 2)
    ]


def test_executive_grid_workers_1_vs_4_identical():
    tasks = _small_tasks()
    serial = engine.run_executive_grid(tasks, workers=1)
    engine.clear_memory_cache()
    parallel = engine.run_executive_grid(tasks, workers=4)
    assert serial.equal(parallel)
    assert len(serial) == len(tasks)
    for task, result in serial:
        assert engine.executive_results_equal(result, serial.result_for(task))
    with pytest.raises(KeyError):
        serial.result_for(_task(minbits=7))


def test_executive_grid_cache_hit_equals_miss(tmp_path):
    engine.configure(cache_dir=tmp_path)
    tasks = _small_tasks()
    cold = engine.run_executive_grid(tasks)
    engine.clear_memory_cache()
    warm = engine.run_executive_grid(tasks)
    assert cold.equal(warm)


def test_executive_cache_round_trip_exact(tmp_path):
    cache = engine.ResultCache(tmp_path)
    task = _task()
    result = task.run()
    key = task.cache_key()
    assert cache.get_executive(key) is None
    cache.put_executive(key, result)
    loaded = cache.get_executive(key)
    assert loaded is not None
    assert engine.executive_results_equal(result, loaded)
    # Loaded arrays are fresh, never views of the stored entry.
    loaded.frames[0].element_bits[:] = 99
    again = cache.get_executive(key)
    assert engine.executive_results_equal(result, again)


def test_executive_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = engine.ResultCache(tmp_path)
    task = _task()
    key = task.cache_key()
    cache.put_executive(key, task.run())
    cache._exec_path(key).write_bytes(b"not an npz")
    assert cache.get_executive(key) is None


def test_warm_cache_serves_without_recompute(tmp_path, monkeypatch):
    engine.configure(cache_dir=tmp_path)
    task = _task()
    first = engine.cached_executive_run(task)

    def _boom(*args, **kwargs):
        raise AssertionError("cache miss: task was re-executed")

    monkeypatch.setattr(engine.ExecutiveTask, "run", _boom)
    # In-process memo hit.
    assert engine.executive_results_equal(first, engine.cached_executive_run(task))
    # Disk hit after the memo is dropped.
    engine.clear_memory_cache()
    assert engine.executive_results_equal(first, engine.cached_executive_run(task))
    # A changed knob is a miss and must try to re-execute.
    with pytest.raises(AssertionError, match="re-executed"):
        engine.cached_executive_run(dataclasses.replace(task, minbits=3))


def test_cached_executive_run_returns_defensive_copies():
    task = _task()
    first = engine.cached_executive_run(task)
    first.frames[0].element_bits[:] = 99
    first.sim.bit_schedule[:] = 0
    second = engine.cached_executive_run(task)
    assert not np.array_equal(
        second.frames[0].element_bits, first.frames[0].element_bits
    )
    assert engine.executive_results_equal(second, task.run())


def test_use_cache_false_bypasses_all_caching(tmp_path):
    engine.configure(cache_dir=tmp_path, use_cache=False)
    task = _task()
    a = engine.cached_executive_run(task)
    b = engine.run_executive_grid([task]).results[0]
    assert engine.executive_results_equal(a, b)
    assert len(engine.ResultCache(tmp_path)) == 0


# -- trace tasks ---------------------------------------------------------------


def test_run_executive_on_trace_workers_invariant():
    trace = engine._seeded_trace(11, DURATION)
    tasks = [
        engine.ExecutiveTraceTask(
            kernel="median", policy="linear", minbits=2, n_frames=4,
            frame_size=8, frame_period_ticks=800, seed=s,
        )
        for s in (0, 1)
    ]
    serial = engine.run_executive_on_trace(trace, tasks, workers=1)
    parallel = engine.run_executive_on_trace(trace, tasks, workers=4)
    assert all(
        engine.executive_results_equal(a, b) for a, b in zip(serial, parallel)
    )


# -- post-hoc quality replay ---------------------------------------------------


def _quality_tuples(scores):
    return [dataclasses.astuple(s) for s in scores]


def test_executive_frame_quality_matches_inline_replay():
    task = _task(minbits=4, frame_period_ticks=2_500)
    ex = task.build_executive()
    result = ex.run()
    inline = ex.frame_quality(result, min_coverage=0.999)
    replayed = engine.executive_frame_quality(task, result, min_coverage=0.999)
    assert _quality_tuples(inline) == _quality_tuples(replayed)
    # Retention decay off and precise backups both drop the policy.
    no_decay = ex.frame_quality(result, apply_retention_decay=False)
    no_decay_replayed = engine.executive_frame_quality(
        task, result, apply_retention_decay=False
    )
    assert _quality_tuples(no_decay) == _quality_tuples(no_decay_replayed)


def test_quality_replay_is_memoised():
    task = _task(minbits=4, frame_period_ticks=2_500)
    result = engine.cached_executive_run(task)
    first = engine.executive_frame_quality(task, result, min_coverage=0.999)
    calls = {"n": 0}
    original = core_executive.ApproxContext

    class _CountingContext(original):
        def __init__(self, *args, **kwargs):
            calls["n"] += 1
            super().__init__(*args, **kwargs)

    core_executive.ApproxContext = _CountingContext
    try:
        again = engine.executive_frame_quality(task, result, min_coverage=0.999)
    finally:
        core_executive.ApproxContext = original
    assert calls["n"] == 0  # every frame tuple was served from the memo
    assert _quality_tuples(first) == _quality_tuples(again)
    core_executive.clear_quality_memo()


def test_quality_replay_frames_are_independent_of_grid_point():
    # Two tasks sharing a prefix of identical frame tuples must score
    # those frames identically (this is what makes memoisation sound).
    a = _task(minbits=4, frame_period_ticks=2_500)
    ra = engine.cached_executive_run(a)
    qa = engine.executive_frame_quality(a, ra, min_coverage=0.999)
    engine.reset()
    qa2 = engine.executive_frame_quality(a, ra, min_coverage=0.999)
    assert _quality_tuples(qa) == _quality_tuples(qa2)
