"""Edge-case coverage across modules: odd shapes, degenerate configs,
and schedule plumbing that the mainline tests do not reach."""

import numpy as np
import pytest

from repro.core.executive import IncidentalExecutive
from repro.energy.traces import PowerTrace
from repro.errors import ConfigurationError
from repro.kernels import (
    ApproxContext,
    FFTKernel,
    IntegralKernel,
    JPEGEncodeKernel,
    MedianKernel,
    SobelKernel,
    frame_sequence,
)
from repro.quality import psnr


class TestExecutiveEdges:
    def test_mismatched_frame_shapes_rejected(self, median_program, short_trace):
        frames = [np.zeros((8, 8), dtype=np.int64), np.zeros((12, 12), dtype=np.int64)]
        with pytest.raises(ConfigurationError, match="share one shape"):
            IncidentalExecutive(median_program, short_trace, frames)

    def test_trace_shorter_than_frame_period(self, median_program, frames16):
        trace = PowerTrace(np.full(500, 400.0))
        executive = IncidentalExecutive(
            median_program, trace, frames16, frame_period_ticks=100_000
        )
        result = executive.run()
        assert len(result.frames) == 1  # only frame 0 ever arrives

    def test_single_frame_stream(self, median_program, short_trace):
        executive = IncidentalExecutive(
            median_program,
            short_trace,
            frame_sequence(1, 12),
            frame_period_ticks=50_000,
        )
        result = executive.run()
        assert len(result.frames) >= 1

    def test_zero_power_yields_empty_run(self, median_program, dead_trace, frames16):
        executive = IncidentalExecutive(median_program, dead_trace, frames16)
        result = executive.run()
        assert result.sim.total_progress == 0
        assert result.frames_completed == 0
        assert executive.frame_quality(result) == []


class TestKernelEdges:
    def test_minimum_image_size(self):
        image = np.full((4, 4), 100, dtype=np.int64)
        for kernel in (SobelKernel(), MedianKernel(), IntegralKernel()):
            out = kernel.run_exact(image)
            assert out.shape == (4, 4)

    def test_non_square_images(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, (8, 24))
        for kernel in (SobelKernel(), MedianKernel(), IntegralKernel()):
            assert kernel.run_exact(image).shape == (8, 24)

    def test_fft_non_square_power_of_two(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, (5, 16))
        assert FFTKernel().run_exact(image).shape == (5, 16)

    def test_jpeg_zero_search_range(self):
        kernel = JPEGEncodeKernel(search_range=0)
        frames = frame_sequence(2, 16, seed=3)
        result = kernel.encode(frames[1], frames[0])
        # No search: every motion vector is (0, 0).
        assert np.abs(result.motion_vectors).max() == 0

    def test_extreme_pixel_values(self):
        for value in (0, 255):
            image = np.full((8, 8), value, dtype=np.int64)
            for kernel in (SobelKernel(), MedianKernel(), IntegralKernel()):
                out = kernel.run_exact(image)
                assert out.min() >= 0 and out.max() <= 255

    def test_mem_bits_schedule_plumbs_through(self, image32):
        """Dynamic schedules work on the memory budget too."""
        schedule = np.tile(np.array([2, 8]), 600)
        ctx = ApproxContext(mem_bits=schedule, seed=1)
        out = MedianKernel().run(image32, ctx)
        ref = MedianKernel().run_exact(image32)
        full = MedianKernel().run(image32, ApproxContext(mem_bits=8))
        assert psnr(ref, out) < psnr(ref, full)

    def test_both_budgets_reduced_compound(self, image32):
        kernel = IntegralKernel()
        ref = kernel.run_exact(image32)
        alu_only = psnr(ref, kernel.run(image32, ApproxContext(alu_bits=3, seed=1)))
        both = psnr(
            ref, kernel.run(image32, ApproxContext(alu_bits=3, mem_bits=3, seed=1))
        )
        assert both <= alu_only + 1.0


class TestTraceEdges:
    def test_single_sample_trace(self):
        trace = PowerTrace([100.0])
        assert trace.emergency_count() == 0
        assert trace.duration_s == pytest.approx(1e-4)

    def test_segment_whole_trace(self):
        trace = PowerTrace([1.0, 2.0, 3.0])
        sub = trace.segment(0, 3)
        assert list(sub) == [1.0, 2.0, 3.0]

    def test_scaled_preserves_shape_statistics(self):
        trace = PowerTrace([10.0, 0.0, 200.0, 5.0])
        doubled = trace.scaled(2.0)
        assert doubled.total_energy_uj == pytest.approx(2 * trace.total_energy_uj)
        assert doubled.peak_power_uw == pytest.approx(2 * trace.peak_power_uw)
