"""Tests for the behavioral dynamic-retention write circuit (Figure 7)."""

import pytest

from repro.errors import NVMError
from repro.nvm.retention import LinearRetention, LogRetention, ParabolaRetention
from repro.nvm.sttram import STTRAMModel
from repro.nvm.write_circuit import DynamicRetentionWriteCircuit


@pytest.fixture(scope="module")
def circuit():
    return DynamicRetentionWriteCircuit()


class TestConstruction:
    def test_default_mirror_has_eight_currents(self, circuit):
        assert len(circuit.mirror_currents_ua) == 8

    def test_default_mirror_spread_under_3x(self, circuit):
        """Paper: 'the maximum current variation ratio is less than 3X'."""
        currents = circuit.mirror_currents_ua
        assert currents[-1] / currents[0] < 3.0

    def test_mirror_must_be_ascending(self):
        with pytest.raises(NVMError):
            DynamicRetentionWriteCircuit(mirror_currents_ua=[100] * 7 + [50])

    def test_mirror_must_have_eight(self):
        with pytest.raises(NVMError):
            DynamicRetentionWriteCircuit(mirror_currents_ua=[10, 20, 30])

    def test_mirror_bounded_by_driver(self):
        cell = STTRAMModel(max_current_ua=100.0)
        with pytest.raises(NVMError):
            DynamicRetentionWriteCircuit(
                cell=cell, mirror_currents_ua=[20, 30, 40, 50, 60, 70, 80, 150]
            )

    def test_pulse_codes_quantised_by_counter(self, circuit):
        codes = circuit.pulse_codes_ns
        assert len(codes) == 2 ** circuit.counter_bits
        assert codes[0] == pytest.approx(circuit.counter_period_ns)

    def test_transistor_overhead_documented(self, circuit):
        assert circuit.TRANSISTOR_OVERHEAD <= 200


class TestBitPlanning:
    def test_achieves_requested_retention(self, circuit):
        record = circuit.plan_bit_write(1, 0.05)
        assert record.achieved_retention_s >= 0.05
        assert record.retention_margin >= 1.0

    def test_cheaper_for_shorter_retention(self, circuit):
        short = circuit.plan_bit_write(1, 0.01)
        long = circuit.plan_bit_write(8, 3600.0)
        assert short.energy_pj < long.energy_pj

    def test_selects_valid_mirror_level(self, circuit):
        record = circuit.plan_bit_write(4, 1.0)
        assert 1 <= record.current_level <= 8
        assert record.current_ua == circuit.mirror_currents_ua[record.current_level - 1]

    def test_counter_code_consistent_with_pulse(self, circuit):
        record = circuit.plan_bit_write(4, 1.0)
        assert record.pulse_ns == pytest.approx(
            record.counter_code * circuit.counter_period_ns
        )

    def test_impossible_retention_rejected(self, circuit):
        with pytest.raises(NVMError):
            circuit.plan_bit_write(8, 1e14)  # geological: beyond the drive

    def test_rejects_nonpositive_retention(self, circuit):
        with pytest.raises(NVMError):
            circuit.plan_bit_write(1, 0.0)


class TestWordPlanning:
    def test_plans_all_bits(self, circuit):
        plan = circuit.plan_word_write(LinearRetention())
        assert len(plan.bits) == 8
        assert [b.bit_index for b in plan.bits] == list(range(1, 9))

    def test_msb_costs_at_least_lsb(self, circuit):
        plan = circuit.plan_word_write(LinearRetention())
        assert plan.bits[7].energy_pj >= plan.bits[0].energy_pj

    def test_energy_aggregation(self, circuit):
        plan = circuit.plan_word_write(LogRetention())
        assert plan.energy_pj == pytest.approx(sum(b.energy_pj for b in plan.bits))
        assert plan.max_pulse_ns == max(b.pulse_ns for b in plan.bits)

    def test_quantised_energy_at_least_analytic(self, circuit):
        """Hardware quantisation can only cost more than the optimum."""
        for policy in (LinearRetention(), LogRetention(), ParabolaRetention()):
            analytic = policy.word_write_energy_pj(circuit.cell)
            quantised = circuit.word_energy_pj(policy)
            assert quantised >= analytic * 0.99

    def test_policy_ordering_preserved(self, circuit):
        """The hardware keeps log < linear < parabola word energy."""
        log = circuit.word_energy_pj(LogRetention())
        linear = circuit.word_energy_pj(LinearRetention())
        parabola = circuit.word_energy_pj(ParabolaRetention())
        assert log < linear < parabola

    def test_rejects_non_policy(self, circuit):
        with pytest.raises(NVMError):
            circuit.plan_word_write("linear")
