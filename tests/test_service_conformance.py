"""Service-level conformance: HTTP results ≡ direct engine runs, in bytes.

The campaign service must add transport, never semantics. Every test
here computes a campaign twice — once directly through the engine
(``run_grid`` / ``run_executive_grid`` / ``run_resilience_grid`` /
``run_fleet``), once through a real HTTP round trip against an
in-thread service — and asserts the streamed result entries are
**byte-identical** to the direct encodings *and* to the ``.npz`` files
the service's sharded cache wrote, cold and warm, for every tier.
"""

import base64
import json

import pytest

from repro.analysis import engine, telemetry
from repro.analysis.engine import (
    ExecutiveTask,
    GridSpec,
    executive_entry_bytes,
    fixed_entry_bytes,
    run_executive_grid,
    run_grid,
    shard_for_name,
)
from repro.analysis.resilience import ResilienceCampaign, run_resilience_grid
from repro.fleet import FleetSpec, run_fleet
from repro.service import (
    http_cache_info,
    http_health,
    http_results,
    http_submit,
    http_wait,
    start_in_thread,
)

pytestmark = pytest.mark.service

GRID_PAYLOAD = {
    "kind": "grid",
    "grid": {
        "kernels": ["median"],
        "bits": [3, 8],
        "profile_ids": [1, 2],
        "duration_s": 0.4,
    },
}

EXECUTIVE_PAYLOAD = {
    "kind": "executive",
    "tasks": [
        {
            "kernel": "median",
            "policy": "linear",
            "profile_id": profile_id,
            "minbits": 2,
            "duration_s": 0.4,
            "frame_period_ticks": 1_500,
        }
        for profile_id in (1, 2)
    ],
}

RESILIENCE_PAYLOAD = {
    "kind": "resilience",
    "campaign": {
        "kernels": ["median"],
        "policies": ["linear"],
        "rates": [0.0, 0.1],
        "duration_s": 0.4,
        "minbits": 2,
    },
}

FLEET_PAYLOAD = {
    "kind": "fleet",
    "fleet": {"n_devices": 6, "seed": 11, "duration_s": 0.4},
}


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine.reset()
    telemetry.reset()
    yield
    telemetry.reset()
    engine.reset()


@pytest.fixture
def service(tmp_path):
    """A live service on an ephemeral port with its own sharded cache."""
    handle = start_in_thread(tmp_path / "service-cache", workers=2)
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture
def direct_cache(tmp_path):
    """A private cache for direct baseline runs.

    ``cache=None`` resolves to the *configured* default — which, with
    the service fixture active, is the service's shared cache. Direct
    runs must not warm it, or the "cold" assertions would lie.
    """
    return engine.ResultCache(tmp_path / "direct-cache")


def _run_job(handle, payload, timeout=300.0):
    job = http_submit(handle.base_url, payload)
    assert job["status"] in ("queued", "running", "done")
    done = http_wait(handle.base_url, job["id"], timeout=timeout)
    assert done["status"] == "done", done.get("error", done)
    return done, http_results(handle.base_url, job["id"])


def _task_entries(lines):
    """index -> (cache filename, raw entry bytes) for the task lines."""
    out = {}
    for line in lines:
        if line["type"] == "task":
            out[line["index"]] = (
                line["name"],
                base64.b64decode(line["entry"]),
            )
    return out


def _assert_entries_match_disk(handle, entries):
    """Every streamed entry is byte-identical to its on-disk cache file."""
    cache_dir = handle.service.cache.cache_dir
    for name, data in entries.values():
        path = cache_dir / shard_for_name(name) / name
        assert path.exists(), f"{name} missing from {shard_for_name(name)}/"
        assert path.read_bytes() == data


def _direct_fixed_entries(tasks, cache):
    grid = run_grid(tasks, engine="auto", cache=cache)
    return {
        i: (f"{task.cache_key()}.npz", fixed_entry_bytes(result))
        for i, (task, result) in enumerate(grid)
    }


# -- per-tier byte identity, cold and warm -------------------------------------


def test_grid_campaign_byte_identical_cold_and_warm(service, direct_cache):
    tasks = GridSpec(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in GRID_PAYLOAD["grid"].items()
    }).tasks()
    expected = _direct_fixed_entries(tasks, direct_cache)

    done, lines = _run_job(service, GRID_PAYLOAD)
    entries = _task_entries(lines)
    assert entries == expected
    assert done["telemetry"]["computed"] == len(tasks)
    assert done["telemetry"]["cache_hits"] == 0
    _assert_entries_match_disk(service, entries)

    warm_done, warm_lines = _run_job(service, GRID_PAYLOAD)
    assert _task_entries(warm_lines) == expected
    assert warm_lines == lines
    assert warm_done["telemetry"]["computed"] == 0
    assert warm_done["telemetry"]["cache_hits"] == len(tasks)


def test_executive_campaign_byte_identical_cold_and_warm(
    service, direct_cache
):
    tasks = tuple(
        ExecutiveTask(**spec) for spec in EXECUTIVE_PAYLOAD["tasks"]
    )
    grid = run_executive_grid(tasks, engine="auto", cache=direct_cache)
    expected = {
        i: (f"exec-{task.cache_key()}.npz", executive_entry_bytes(result))
        for i, (task, result) in enumerate(grid)
    }

    done, lines = _run_job(service, EXECUTIVE_PAYLOAD)
    entries = _task_entries(lines)
    assert entries == expected
    assert done["telemetry"]["computed"] == len(tasks)
    _assert_entries_match_disk(service, entries)
    assert all(
        shard_for_name(name) == "executive" for name, _ in entries.values()
    )

    warm_done, warm_lines = _run_job(service, EXECUTIVE_PAYLOAD)
    assert warm_lines == lines
    assert warm_done["telemetry"]["computed"] == 0
    assert warm_done["telemetry"]["cache_hits"] == len(tasks)


def test_resilience_campaign_points_identical_cold_and_warm(
    service, direct_cache
):
    campaign = ResilienceCampaign(
        **{
            key: tuple(value) if isinstance(value, list) else value
            for key, value in RESILIENCE_PAYLOAD["campaign"].items()
        }
    )
    points = run_resilience_grid(
        campaign.tasks(), engine="reference", cache=direct_cache
    )
    expected = [
        json.dumps(point.to_dict(), sort_keys=True) for point in points
    ]

    done, lines = _run_job(service, RESILIENCE_PAYLOAD)
    got = [
        json.dumps(line["point"], sort_keys=True)
        for line in lines
        if line["type"] == "point"
    ]
    assert got == expected
    assert done["telemetry"]["computed"] == len(points)

    _, warm_lines = _run_job(service, RESILIENCE_PAYLOAD)
    assert warm_lines == lines


def test_fleet_campaign_byte_identical_with_summary(service, direct_cache):
    spec = FleetSpec(**FLEET_PAYLOAD["fleet"])
    fleet = run_fleet(spec, engine="auto", cache=direct_cache)
    expected = {
        i: (f"{task.cache_key()}.npz", fixed_entry_bytes(result))
        for i, (task, result) in enumerate(zip(fleet.tasks, fleet.results))
    }

    done, lines = _run_job(service, FLEET_PAYLOAD)
    entries = _task_entries(lines)
    assert entries == expected
    _assert_entries_match_disk(service, entries)
    assert all(
        shard_for_name(name) == "fleet" for name, _ in entries.values()
    )

    summaries = [line for line in lines if line["type"] == "summary"]
    assert len(summaries) == 1
    direct_percentiles = {
        key: value for key, value in fleet.progress_percentiles.items()
    }
    assert summaries[0]["progress_percentiles"] == direct_percentiles
    assert done["summary"]["fleet"]["n_devices"] == spec.n_devices

    _, warm_lines = _run_job(service, FLEET_PAYLOAD)
    assert warm_lines == lines


# -- protocol-level checks -----------------------------------------------------


def test_result_stream_is_ordered_jsonl(service):
    _, lines = _run_job(service, GRID_PAYLOAD)
    task_lines = [line for line in lines if line["type"] == "task"]
    assert [line["index"] for line in task_lines] == list(
        range(len(task_lines))
    )
    assert lines[-1]["type"] == "end"
    assert lines[-1]["count"] == len(task_lines)


def test_health_and_cache_info_routes(service):
    health = http_health(service.base_url)
    assert health["status"] == "ok"
    assert health["capacity"] >= 1

    _run_job(service, GRID_PAYLOAD)
    info = http_cache_info(service.base_url)
    assert info["sharded"] is True
    assert info["entries"] == info["shards"]["fixed"]
    assert set(info["shards"]) == {
        "fixed",
        "executive",
        "resilience",
        "fleet",
    }


def test_malformed_campaigns_rejected_without_job(service):
    for bad in (
        {"kind": "unknown"},
        {"kind": "grid"},
        {"kind": "grid", "grid": {"kernels": ["median"]}, "tasks": []},
        {"kind": "grid", "grid": {"kernelz": ["median"]}},
        {"kind": "executive", "tasks": []},
        {"kind": "resilience"},
        {"kind": "fleet", "fleet": {"n_devicez": 2}},
        {"kind": "grid", "grid": {"kernels": ["median"]}, "engine": "warp"},
    ):
        with pytest.raises(RuntimeError, match="HTTP 400"):
            http_submit(service.base_url, bad)
    health = http_health(service.base_url)
    assert health["jobs"] == 0


def test_unknown_job_and_results_before_done(service):
    with pytest.raises(RuntimeError, match="HTTP 404"):
        http_results(service.base_url, "job-999999")
